"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (which build a wheel) fail; this classic ``setup.py`` lets
``pip install -e .`` take the legacy ``develop`` path.  Package metadata
mirrors pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Relational Data Synthesis using GANs: "
        "A Design Space Exploration' (Fan et al., VLDB 2020)"),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.22", "scipy>=1.8", "networkx>=2.8"],
)
