"""Scenario: client-side approximate query processing on synthetic data.

The paper's AQP use case (§2.1): a dashboard wants to answer aggregate
queries without round-tripping to the server, by querying a small
synthetic table instead.  On the Bing production-workload stand-in
(unlabeled, 30 attributes) we compare the answers of:

* a GAN-synthesized table,
* a VAE-synthesized table,
* a classical 1% uniform sample (scaled for count/sum),

against the ground truth, over a generated workload of count/avg/sum
queries with selections and group-bys.

Usage::

    python examples/aqp_acceleration.py
"""

import numpy as np

import repro
from repro import datasets
from repro.aqp import generate_workload, workload_errors


def main():
    table = datasets.load("bing", n_records=3000, seed=0)
    train, valid, _ = datasets.split(table, seed=0)
    queries = generate_workload(train, n_queries=150, seed=0)
    print(f"bing stand-in: {len(train)} rows, workload of "
          f"{len(queries)} aggregate queries")
    print(f"example query: {queries[0].describe()}\n")

    # Bing is unlabeled, so the facade selects the generator snapshot
    # by marginal fidelity on the validation split.
    gan = repro.synthesize(train, method="gan", valid=valid, epochs=8,
                           iterations_per_epoch=30, seed=0)
    gan_table = gan.table

    vae = repro.make_synthesizer("vae", epochs=8, iterations_per_epoch=40,
                                 seed=0)
    vae_table = vae.fit_sample(train)

    rng = np.random.default_rng(0)
    n_sample = max(1, len(train) // 100)
    sample = train.sample_rows(n_sample, rng)
    scale = len(train) / n_sample

    answers = {
        "GAN synthetic": workload_errors(queries, gan_table, train),
        "VAE synthetic": workload_errors(queries, vae_table, train),
        "1% sample": workload_errors(queries, sample, train, scale=scale),
    }
    print("mean relative error per answering strategy:")
    for name, errors in answers.items():
        errors = np.asarray(errors)
        print(f"  {name:14s} mean={errors.mean():.3f}  "
              f"median={np.median(errors):.3f}  p90={np.quantile(errors, 0.9):.3f}")

    print("\nExpected shape (paper Table 10): both deep synthesizers beat "
          "the classical sample; on the Bing workload the VAE is "
          "competitive with the GAN (paper: 0.632 vs 0.422).")


if __name__ == "__main__":
    main()
