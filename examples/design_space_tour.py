"""Tour of the design space: a miniature Table 3 on one dataset.

Enumerates the paper's primary design axes (generator family x data
transformation, Figure 3) on the Adult stand-in and prints the resulting
F1 differences — a quick way to see the paper's Finding 1 (LSTM with
GMM + one-hot transformation wins; CNN loses) on your own data.

Usage::

    python examples/design_space_tour.py
"""

import repro
from repro import datasets
from repro.core import classification_utility, iter_design_space
from repro.report import format_table


def main():
    table = datasets.load("adult", n_records=1500, seed=0)
    train, valid, test = datasets.split(table, seed=0)
    print(f"exploring {len(list(iter_design_space()))} design points "
          f"on {table}\n")

    rows = []
    for config in iter_design_space():
        result = repro.synthesize(train, method="gan", config=config,
                                  valid=valid, epochs=4,
                                  iterations_per_epoch=20, seed=0)
        diff_dt = classification_utility(result.table, train, test,
                                         "DT10").diff
        diff_lr = classification_utility(result.table, train, test,
                                         "LR").diff
        rows.append([config.describe(), diff_dt, diff_lr,
                     result.best_epoch + 1])
        print(f"  done: {config.describe()}")

    print()
    print(format_table(
        ["design point", "DT10 diff", "LR diff", "best epoch"], rows,
        title="Design-space exploration on adult (lower diff is better)"))


if __name__ == "__main__":
    main()
