"""Streaming synthesis: out-of-core ingest, online updates, hot refresh.

Runs the :mod:`repro.stream` stack end to end:

1. dump a table to CSV and train a PrivBayes model **out of core** with
   :func:`repro.fit_stream` — the file is read in fixed-size chunks and
   folded into integer count tables, so only one chunk is ever resident;
   the result is verified **bit-identical** to a one-shot ``fit`` of
   the same rows (the count-exact streaming contract);
2. keep the model online with ``partial_fit`` as new batches arrive,
   watching the cumulative privacy spend climb in the ledger until a
   ``budget=`` cap refuses the next refresh;
3. hot-refresh a live :class:`~repro.serve.SynthesisService`:
   ``service.publish`` writes a new immutable version directory, swaps
   the ``ACTIVE`` pointer atomically, and boots a fresh pool — while a
   seeded streaming request that started *before* the publish drains on
   the old version, bit-identical to an undisturbed run.

The same refresh works against a running server::

    python -m repro.serve models/ --port 8000
    curl -s localhost:8000/models/adult-pb     # reports ACTIVE version
"""

import csv
import json
import pathlib
import tempfile
import urllib.request

import numpy as np

import repro
from repro import datasets
from repro.errors import PrivacyBudgetError
from repro.serve import SynthesisServer, SynthesisService


def dump_csv(path: pathlib.Path, table) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.schema.names)
        decoded = {}
        for attr in table.schema:
            col = table.column(attr.name)
            decoded[attr.name] = (
                [attr.categories[c] for c in col] if attr.is_categorical
                else [repr(float(v)) for v in col])
        for i in range(len(table)):
            writer.writerow([decoded[name][i]
                             for name in table.schema.names])


def demo_out_of_core(workdir: pathlib.Path):
    table = datasets.load("adult", n_records=5000, seed=0)
    csv_path = workdir / "adult.csv"
    dump_csv(csv_path, table)

    streamed = repro.fit_stream(csv_path, method="privbayes",
                                epsilon=None, seed=0, chunk_rows=512,
                                schema=table.schema)
    one_shot = repro.make_synthesizer("privbayes", epsilon=None,
                                      seed=0).fit(table)
    identical = all(
        np.array_equal(streamed.conditionals[n], one_shot.conditionals[n])
        for n in streamed.conditionals)
    print(f"out-of-core fit_stream over {csv_path.name} in 512-row "
          f"chunks: bit-identical to one-shot fit: {identical}")
    return streamed


def demo_online_updates() -> None:
    # Each release spends epsilon; the ledger enforces a lifetime cap.
    synth = repro.make_synthesizer("privbayes", epsilon=0.8, seed=0,
                                   budget=2.0)
    synth.fit(datasets.load("adult", n_records=2000, seed=0))
    for day in (1, 2, 3):
        batch = datasets.load("adult", n_records=500, seed=day)
        try:
            synth.partial_fit(batch)
            synth.finalize_stream()
            print(f"  day {day}: refreshed on +{len(batch)} rows, "
                  f"spent eps={synth.privacy_spent():.1f} of 2.0")
        except PrivacyBudgetError as exc:
            print(f"  day {day}: refresh refused — {exc}")


def demo_hot_refresh(workdir: pathlib.Path, model) -> None:
    root = workdir / "models"
    with SynthesisService(root, workers=0) as service:
        version = service.publish("adult-pb", model)
        print(f"published adult-pb {version}")

        # Start a seeded streaming request, then publish mid-flight.
        chunks, _ = service.sample_iter("adult-pb", 600, batch=200,
                                        seed=13)
        iterator = iter(chunks)
        received = [next(iterator)]

        retrained = repro.make_synthesizer("privbayes", epsilon=None,
                                           seed=0)
        retrained.fit(datasets.load("adult", n_records=6000, seed=1))
        version = service.publish("adult-pb", retrained)
        received.extend(iterator)  # old stream drains on the old bits

        expected = model.sample(600, batch=200, seed=13)
        same = all(
            np.array_equal(
                np.concatenate([c.column(name) for c in received]),
                expected.column(name))
            for name in expected.schema.names)
        print(f"published {version} mid-request; in-flight stream "
              f"drained on the old version, bit-identical: {same}")
        print(f"health: {service.healthz()}")

        with SynthesisServer(service).start() as server:
            with urllib.request.urlopen(
                    f"{server.url}/models/adult-pb") as resp:
                detail = json.loads(resp.read())
            print(f"GET /models/adult-pb -> version {detail['version']}, "
                  f"history {detail['versions']}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = pathlib.Path(tmp)
        model = demo_out_of_core(workdir)
        print("online updates under a privacy budget:")
        demo_online_updates()
        demo_hot_refresh(workdir, model)


if __name__ == "__main__":
    main()
