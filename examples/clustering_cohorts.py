"""Scenario: developing a cohort-clustering algorithm on synthetic data.

The paper's clustering use case (§2.1): a hospital shares a synthetic
table with an external team to *develop* a patient-grouping algorithm;
the algorithm is then deployed on the real data.  The synthetic table is
useful if K-Means finds the same structure on both tables.

On the Anuran stand-in (10 species, heavy skew) we compare how well each
synthesizer preserves the clustering structure (DiffCST = |NMI_real -
NMI_synthetic|) and the pairwise-correlation structure.

Usage::

    python examples/clustering_cohorts.py
"""

import repro
from repro import datasets
from repro.core import (
    DesignConfig, clustering_utility, correlation_difference,
)


def main():
    table = datasets.load("anuran", n_records=1800, seed=0)
    train, valid, _ = datasets.split(table, seed=0)
    n_groups = table.schema.label.domain_size
    print(f"anuran stand-in: {len(train)} records, {n_groups} species\n")

    synthetics = {}

    gan = repro.synthesize(train, method="gan",
                           config=DesignConfig(generator="mlp"),
                           valid=valid, epochs=6, iterations_per_epoch=25,
                           seed=0)
    synthetics["GAN"] = gan.table

    vae = repro.make_synthesizer("vae", epochs=8, iterations_per_epoch=40,
                                 seed=0)
    synthetics["VAE"] = vae.fit_sample(train)

    pb = repro.make_synthesizer("privbayes", epsilon=1.6, seed=0)
    synthetics["PB-1.6"] = pb.fit_sample(train)

    print("clustering structure preservation "
          "(DiffCST lower = better; corr-diff lower = better):")
    for name, fake in synthetics.items():
        diff_cst = clustering_utility(fake, train, seed=0)
        corr = correlation_difference(train, fake)
        print(f"  {name:8s} DiffCST={diff_cst:.4f}  corr-diff={corr:.3f}")

    print("\nExpected shape (paper Table 9 / Finding 8): with enough "
          "training budget the GAN preserves the grouping structure "
          "best; at this demo scale the VAE (cheaper to train) often "
          "leads — raise epochs/iterations to see the paper's ordering.")


if __name__ == "__main__":
    main()
