"""Serving synthetic data: model store, worker pool, HTTP API.

Runs the :mod:`repro.serve` stack end to end:

1. fit two tiny models — a single-table GAN and a relational
   customers/orders database — and ``save`` them into a model-store
   directory (one subdirectory per model name);
2. shard a reproducible ``sample`` request across a
   :class:`~repro.serve.WorkerPool` and verify the result is
   **bit-identical** to the plain single-process call (the
   sharded-seed contract);
3. start the dependency-free HTTP front end and exercise it like a
   client would: list models, draw rows as JSON and streaming CSV,
   sample the database, and replay a draw from the seed the service
   reported.

The same server runs from a shell::

    python -m repro.serve models/ --port 8000 --workers 4
    curl -s localhost:8000/models
    curl -s -X POST localhost:8000/models/adult-gan/sample \\
         -d '{"n": 1000, "seed": 7, "format": "csv"}'
"""

import json
import pathlib
import tempfile
import urllib.request

import numpy as np

import repro
from repro import datasets
from repro.serve import SynthesisServer, WorkerPool


def build_model_store(root: pathlib.Path) -> None:
    table = datasets.load("adult", n_records=2000, seed=0)
    synth = repro.make_synthesizer("gan", epochs=2,
                                   iterations_per_epoch=20, seed=0)
    synth.fit(table)
    synth.save(root / "adult-gan")

    db = datasets.sdata_relational(n_customers=200, seed=0)
    db_synth = repro.DatabaseSynthesizer(
        method="privbayes", method_kwargs={"epsilon": None}, seed=0)
    db_synth.fit(db)
    db_synth.save(root / "shop-db")
    print(f"model store at {root}: "
          f"{sorted(p.name for p in root.iterdir())}")


def demo_worker_pool(root: pathlib.Path) -> None:
    plain = repro.load_synthesizer(root / "adult-gan").sample(
        20_000, seed=7)
    with WorkerPool(root / "adult-gan", workers=2) as pool:
        served = pool.sample(20_000, seed=7)
    identical = all(np.array_equal(plain.column(c), served.column(c))
                    for c in plain.schema.names)
    print(f"worker pool: 20k rows via 2 workers, "
          f"bit-identical to local sample: {identical}")


def post(url: str, body: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=120) as resp:
        return resp.status, resp.read()


def demo_http(root: pathlib.Path) -> None:
    with SynthesisServer(root, workers=2).start() as server:
        print(f"HTTP server at {server.url}")
        with urllib.request.urlopen(f"{server.url}/models") as resp:
            models = json.loads(resp.read())["models"]
        print(f"  GET /models -> {[m['name'] for m in models]}")

        _, body = post(f"{server.url}/models/adult-gan/sample",
                       {"n": 500, "seed": 17})
        payload = json.loads(body)
        print(f"  POST adult-gan/sample n=500 seed=17 -> "
              f"{payload['n']} rows, seed {payload['seed']}, "
              f"columns {sorted(payload['columns'])[:3]}...")

        _, csv_body = post(f"{server.url}/models/adult-gan/sample",
                           {"n": 10_000, "seed": 17, "format": "csv",
                            "stream": True})
        lines = csv_body.decode().strip().splitlines()
        print(f"  streaming CSV -> {len(lines) - 1} rows "
              f"(header: {lines[0][:48]}...)")

        _, db_body = post(f"{server.url}/models/shop-db/sample",
                          {"scale": 0.5, "seed": 3})
        db_payload = json.loads(db_body)
        counts = {name: t["n"]
                  for name, t in db_payload["tables"].items()}
        print(f"  POST shop-db/sample scale=0.5 -> {counts}")

        # Unseeded requests report the seed the service assigned, so
        # any draw can be replayed exactly.
        _, first = post(f"{server.url}/models/adult-gan/sample",
                        {"n": 50_000})
        assigned = json.loads(first)["seed"]
        _, replay = post(f"{server.url}/models/adult-gan/sample",
                         {"n": 50_000, "seed": assigned})
        same = (json.loads(first)["columns"]
                == json.loads(replay)["columns"])
        print(f"  replay with reported seed {assigned}: identical={same}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp) / "models"
        root.mkdir()
        build_model_store(root)
        demo_worker_pool(root)
        demo_http(root)


if __name__ == "__main__":
    main()
