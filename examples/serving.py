"""Serving synthetic data: model store, worker pool, HTTP API.

Runs the :mod:`repro.serve` stack end to end:

1. fit two tiny models — a single-table GAN and a relational
   customers/orders database — and ``save`` them into a model-store
   directory (one subdirectory per model name);
2. shard a reproducible ``sample`` request across a
   :class:`~repro.serve.WorkerPool` and verify the result is
   **bit-identical** to the plain single-process call (the
   sharded-seed contract);
3. start the dependency-free HTTP front end and exercise it like a
   client would: list models, draw rows as JSON and streaming CSV,
   sample the database, and replay a draw from the seed the service
   reported;
4. kill a worker process mid-request and watch the pool self-heal:
   the dead worker's in-flight chunks are re-executed elsewhere, the
   response stays **bit-identical** (chunk ``i`` always derives its
   RNG from ``(seed, "chunk", i)``, wherever it runs), and the slot
   respawns in the background;
5. trace a pooled request end to end: each worker stamps a span per
   chunk it computes, ships it back with the chunk, and the parent
   stitches the cross-process breakdown — then scrape ``GET /metrics``
   for the Prometheus view of everything the demo just did.

The same server runs from a shell::

    python -m repro.serve models/ --port 8000 --workers 4
    curl -s localhost:8000/models
    curl -s -X POST localhost:8000/models/adult-gan/sample \\
         -d '{"n": 1000, "seed": 7, "format": "csv"}'
"""

import json
import os
import pathlib
import tempfile
import time
import urllib.request

import numpy as np

import repro
from repro import datasets
from repro.serve import SynthesisServer, WorkerPool


def build_model_store(root: pathlib.Path) -> None:
    table = datasets.load("adult", n_records=2000, seed=0)
    synth = repro.make_synthesizer("gan", epochs=2,
                                   iterations_per_epoch=20, seed=0)
    synth.fit(table)
    synth.save(root / "adult-gan")

    db = datasets.sdata_relational(n_customers=200, seed=0)
    db_synth = repro.DatabaseSynthesizer(
        method="privbayes", method_kwargs={"epsilon": None}, seed=0)
    db_synth.fit(db)
    db_synth.save(root / "shop-db")
    print(f"model store at {root}: "
          f"{sorted(p.name for p in root.iterdir())}")


def demo_worker_pool(root: pathlib.Path) -> None:
    plain = repro.load_synthesizer(root / "adult-gan").sample(
        20_000, seed=7)
    with WorkerPool(root / "adult-gan", workers=2) as pool:
        served = pool.sample(20_000, seed=7)
    identical = all(np.array_equal(plain.column(c), served.column(c))
                    for c in plain.schema.names)
    print(f"worker pool: 20k rows via 2 workers, "
          f"bit-identical to local sample: {identical}")


def post(url: str, body: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=120) as resp:
        return resp.status, resp.read()


def demo_http(root: pathlib.Path) -> None:
    with SynthesisServer(root, workers=2).start() as server:
        print(f"HTTP server at {server.url}")
        with urllib.request.urlopen(f"{server.url}/models") as resp:
            models = json.loads(resp.read())["models"]
        print(f"  GET /models -> {[m['name'] for m in models]}")

        _, body = post(f"{server.url}/models/adult-gan/sample",
                       {"n": 500, "seed": 17})
        payload = json.loads(body)
        print(f"  POST adult-gan/sample n=500 seed=17 -> "
              f"{payload['n']} rows, seed {payload['seed']}, "
              f"columns {sorted(payload['columns'])[:3]}...")

        _, csv_body = post(f"{server.url}/models/adult-gan/sample",
                           {"n": 10_000, "seed": 17, "format": "csv",
                            "stream": True})
        lines = csv_body.decode().strip().splitlines()
        print(f"  streaming CSV -> {len(lines) - 1} rows "
              f"(header: {lines[0][:48]}...)")

        _, db_body = post(f"{server.url}/models/shop-db/sample",
                          {"scale": 0.5, "seed": 3})
        db_payload = json.loads(db_body)
        counts = {name: t["n"]
                  for name, t in db_payload["tables"].items()}
        print(f"  POST shop-db/sample scale=0.5 -> {counts}")

        # Unseeded requests report the seed the service assigned, so
        # any draw can be replayed exactly.
        _, first = post(f"{server.url}/models/adult-gan/sample",
                        {"n": 50_000})
        assigned = json.loads(first)["seed"]
        _, replay = post(f"{server.url}/models/adult-gan/sample",
                         {"n": 50_000, "seed": assigned})
        same = (json.loads(first)["columns"]
                == json.loads(replay)["columns"])
        print(f"  replay with reported seed {assigned}: identical={same}")


def demo_self_healing(root: pathlib.Path) -> None:
    """Kill a worker mid-request; recovery is bit-identical."""
    reference = repro.load_synthesizer(root / "adult-gan").sample(
        8_000, batch=500, seed=11)
    # Deterministic fault injection: worker 0's first incarnation
    # exits hard (os._exit) after generating its second chunk.  The
    # supervisor requeues its claimed chunks and respawns the slot.
    plan = {"seed": 0, "rules": [
        {"on": "chunk", "worker": 0, "after": 2,
         "action": "kill", "incarnations": [0], "times": 1}]}
    os.environ["REPRO_FAULTS"] = json.dumps(plan)
    try:
        with WorkerPool(root / "adult-gan", workers=2) as pool:
            survived = pool.sample(8_000, batch=500, seed=11)
            deadline = time.monotonic() + 5.0
            while (pool.status()["restarts"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            status = pool.status()
    finally:
        del os.environ["REPRO_FAULTS"]
    identical = all(np.array_equal(reference.column(c),
                                   survived.column(c))
                    for c in reference.schema.names)
    events = [e["event"] for e in status["events"]]
    print(f"self-healing: killed worker 0 mid-request -> "
          f"bit-identical after recovery: {identical}")
    print(f"  restarts={status['restarts']} "
          f"chunk_retries={status['chunk_retries']} "
          f"events={events}")


def demo_observability(root: pathlib.Path) -> None:
    """Trace one pooled request, then scrape the metrics endpoint."""
    from repro.obs import Trace, parse_prometheus

    trace = Trace("sample", tags={"model": "adult-gan"})
    with WorkerPool(root / "adult-gan", workers=2) as pool:
        pool.sample(8_000, batch=1_000, seed=23, trace=trace)
    trace.finish()
    workers = sorted({s.tags["worker"] for s in trace.spans()
                      if "chunk" in s.tags})
    print(f"traced request: {len(trace.spans())} spans across "
          f"workers {workers}")
    print("\n".join("  " + line
                    for line in trace.report().splitlines()))

    # The HTTP front end serves the same story as Prometheus series
    # (clients can also pass {"trace": true} in a JSON sample body to
    # get the stitched breakdown in the response).
    with SynthesisServer(root, workers=2).start() as server:
        post(f"{server.url}/models/adult-gan/sample",
             {"n": 2_000, "seed": 5})
        with urllib.request.urlopen(f"{server.url}/metrics",
                                    timeout=60) as resp:
            series = parse_prometheus(resp.read().decode())
    rows = sum(v for _, v in series["repro_serve_rows_total"])
    print(f"  GET /metrics -> {len(series)} series, "
          f"repro_serve_rows_total={rows:.0f}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp) / "models"
        root.mkdir()
        build_model_store(root)
        demo_worker_pool(root)
        demo_http(root)
        demo_self_healing(root)
        demo_observability(root)


if __name__ == "__main__":
    main()
