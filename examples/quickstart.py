"""Quickstart: synthesize a relational table through the unified API.

Runs the paper's full loop on the Adult stand-in dataset:

1. load a table and split it 4:1:1 (train/valid/test);
2. call ``repro.synthesize(train, method="gan", valid=valid)`` — one
   call that trains with per-epoch snapshots, picks the best snapshot on
   the validation set, and emits the synthetic table with provenance;
3. report classification utility (F1 difference) and privacy metrics;
4. save the fitted synthesizer, reload it by name, and draw a
   reproducible sample from the restored model.

Every method family works behind the same entry points — swap
``method="gan"`` for ``"vae"`` or ``"privbayes"``.  For multi-table
databases with foreign keys, see ``examples/relational_database.py``
(``repro.synthesize_database`` — referential integrity by
construction, parent-context-conditioned child generation).

Engine dtype: training runs on the library's own numpy autograd engine,
which defaults to ``float64`` (bit-for-bit reproducible trajectories).
For roughly 2x faster MLP/LSTM sweeps — and >10x on the CNN design
point — switch to the float32 training mode before building any model::

    from repro import nn
    nn.set_default_dtype("float32")   # or: with nn.default_dtype(...)

CNN fast path & sampling throughput
-----------------------------------
The convolution engine (``repro.nn.conv``) unfolds receptive fields
with a strided view and runs each layer as one GEMM; in float32
fast-math mode the whole conv + BatchNorm2d + activation chain executes
as a single fused tape node (``conv2d_bn_act`` /
``conv_transpose2d_bn_act``, wired through
``Conv2d.forward(activation=..., bn=...)``), with unfold/grad scratch
buffers recycled across train steps via ``repro.nn.ArrayPool``.  In
float64 parity mode conv outputs stay bit-identical to the historical
im2col engine.

Generation is streaming end to end: ``sample``/``sample_iter`` run the
whole stream inside one sampling session (models flip to eval once, not
per chunk), draw noise in the engine dtype, decode chunks through the
transformers' precomputed vectorized inverse (``CompiledInverse`` —
whole-matrix ops instead of per-attribute calls, bit-identical
results), and in fast-math mode fold eval-mode batch norm into the
generator's affine layers.  ``repro.synthesize(..., sample_batch=...)``
exposes the chunk size.

``benchmarks/bench_engine_microbench.py`` times the engine's hot phases
in both dtypes and records them in ``BENCH_engine_microbench.json``
(CI fails if the CNN step regresses >20% vs the committed baseline);
``benchmarks/bench_sampling_throughput.py`` tracks generation rows/sec
against the pre-fast-path loop in ``BENCH_sampling_throughput.json``.
Run both after touching ``repro.nn`` or the transform layer.  The sweep
benchmarks default to float32 fast-math; pass ``--parity`` (or set
``REPRO_BENCH_DTYPE=float64``) for the bit-exact mode.

Observability: every layer this example exercises is instrumented via
``repro.obs`` — a dependency-free metrics registry (scraped as
Prometheus text from the serving stack's ``GET /metrics``), request
traces that stitch per-chunk worker spans across processes, and opt-in
engine profiling (``REPRO_PROFILE=1`` + ``repro.obs.profile_report()``
for per-tape-op forward/backward time and ArrayPool hit rates).  See
``examples/serving.py`` and the README's "Observability" section.

Usage::

    python examples/quickstart.py
"""

import tempfile

import numpy as np

import repro
from repro import datasets
from repro.core import DesignConfig, classification_utility, privacy_report
from repro.report import synthesis_summary


def main():
    table = datasets.load("adult", n_records=2000, seed=0)
    train, valid, test = datasets.split(table, seed=0)
    print(f"dataset: {table} -> train={len(train)} valid={len(valid)} "
          f"test={len(test)}")

    config = DesignConfig(generator="mlp", categorical_encoding="onehot",
                          numerical_normalization="gmm")
    print(f"design point: {config.describe()}")
    print(f"registered families: {repro.available_synthesizers()}")

    result = repro.synthesize(train, method="gan", config=config,
                              valid=valid, epochs=6,
                              iterations_per_epoch=30, seed=0)
    print()
    print(synthesis_summary(result))

    fake = result.table
    print("\nfirst three synthetic records:")
    for record in fake.to_records()[:3]:
        print("  ", record)

    print("\nutility (classifier trained on synthetic vs real):")
    for clf in ("DT10", "RF10", "LR"):
        utility = classification_utility(fake, train, test, clf)
        print(f"  {clf}: F1(real)={utility.f1_real:.3f} "
              f"F1(synthetic)={utility.f1_synthetic:.3f} "
              f"diff={utility.diff:.3f}")

    report = privacy_report(fake, train, hit_samples=500, dcr_samples=300)
    print(f"\nprivacy: hitting rate={100 * report.hitting_rate:.2f}%  "
          f"DCR={report.dcr:.3f}")
    print("(a hitting rate near 0 and a DCR well above 0 mean no "
          "one-to-one record leakage)")

    # Persistence: the fitted synthesizer (best snapshot active) round
    # trips through save/load and samples reproducibly with a seed.
    with tempfile.TemporaryDirectory() as model_dir:
        result.synthesizer.save(model_dir)
        restored = repro.load_synthesizer(model_dir)
        a = result.synthesizer.sample(5, seed=42)
        b = restored.sample(5, seed=42)
        match = all(np.array_equal(a.column(n), b.column(n))
                    for n in a.schema.names)
        print(f"\nsave -> load -> sample(seed=42) reproduces the original: "
              f"{match}")


if __name__ == "__main__":
    main()
