"""Quickstart: synthesize a relational table with a GAN and evaluate it.

Runs the paper's full loop on the Adult stand-in dataset:

1. load a table and split it 4:1:1 (train/valid/test);
2. train a GAN synthesizer (MLP generator, one-hot + GMM transformation,
   vanilla training) with per-epoch snapshots;
3. pick the best snapshot on the validation set and generate a fake table;
4. report classification utility (F1 difference) and privacy metrics.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro import datasets
from repro.core import (
    DesignConfig, classification_utility, privacy_report, run_gan_synthesis,
)


def main():
    table = datasets.load("adult", n_records=2000, seed=0)
    train, valid, test = datasets.split(table, seed=0)
    print(f"dataset: {table} -> train={len(train)} valid={len(valid)} "
          f"test={len(test)}")

    config = DesignConfig(generator="mlp", categorical_encoding="onehot",
                          numerical_normalization="gmm")
    print(f"design point: {config.describe()}")

    run = run_gan_synthesis(config, train, valid, epochs=6,
                            iterations_per_epoch=30, seed=0)
    print(f"validation F1 per epoch: "
          f"{[round(v, 3) for v in run.epoch_f1]} "
          f"(selected epoch {run.best_epoch})")

    fake = run.synthetic
    print("\nfirst three synthetic records:")
    for record in fake.to_records()[:3]:
        print("  ", record)

    print("\nutility (classifier trained on synthetic vs real):")
    for clf in ("DT10", "RF10", "LR"):
        result = classification_utility(fake, train, test, clf)
        print(f"  {clf}: F1(real)={result.f1_real:.3f} "
              f"F1(synthetic)={result.f1_synthetic:.3f} "
              f"diff={result.diff:.3f}")

    report = privacy_report(fake, train, hit_samples=500, dcr_samples=300)
    print(f"\nprivacy: hitting rate={100 * report.hitting_rate:.2f}%  "
          f"DCR={report.dcr:.3f}")
    print("(a hitting rate near 0 and a DCR well above 0 mean no "
          "one-to-one record leakage)")


if __name__ == "__main__":
    main()
