"""Scenario: sharing skewed patient-like records for ML development.

The paper's motivating example: a hospital wants to hand a dataset to an
external team to develop a classifier, without exposing real records.
We use the Census stand-in (2 classes, 95:5 skew — the hardest label
imbalance in the paper) and compare:

* conditional GAN with label-aware sampling (CTrain) — the paper's
  recommendation for skewed data (Finding 4),
* an unconditional GAN,
* PrivBayes at two privacy budgets.

For each synthesizer we report minority-class F1 difference and the two
re-identification metrics.

Usage::

    python examples/healthcare_privacy.py
"""

import repro
from repro import datasets
from repro.core import (
    DesignConfig, classification_utility, privacy_report,
)


def evaluate(name, fake, train, test):
    utility = classification_utility(fake, train, test, "DT10")
    privacy = privacy_report(fake, train, hit_samples=400, dcr_samples=300)
    print(f"  {name:18s} F1-diff={utility.diff:.3f}  "
          f"hit-rate={100 * privacy.hitting_rate:.2f}%  "
          f"DCR={privacy.dcr:.3f}")


def main():
    table = datasets.load("census", n_records=2000, seed=1)
    train, valid, test = datasets.split(table, seed=1)
    minority = train.label_codes.mean()
    print(f"census stand-in: {len(train)} training records, "
          f"minority rate {minority:.1%}\n")

    print("synthesizers (lower F1-diff = better utility; "
          "lower hit-rate / higher DCR = better privacy):")

    cgan = repro.synthesize(train, method="gan",
                            config=DesignConfig(training="ctrain"),
                            valid=valid, epochs=8, iterations_per_epoch=40,
                            seed=0)
    evaluate("CGAN-C (CTrain)", cgan.table, train, test)

    vanilla = repro.synthesize(train, method="gan", valid=valid, epochs=8,
                               iterations_per_epoch=40, seed=0)
    evaluate("GAN (VTrain)", vanilla.table, train, test)

    for eps in (0.4, 1.6):
        pb = repro.make_synthesizer("privbayes", epsilon=eps, seed=0)
        evaluate(f"PrivBayes eps={eps}", pb.fit_sample(train), train, test)

    print("\nExpected shape (paper Findings 4-6): the conditional GAN "
          "(CGAN-C) beats the unconditional GAN on this skew data, and "
          "every GAN keeps the hitting rate near zero. Longer training "
          "budgets widen the GAN's utility lead over PrivBayes.")


if __name__ == "__main__":
    main()
