"""Multi-table synthesis: a customers/orders database with foreign keys.

Runs the :mod:`repro.relational` subsystem end to end on the simulated
two-table pair (``datasets.sdata_relational``):

1. build the training database — a ``customers`` table and an
   ``orders`` table wired by ``orders.customer_id -> customers``;
2. call ``repro.synthesize_database(db, method="gan")`` — one call
   that fits one per-table synthesizer per node of the FK graph in
   topological order (children trained with parent-context
   conditioning where the family supports it, plus a per-parent
   child-count model per FK edge), then samples a synthetic database
   in which every foreign key resolves **by construction**;
3. inspect the relational fidelity report: cardinality fidelity
   (children-per-parent distribution) and parent-child correlation
   preservation across the FK join;
4. save the fitted database synthesizer and reload it for a
   reproducible sample.

Swap ``method="gan"`` for ``"vae"`` or ``"privbayes"`` (or mix with
``per_table={"orders": "privbayes"}``) — referential integrity holds
for every family; conditioning only sharpens parent-child correlations
where supported.
"""

import pathlib
import tempfile

import repro
from repro import datasets


def main() -> None:
    db = datasets.sdata_relational(n_customers=300, seed=0)
    print(f"training database: {db}")
    print(f"  topological order: {db.topological_order()}")

    result = repro.synthesize_database(
        db, method="gan", epochs=3, iterations_per_epoch=20,
        seed=0, sample_seed=1)
    synthetic = result.database
    print(f"synthetic database: {synthetic}")
    print(f"  dangling foreign keys: {synthetic.check_integrity()}")

    edge = result.report["foreign_keys"][0]
    print(f"fidelity along {edge['foreign_key']}:")
    cardinality = edge["cardinality"]
    print(f"  orders per customer: real {cardinality['real_mean']:.2f} "
          f"vs synthetic {cardinality['synthetic_mean']:.2f} "
          f"(count TV distance {cardinality['count_tv_distance']:.3f})")
    print(f"  parent-child correlation drift: "
          f"{edge['correlation']['mean_abs_difference']:.3f}")
    for name, table_report in result.report["tables"].items():
        print(f"  {name}: marginal TV "
              f"{table_report['marginal_tv_mean']:.3f} "
              f"({table_report['n_synthetic']} rows)")

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "db-synth"
        result.synthesizer.save(path)
        restored = repro.load_database_synthesizer(path)
        again = restored.sample(scale=0.5, seed=7)
        print(f"restored model sampled: {again} "
              f"(dangling: {again.check_integrity()})")


if __name__ == "__main__":
    main()
