"""repro — reproduction of Fan et al., "Relational Data Synthesis using
Generative Adversarial Networks: A Design Space Exploration" (VLDB 2020).

The package implements the paper's unified synthesis framework (data
transformation -> training -> synthetic generation), its full GAN design
space (Figure 3), the baselines (VAE, PrivBayes), the evaluation
framework (classification / clustering / AQP utility + privacy metrics),
and all the substrates those require (an autograd NN engine, classical ML
models, an AQP engine, dataset generators).

All method families implement one :class:`repro.api.Synthesizer`
contract and are selected by name through a registry, so experiment
code never hard-codes a family.

Quickstart — one call with validation-based model selection::

    import repro
    from repro import datasets

    table = datasets.load("adult", n_records=4000, seed=0)
    train, valid, test = datasets.split(table, seed=0)

    result = repro.synthesize(train, method="gan", valid=valid,
                              epochs=5, seed=0)
    fake = result.table            # the synthetic table
    result.best_epoch              # validation-selected snapshot
    result.curves["selection"]     # the per-epoch selection series

Or drive the lifecycle yourself — any registered family ("gan", "vae",
"privbayes") behaves identically::

    synth = repro.make_synthesizer("gan", epochs=5, seed=0)
    synth.fit(train)
    fake = synth.sample(len(train), seed=0)   # reproducible sampling
    for chunk in synth.sample_iter(100_000, batch=512):
        ...                                    # streaming generation
    synth.save("models/adult-gan")
    same = repro.load_synthesizer("models/adult-gan")

Multi-table databases (``repro.relational``): declare tables + foreign
keys and synthesize the whole database with referential integrity by
construction — children are generated conditioned on their synthetic
parents' encoded rows, with per-parent child counts drawn from a
fitted cardinality model::

    db = repro.datasets.sdata_relational(n_customers=500)
    result = repro.synthesize_database(db, method="gan", epochs=5)
    result.database.check_integrity()   # {fk: 0} — no dangling keys
    result.report                       # cardinality + join-correlation

Explicit conditioning: the GAN family accepts per-row conditions end to
end — ``sample(n, conditions=label_codes)`` fixes the label of every
generated row, and ``fit(table, conditions=context_matrix)`` trains a
context-conditional generator (the relational subsystem's child-table
path)::

    cgan = repro.make_synthesizer("gan",
                                  config=repro.DesignConfig(conditional=True))
    cgan.fit(train)
    positives = cgan.sample(1000, conditions=np.ones(1000, dtype=int))

Serving (``repro.serve``): point the serving layer at a directory of
saved models and synthetic data becomes an HTTP service — model store
with LRU caching, a multiprocessing worker pool per model (seeded
requests shard across workers **bit-identically** to the local call),
micro-batching for small concurrent requests, streaming CSV for large
draws::

    synth.save("models/adult-gan")
    from repro.serve import SynthesisServer, WorkerPool

    with WorkerPool("models/adult-gan", workers=4) as pool:
        table = pool.sample(1_000_000, seed=7)   # == synth.sample(...)

    SynthesisServer("models/", workers=4).start()   # POST .../sample

(or ``python -m repro.serve models/ --port 8000``; see README).

Streaming & refresh (``repro.stream``): when the training table does
not fit in memory — or keeps growing — fit out-of-core from a chunked
source and hot-refresh a served model without dropping a request::

    # out-of-core: chunks stream from disk, never resident at once.
    synth = repro.fit_stream("data/orders.csv", method="privbayes",
                             epsilon=0.8, budget=3.2, seed=0)
    synth.partial_fit(new_rows)      # online: fold in fresh rows
    synth.sample(10_000, seed=1)     # lazily re-finalizes first

    # hot refresh: publish a new version; in-flight requests drain
    # on the old one, new requests get the new one.
    service = repro.serve.SynthesisService("models/")
    service.publish("orders-pb", synth)   # -> "v0002"

PrivBayes streams *bit-identically* (its count statistics are
additive): ``fit_stream`` over chunks equals the one-shot ``fit`` of
the concatenated table, noise draws included.  The neural families
stream through a seeded replay reservoir with bounded memory.  Every
PrivBayes release spends its ``epsilon`` against a cumulative
per-instance ledger, so ``budget=`` caps total privacy loss across
refreshes (``synth.privacy_spent()`` reports it).

Observability (``repro.obs``): a dependency-free metrics registry
(counters / gauges / histograms), request tracing, and a Prometheus
``GET /metrics`` endpoint on the serving front end.  The service layer
records into the default registry automatically; pass ``trace=`` to a
pooled ``sample`` to get a per-chunk span breakdown (workers ship
their spans back over the result pipes), and set ``REPRO_PROFILE=1``
for per-tape-op forward/backward timings via
``repro.obs.profile_report()``.  ``python -m repro.obs`` pretty-prints
any ``/metrics`` endpoint.  See the README's "Observability" section.

Correctness tooling (``repro.check``): a project lint enforces the
determinism / pool / fork-safety contracts statically
(``python -m repro.check.lint src/``), and ``REPRO_SANITIZE=1`` turns
on the runtime sanitizers — NaN/Inf tape checking, ArrayPool
leak/double-donation detection, lock-order recording over the serving
stack, and a guard that raises on any hidden global-RNG draw inside
seeded sampling.  See the README's "Correctness tooling" section.

Legacy entry points (``GANSynthesizer(config).fit(...)``,
``repro.core.run_gan_synthesis``) remain importable as thin shims.
"""

import os as _os

from .errors import (
    ReproError, SchemaError, TransformError, TrainingError, ConfigError,
    QueryError,
)

if _os.environ.get("REPRO_SANITIZE", "").strip() not in ("", "0"):
    # Enabled at import so every lock, pool, and tape node constructed
    # afterwards is covered (lock roles are chosen at creation time).
    from .check.sanitize import enable_sanitizers as _enable_sanitizers

    _enable_sanitizers()

if _os.environ.get("REPRO_PROFILE", "").strip() not in ("", "0"):
    # Same at-import pattern as the sanitizers: install the engine
    # profiling hooks before any tape op runs.
    from .obs.profile import enable_profiling as _enable_profiling

    _enable_profiling()

__version__ = "1.2.0"

__all__ = [
    "DesignConfig", "GANSynthesizer", "VAESynthesizer",
    "PrivBayesSynthesizer", "datasets",
    "Synthesizer", "SynthesisResult", "synthesize", "make_synthesizer",
    "register", "available_synthesizers", "load_synthesizer",
    "Database", "ForeignKey", "DatabaseSynthesizer",
    "synthesize_database", "load_database_synthesizer",
    "serve", "stream", "fit_stream", "obs",
    "ReproError", "SchemaError", "TransformError", "TrainingError",
    "ConfigError", "QueryError",
]

_LAZY = {
    "DesignConfig": ("repro.core.design_space", "DesignConfig"),
    "GANSynthesizer": ("repro.gan.synthesizer", "GANSynthesizer"),
    "VAESynthesizer": ("repro.vae.synthesizer", "VAESynthesizer"),
    "PrivBayesSynthesizer": ("repro.privbayes.synthesizer",
                             "PrivBayesSynthesizer"),
    "datasets": ("repro.datasets", None),
    "Synthesizer": ("repro.api", "Synthesizer"),
    "SynthesisResult": ("repro.api", "SynthesisResult"),
    "synthesize": ("repro.api.facade", "synthesize"),
    "make_synthesizer": ("repro.api", "make_synthesizer"),
    "register": ("repro.api", "register"),
    "available_synthesizers": ("repro.api", "available_synthesizers"),
    "load_synthesizer": ("repro.api", "load_synthesizer"),
    "Database": ("repro.relational", "Database"),
    "ForeignKey": ("repro.relational", "ForeignKey"),
    "DatabaseSynthesizer": ("repro.relational", "DatabaseSynthesizer"),
    "synthesize_database": ("repro.api.facade", "synthesize_database"),
    "load_database_synthesizer": ("repro.relational",
                                  "load_database_synthesizer"),
    "serve": ("repro.serve", None),
    "stream": ("repro.stream", None),
    "obs": ("repro.obs", None),
    "fit_stream": ("repro.api.facade", "fit_stream"),
}


def __getattr__(name):
    """Lazily import the public API (PEP 562)."""
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        module = importlib.import_module(module_name)
        value = module if attr is None else getattr(module, attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
