"""repro — reproduction of Fan et al., "Relational Data Synthesis using
Generative Adversarial Networks: A Design Space Exploration" (VLDB 2020).

The package implements the paper's unified GAN-based synthesis framework
(data transformation -> GAN training -> synthetic generation), its full
design space (Figure 3), the baselines (VAE, PrivBayes), the evaluation
framework (classification / clustering / AQP utility + privacy metrics),
and all the substrates those require (an autograd NN engine, classical ML
models, an AQP engine, dataset generators).

Quickstart::

    from repro import GANSynthesizer, DesignConfig, datasets

    table = datasets.load("adult", n_records=4000, seed=0)
    config = DesignConfig(generator="mlp", categorical_encoding="onehot",
                          numerical_normalization="gmm")
    synth = GANSynthesizer(config, epochs=5, seed=0)
    synth.fit(table)
    fake = synth.sample(len(table))
"""

from .errors import (
    ReproError, SchemaError, TransformError, TrainingError, ConfigError,
    QueryError,
)

__version__ = "1.0.0"

__all__ = [
    "DesignConfig", "GANSynthesizer", "VAESynthesizer",
    "PrivBayesSynthesizer", "datasets",
    "ReproError", "SchemaError", "TransformError", "TrainingError",
    "ConfigError", "QueryError",
]

_LAZY = {
    "DesignConfig": ("repro.core.design_space", "DesignConfig"),
    "GANSynthesizer": ("repro.gan.synthesizer", "GANSynthesizer"),
    "VAESynthesizer": ("repro.vae.synthesizer", "VAESynthesizer"),
    "PrivBayesSynthesizer": ("repro.privbayes.synthesizer",
                             "PrivBayesSynthesizer"),
    "datasets": ("repro.datasets", None),
}


def __getattr__(name):
    """Lazily import the public API (PEP 562)."""
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        module = importlib.import_module(module_name)
        value = module if attr is None else getattr(module, attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
