"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all library errors."""


class SchemaError(ReproError):
    """A table, column, or record does not match its declared schema."""


class TransformError(ReproError):
    """Data transformation failed (unknown category, bad shape, ...)."""


class TrainingError(ReproError):
    """Model training failed or was configured inconsistently."""


class ConfigError(ReproError):
    """A design-space configuration is invalid or internally inconsistent."""


class QueryError(ReproError):
    """An AQP query is malformed or references unknown columns."""


class StreamError(ReproError):
    """A streaming ingestion source or chunk sequence is invalid."""


class PrivacyBudgetError(ReproError):
    """A differential-privacy budget cap would be exceeded."""
