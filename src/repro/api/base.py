"""The unified synthesizer lifecycle (paper Figure 2, method-agnostic).

Every synthesis method family — GAN design points, the VAE baseline,
PrivBayes — implements the same contract:

* ``fit(table, callbacks=...)``     Phase I + II (transform, train);
* ``partial_fit(chunk)`` / ``fit_stream(source)``  streaming / online
  fitting for families with ``supports_partial_fit`` (out-of-core
  ingestion; the model refreshes lazily on the next sample);
* ``sample(n, batch=..., seed=...)``  Phase III, optionally reproducible;
* ``sample_iter(n, ...)``           streaming generation in table chunks;
* ``fit_sample(table, ...)``        the two phases in one call;
* ``save(path)`` / ``load(path)``   persistence: JSON metadata (config,
  fitted transformer state) plus ``.npz`` arrays via
  :mod:`repro.nn.serialization`.

Subclasses implement the small hook surface at the bottom of
:class:`Synthesizer` (``_fit``, ``_sample_chunk``, ``_state``,
``_load_state``); everything user-facing lives here, so benchmarks,
the :func:`repro.synthesize` facade, and future services can treat all
families interchangeably.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import threading
from typing import (
    Any, Callable, ClassVar, Dict, Iterator, List, Optional, Sequence,
    Tuple, Union,
)

import numpy as np

from ..check.lockorder import make_lock
from ..check.sanitize import deterministic_scope
from ..datasets.schema import Table
from ..errors import ConfigError, StreamError, TrainingError
from ..nn.serialization import load_state, save_state
from .seeding import substream

PathLike = Union[str, pathlib.Path]
Callback = Callable[[Any], None]

#: Identifies the on-disk persistence layout written by :meth:`Synthesizer.save`.
FORMAT_NAME = "repro-synthesizer"
FORMAT_VERSION = 1

_META_FILE = "synthesizer.json"
_ARRAYS_FILE = "arrays.npz"


def _count(name: str, value, minimum: int) -> int:
    """Validate an integer count argument, naming it in the error.

    Rejects non-integers (including bools and floats) and values below
    ``minimum`` with a :class:`ValueError` that names the offending
    argument — the serving layer and ``sample_iter`` both route their
    row-count / chunk-size validation through here so a bad request
    fails at the boundary instead of as an opaque downstream error.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(
            f"{name} must be an int, got {value!r} "
            f"(type {type(value).__name__})")
    if value < minimum:
        bound = "positive" if minimum >= 1 else f"at least {minimum}"
        raise ValueError(f"{name} must be {bound}, got {value}")
    return int(value)


def chunk_plan(n: int, batch: int) -> List[Tuple[int, int, int]]:
    """The chunk decomposition of a seeded ``n``-row stream.

    Returns ``[(index, offset, size), ...]`` covering rows ``[0, n)`` in
    ``batch``-sized chunks (the last one possibly smaller).  Under the
    sharded-seed contract this plan — not the executing process — defines
    the random stream: chunk ``index`` is always generated from the
    substream ``(seed, "chunk", index)``, so any subset of chunks can be
    computed anywhere and reassembled bit-identically.
    """
    n = _count("n", n, minimum=0)
    batch = _count("batch", batch, minimum=1)
    return [(i, i * batch, min(batch, n - i * batch))
            for i in range((n + batch - 1) // batch)]


def _as_callback_list(callbacks) -> List[Callback]:
    if callbacks is None:
        return []
    if callable(callbacks):
        return [callbacks]
    return [cb for cb in callbacks if cb is not None]


_STREAM_ROWS_COUNTER = None


def _note_stream_rows(method: Optional[str], rows: int) -> None:
    """Count ingested rows in the process metrics registry.

    Module-level and lazy on purpose: synthesizers must stay picklable
    (worker pools ship them), so the instrument is never stored on the
    object, and importing the api does not import ``repro.obs``.
    """
    global _STREAM_ROWS_COUNTER
    if _STREAM_ROWS_COUNTER is None:
        from ..obs.metrics import get_registry

        _STREAM_ROWS_COUNTER = get_registry().counter(
            "repro_stream_rows_ingested_total",
            "Rows ingested through partial_fit / fit_stream.",
            labelnames=("method",))
    _STREAM_ROWS_COUNTER.inc(rows, method=method or "unknown")


class Synthesizer:
    """Abstract base class for all relational data synthesizers.

    Subclasses register under a string key with
    :func:`repro.api.register`, which also sets :attr:`method` so saved
    models can be re-instantiated by name.
    """

    #: Registry key (set by the ``@register`` decorator).
    method: ClassVar[Optional[str]] = None
    #: Default generation chunk size when ``batch`` is not given.
    default_sample_batch: ClassVar[int] = 256
    #: True for families that accept explicit per-row ``conditions=``
    #: in ``fit`` / ``sample`` / ``sample_iter`` (currently the GAN
    #: family: label codes or arbitrary context matrices).
    supports_conditioning: ClassVar[bool] = False
    #: True for families implementing the streaming hooks
    #: (``partial_fit`` / ``finalize_stream`` / ``fit_stream``).
    supports_partial_fit: ClassVar[bool] = False
    #: Default ingestion chunk size when ``fit_stream`` is not given
    #: ``chunk_rows``.
    default_stream_chunk: ClassVar[int] = 4096

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self._fitted = False
        self._active_snapshot: Optional[int] = None
        self._sampling_depth = 0
        self._sampling_generation = 0
        self._session_lock = make_lock("synthesizer.session")
        self._eval_pinned = False
        self._stream_dirty = False
        self._stream_rows = 0
        self._stream_chunks = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _require_fitted(self) -> None:
        # A dirty stream (chunks ingested since the last finalize) is
        # sealed lazily: the first sample after a burst of partial_fit
        # calls performs the hot refresh implicitly.
        if self._stream_dirty:
            self.finalize_stream()
        if not self._fitted:
            raise TrainingError("synthesizer is not fitted")

    def _check_conditions(self, conditions, n: int, what: str):
        """Validate an explicit per-row conditioning input of length ``n``.

        Returns ``None`` untouched; otherwise coerces to an ndarray and
        enforces the family's support and the row count, so a mismatched
        conditions vector fails loudly instead of silently recycling.
        """
        if conditions is None:
            return None
        if not self.supports_conditioning:
            raise ConfigError(
                f"{type(self).__name__} does not support explicit "
                f"conditions in {what}")
        conditions = np.asarray(conditions)
        if len(conditions) != n:
            raise ValueError(
                f"conditions must have one row per record: got "
                f"{len(conditions)} for n={n}")
        return conditions

    def fit(self, table: Table, callbacks=None, conditions=None
            ) -> "Synthesizer":
        """Transform ``table`` and train the generative model.

        ``callbacks`` is a callable or sequence of callables invoked with
        per-epoch progress records (family-specific payloads; GAN passes
        :class:`~repro.gan.training.EpochRecord`).  ``conditions``
        optionally supplies one conditioning row per training record
        (families with :attr:`supports_conditioning`; the relational
        subsystem passes parent-context matrices here).
        """
        conditions = self._check_conditions(conditions, len(table), "fit")
        self._begin_clean_fit()
        self._fit(table, _as_callback_list(callbacks), conditions=conditions)
        self._fitted = True
        return self

    def _begin_clean_fit(self) -> None:
        """Shared preamble of ``fit`` and ``fit_stream``.

        Refitting rebuilds models, so any sampling session opened
        before the refit is void: reset the depth counter and bump the
        generation token so stale streams can no longer unwind it.
        Pending stream state is discarded and the family's
        :meth:`_reset_fit_state` hook clears per-fit derived state
        (discretizers, label frequencies, ...) so a re-fit never reuses
        statistics from the previous table — the clean-refit contract.
        """
        with self._session_lock:
            self._sampling_depth = 0
            self._sampling_generation += 1
        self._stream_dirty = False
        self._stream_rows = 0
        self._stream_chunks = 0
        self._reset_fit_state()

    # ------------------------------------------------------------------
    # Streaming / online fitting
    # ------------------------------------------------------------------
    def partial_fit(self, table: Table) -> "Synthesizer":
        """Absorb one table chunk of an ongoing stream.

        Only families with :attr:`supports_partial_fit` implement this.
        Ingestion is cheap (counts, running statistics, reservoir
        updates); the model itself is re-estimated by
        :meth:`finalize_stream` — which the next ``sample`` triggers
        automatically, so ``partial_fit`` + ``sample`` behaves as a hot
        refresh.
        """
        if not self.supports_partial_fit:
            raise ConfigError(
                f"{type(self).__name__} does not support partial_fit")
        if len(table) == 0:
            return self
        # The refreshed model invalidates open sampling sessions just
        # like a refit does.
        with self._session_lock:
            self._sampling_depth = 0
            self._sampling_generation += 1
        self._partial_fit(table)
        self._stream_dirty = True
        self._stream_rows += len(table)
        self._stream_chunks += 1
        _note_stream_rows(self.method, len(table))
        return self

    def finalize_stream(self) -> "Synthesizer":
        """Re-estimate the model from everything ingested so far.

        No-op when no chunks are pending.  On failure (e.g. a
        :class:`~repro.errors.PrivacyBudgetError` from an exhausted DP
        budget) the pending state is kept dirty, so retrying — or the
        next implicit finalize — raises again instead of silently
        sampling a half-updated model.
        """
        if not self._stream_dirty:
            if not self._fitted and self._stream_chunks == 0:
                raise TrainingError(
                    "no stream chunks ingested: call partial_fit or "
                    "fit_stream first")
            return self
        with self._session_lock:
            self._sampling_depth = 0
            self._sampling_generation += 1
        self._stream_dirty = False
        try:
            self._finalize_partial()
        except Exception:
            self._stream_dirty = True
            raise
        self._fitted = True
        return self

    def fit_stream(self, source, chunk_rows: Optional[int] = None,
                   schema=None, callbacks=None) -> "Synthesizer":
        """Fit out-of-core: ingest ``source`` chunk by chunk, then finalize.

        ``source`` is anything :func:`repro.stream.ingest.as_chunk_source`
        accepts — a :class:`Table`, a CSV path, an iterable of table
        chunks, or a zero-argument callable returning one.  Re-iterable
        sources additionally run the family's :meth:`_stream_prepass`
        (e.g. PrivBayes fixes global discretization ranges first, which
        is what makes ``fit_stream`` over k chunks reproduce the
        one-shot ``fit`` exactly).  ``callbacks`` receive one
        ``{"stage": "ingest", ...}`` record per chunk.
        """
        from ..stream.ingest import as_chunk_source

        if not self.supports_partial_fit:
            raise ConfigError(
                f"{type(self).__name__} does not support fit_stream")
        chunk_rows = chunk_rows if chunk_rows is not None \
            else self.default_stream_chunk
        chunk_source = as_chunk_source(source, chunk_rows=chunk_rows,
                                       schema=schema)
        callbacks = _as_callback_list(callbacks)
        self._begin_clean_fit()
        if chunk_source.reiterable:
            self._stream_prepass(chunk_source)
        for chunk in chunk_source.chunks():
            # Guarded per chunk (chunk *reading* happens outside, in the
            # for statement): streamed fits must draw only from their
            # seeded generators to reproduce the one-shot fit exactly.
            with deterministic_scope():
                self.partial_fit(chunk)
            for callback in callbacks:
                callback({"stage": "ingest", "chunk": self._stream_chunks - 1,
                          "rows": len(chunk),
                          "total_rows": self._stream_rows})
        if self._stream_chunks == 0:
            raise StreamError("stream source produced no chunks")
        with deterministic_scope():
            return self.finalize_stream()

    @property
    def stream_rows(self) -> int:
        """Rows ingested through the streaming path since the last reset."""
        return self._stream_rows

    def privacy_spent(self) -> Optional[float]:
        """Cumulative DP epsilon spent across fits and stream refreshes.

        ``None`` for families without differential-privacy accounting.
        """
        return None

    def sample_iter(self, n: int, batch: Optional[int] = None,
                    seed: Optional[int] = None,
                    conditions=None) -> Iterator[Table]:
        """Stream ``n`` synthetic records as a sequence of table chunks.

        With ``seed`` given the stream is reproducible and independent
        of the synthesizer's internal generator state, under the
        **sharded-seed contract**: chunk ``i`` of the :func:`chunk_plan`
        is generated from the keyed substream ``(seed, "chunk", i)``, so
        the stream for a given ``(n, batch, seed)`` is bit-identical no
        matter which process — or how many :mod:`repro.serve` workers —
        computes its chunks.  With ``seed=None`` the shared training RNG
        is consumed sequentially (legacy behaviour).  The whole stream
        runs inside one :meth:`_sampling_session`, so per-stream setup
        (e.g. switching models to eval mode) happens once rather than
        per chunk.  ``conditions`` supplies one explicit conditioning
        row per requested record (label codes or a context matrix,
        family-dependent); chunks receive the matching slice.
        """
        self._require_fitted()
        n = _count("n", n, minimum=0)
        batch = batch if batch is not None else self.default_sample_batch
        batch = _count("batch", batch, minimum=1)
        conditions = self._check_conditions(conditions, n, "sample_iter")
        if seed is not None:
            return (chunk for _, chunk in self._iter_chunks(
                chunk_plan(n, batch), seed, conditions))
        return self._legacy_stream(n, batch, conditions)

    def _legacy_stream(self, n: int, batch: int,
                       conditions) -> Iterator[Table]:
        """Unseeded streaming: consume the shared training RNG in order."""
        rng = self.rng
        remaining = n
        with self._sampling_session():
            while remaining > 0:
                m = min(batch, remaining)
                chunk_conditions = None
                if conditions is not None:
                    start = n - remaining
                    chunk_conditions = conditions[start:start + m]
                # Unseeded draws come from self.rng (the documented
                # default), never from NumPy's hidden global state.
                with deterministic_scope():
                    chunk = self._sample_chunk(
                        m, rng, conditions=chunk_conditions)
                yield chunk
                remaining -= m

    def sample_chunks(self, n: int, batch: Optional[int] = None,
                      seed: Optional[int] = None,
                      indices: Optional[Sequence[int]] = None,
                      conditions=None) -> Iterator[Tuple[int, Table]]:
        """Generate selected chunks of a seeded stream as ``(index, table)``.

        This is the worker-side entry point of the sharded-seed
        contract: ``indices`` names which chunks of ``chunk_plan(n,
        batch)`` to produce (default: all of them, making this
        ``enumerate(sample_iter(...))``).  Each chunk's substream
        depends only on ``(seed, index)``, so disjoint index sets
        computed by different processes concatenate — in index order —
        to exactly ``sample(n, batch=batch, seed=seed)``.  All requested
        chunks run inside one sampling session.
        """
        self._require_fitted()
        if seed is None:
            raise ValueError(
                "sample_chunks requires seed: the sharded-seed contract "
                "keys every chunk's substream off it")
        plan = chunk_plan(n, batch if batch is not None
                          else self.default_sample_batch)
        conditions = self._check_conditions(conditions, n, "sample_chunks")
        if indices is not None:
            for index in indices:
                _count("chunk index", index, minimum=0)
                if index >= len(plan):
                    raise ValueError(
                        f"chunk index {index} out of range: the plan for "
                        f"n={n} has {len(plan)} chunks")
            plan = [plan[int(index)] for index in indices]
        return self._iter_chunks(plan, seed, conditions)

    def _iter_chunks(self, plan, seed: int, conditions
                     ) -> Iterator[Tuple[int, Table]]:
        with self._sampling_session():
            for index, offset, m in plan:
                rng = substream(seed, "chunk", index)
                chunk_conditions = None
                if conditions is not None:
                    chunk_conditions = conditions[offset:offset + m]
                # The guard covers one chunk at a time (not consumer
                # code between yields): any hidden np.random global-state
                # draw inside _sample_chunk breaks bit-identity.
                with deterministic_scope():
                    chunk = self._sample_chunk(
                        m, rng, conditions=chunk_conditions)
                yield index, chunk

    def spawn_sampler(self, worker_id: int = 0) -> "Synthesizer":
        """Prepare this instance to sample inside an independent worker.

        Called once per :mod:`repro.serve` worker process on its own
        copy of the model (loaded after ``fork``/``spawn``).  It voids
        any sampling session inherited from the parent, replaces the
        session lock (a forked lock may be held by a thread that does
        not exist in the child), re-derives the internal generator on a
        worker-keyed substream so *unseeded* requests never collide
        across workers, and pins eval mode — a serving worker only ever
        samples, so flipping the module tree back to training mode
        between requests is pure overhead.  Returns ``self``.
        """
        self._require_fitted()
        worker_id = _count("worker_id", worker_id, minimum=0)
        self._session_lock = make_lock("synthesizer.session")
        self._sampling_depth = 0
        self._sampling_generation += 1
        self._eval_pinned = True
        self.rng = substream(self.seed, "worker", worker_id)
        return self

    def sample(self, n: int, batch: Optional[int] = None,
               seed: Optional[int] = None, conditions=None) -> Table:
        """Generate a synthetic table of ``n`` records.

        Passing ``seed`` makes repeated calls after the same ``fit``
        return identical tables (reproducible sampling).  ``conditions``
        fixes the per-row conditioning inputs instead of drawing them
        from the training marginal (see :meth:`sample_iter`).
        """
        self._require_fitted()
        n = _count("n", n, minimum=1)
        chunks = list(self.sample_iter(n, batch=batch, seed=seed,
                                       conditions=conditions))
        if len(chunks) == 1:
            return chunks[0]
        schema = chunks[0].schema
        columns = {name: np.concatenate([c.columns[name] for c in chunks])
                   for name in schema.names}
        return Table(schema, columns)

    def fit_sample(self, table: Table, n: Optional[int] = None,
                   callbacks=None, batch: Optional[int] = None,
                   seed: Optional[int] = None) -> Table:
        """``fit`` then ``sample`` (``n`` defaults to ``len(table)``)."""
        self.fit(table, callbacks=callbacks)
        return self.sample(n if n is not None else len(table),
                           batch=batch, seed=seed)

    def _sampling_rng(self, seed: Optional[int]) -> np.random.Generator:
        return self.rng if seed is None else np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Optional capabilities (used by the facade's model selection)
    # ------------------------------------------------------------------
    @property
    def supports_snapshots(self) -> bool:
        """True when per-epoch snapshots are available for selection."""
        return False

    @property
    def snapshots(self) -> List[Optional[Dict[str, np.ndarray]]]:
        """Per-epoch model state dicts (``None`` for unsnapshotted
        epochs); families that support snapshots override this."""
        raise TrainingError(
            f"{type(self).__name__} does not expose snapshots")

    def _snapshot_module(self):
        """The module :meth:`use_snapshot` restores state into."""
        raise NotImplementedError

    def use_snapshot(self, index: int) -> None:
        """Activate the model snapshot taken after epoch ``index``."""
        snapshots = self.snapshots
        if not -len(snapshots) <= index < len(snapshots):
            raise IndexError(f"no snapshot {index}")
        state = snapshots[index]
        if state is None:
            raise TrainingError(
                f"epoch {index % len(snapshots)} was not snapshotted; "
                "fit with keep_snapshots=True to enable selection")
        self._snapshot_module().load_state_dict(state)
        self._active_snapshot = index % len(snapshots)

    @property
    def active_snapshot(self) -> Optional[int]:
        return self._active_snapshot

    def training_curves(self) -> Dict[str, List[float]]:
        """Named per-epoch diagnostic series collected during ``fit``."""
        return {}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> pathlib.Path:
        """Persist the fitted synthesizer into directory ``path``.

        Layout: ``synthesizer.json`` (method name, constructor params,
        fitted transformer / structure state) and ``arrays.npz`` (model
        parameters via :mod:`repro.nn.serialization`).
        """
        self._require_fitted()
        if self.method is None:
            raise ConfigError(
                f"{type(self).__name__} is not registered; only registered "
                "synthesizers can be saved")
        path = pathlib.Path(path)
        path.mkdir(parents=True, exist_ok=True)
        meta, arrays = self._state()
        document = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "method": self.method,
            "state": meta,
        }
        (path / _META_FILE).write_text(json.dumps(document, indent=2))
        save_state(path / _ARRAYS_FILE, dict(arrays))
        return path

    @classmethod
    def load(cls, path: PathLike) -> "Synthesizer":
        """Restore a synthesizer saved with :meth:`save`.

        Called on the base class it dispatches on the saved method name
        through the registry; called on a subclass it additionally
        verifies the saved method matches.
        """
        path = pathlib.Path(path)
        meta_path = path / _META_FILE
        if not meta_path.exists():
            raise ConfigError(f"no saved synthesizer at {path}")
        document = json.loads(meta_path.read_text())
        if document.get("format") != FORMAT_NAME:
            raise ConfigError(f"{meta_path} is not a saved synthesizer")
        if document.get("version") != FORMAT_VERSION:
            raise ConfigError(
                f"unsupported synthesizer format version "
                f"{document.get('version')!r}")
        from .registry import resolve

        klass = resolve(document["method"])
        if cls is not Synthesizer and not issubclass(klass, cls):
            raise ConfigError(
                f"saved synthesizer has method {document['method']!r}, "
                f"not a {cls.__name__}")
        arrays = load_state(path / _ARRAYS_FILE)
        state = document["state"]
        instance = klass(**klass._init_kwargs_from_state(state["params"]))
        instance._load_state(state, arrays)
        instance._fitted = True
        return instance

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _fit(self, table: Table, callbacks: List[Callback],
             conditions=None) -> None:
        raise NotImplementedError

    def _sample_chunk(self, m: int, rng: np.random.Generator,
                      conditions=None) -> Table:
        """Generate one chunk of ``m`` records using ``rng``.

        ``conditions`` (families with :attr:`supports_conditioning`
        only) holds the explicit conditioning rows for this chunk; it is
        ``None`` when the caller wants the family's marginal draw.
        """
        raise NotImplementedError

    def _partial_fit(self, table: Table) -> None:
        """Ingest one non-empty stream chunk (statistics only).

        Families with :attr:`supports_partial_fit` accumulate whatever
        their :meth:`_finalize_partial` needs — additive counts,
        running transformer statistics, reservoir rows.  Must not
        consume ``self.rng`` on the count-exact families, so a streamed
        fit replays the one-shot RNG sequence bit-for-bit.
        """
        raise NotImplementedError

    def _finalize_partial(self) -> None:
        """Re-estimate the model from the accumulated stream state."""
        raise NotImplementedError

    def _stream_prepass(self, chunk_source) -> None:
        """Optional pre-ingestion pass over a re-iterable chunk source.

        Runs before the first :meth:`_partial_fit` when the source can
        be traversed twice; families use it for global statistics that
        must be fixed up front (e.g. discretization ranges).  Default:
        no-op.
        """

    def _reset_fit_state(self) -> None:
        """Clear per-fit derived state before a clean refit.

        Called by ``fit`` and ``fit_stream`` before any data is seen.
        Families override this to drop state their ``_fit`` does not
        unconditionally rebuild (fitted discretizers, label
        frequencies, stream accumulators); lifetime records such as a
        privacy ledger deliberately survive.  Default: no-op.
        """

    def _sampling_session(self):
        """Context manager held open across one ``sample_iter`` stream.

        Subclasses hoist per-chunk bookkeeping here (eval/train mode
        flips, buffer setup); the default is a no-op.  The context must
        be re-entrant: nested streams may open sessions concurrently.
        Families backed by an ``nn.Module`` typically return
        ``self._eval_mode_session(self.<module>)``.
        """
        return contextlib.nullcontext()

    @contextlib.contextmanager
    def _eval_mode_session(self, module):
        """Depth-counted eval/train session over ``module``.

        The eval/train flips walk the module tree; doing them once per
        stream instead of once per chunk matters for large streaming
        runs.  Depth counting keeps nested streams (e.g. snapshot
        scoring while another stream is open) in eval mode until the
        outermost one closes; the generation token voids sessions that
        were still open when a refit replaced the model.  The depth
        bookkeeping is lock-guarded so concurrent streams from serving
        threads interleave safely, and :meth:`spawn_sampler` can pin
        eval mode so worker processes skip the per-request train() walk.
        """
        with self._session_lock:
            token = self._sampling_generation
            self._sampling_depth += 1
            if self._sampling_depth == 1 and module.training:
                module.eval()
        try:
            yield
        finally:
            with self._session_lock:
                if token == self._sampling_generation:
                    self._sampling_depth -= 1
                    if self._sampling_depth == 0 and not self._eval_pinned:
                        module.train()

    def _state(self):
        """Return ``(meta, arrays)``: a JSON-serializable dict (must
        contain a ``"params"`` entry of constructor keyword arguments)
        and a flat ``{key: ndarray}`` mapping."""
        raise NotImplementedError

    def _load_state(self, state: Dict[str, Any],
                    arrays: Dict[str, np.ndarray]) -> None:
        """Restore fitted state produced by :meth:`_state`."""
        raise NotImplementedError

    @classmethod
    def _init_kwargs_from_state(cls, params: Dict[str, Any]) -> Dict[str, Any]:
        """Convert saved constructor params back into keyword arguments
        (hook for families whose params are richer than JSON scalars)."""
        return dict(params)


def prefixed(prefix: str, state: Dict[str, np.ndarray]
             ) -> Dict[str, np.ndarray]:
    """Namespace a state dict's keys (``{prefix}::{key}``)."""
    return {f"{prefix}::{key}": value for key, value in state.items()}


def unprefixed(prefix: str, arrays: Dict[str, np.ndarray]
               ) -> Dict[str, np.ndarray]:
    """Extract and strip one namespace written by :func:`prefixed`."""
    tag = f"{prefix}::"
    return {key[len(tag):]: value for key, value in arrays.items()
            if key.startswith(tag)}


def load_synthesizer(path: PathLike) -> Synthesizer:
    """Load any saved synthesizer, dispatching on its registered method."""
    return Synthesizer.load(path)
