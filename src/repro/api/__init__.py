"""Unified synthesizer API: lifecycle contract, registry, facade.

This package is the seam between method families (GAN design points,
VAE, PrivBayes, future backends) and everything that consumes them
(benchmarks, experiment runners, services):

* :class:`Synthesizer` — the abstract lifecycle every family implements
  (``fit`` / ``sample`` / ``sample_iter`` / ``fit_sample`` / ``save`` /
  ``load``);
* :func:`register` / :func:`make_synthesizer` — string-keyed family
  registry;
* :func:`synthesize` — one-call facade with validation-based model
  selection, returning a :class:`SynthesisResult`;
* :func:`fit_stream` — the out-of-core counterpart: fit a family
  chunk-by-chunk from a CSV / table-iterator source (see
  :mod:`repro.stream`);
* :func:`synthesize_database` — the multi-table analogue over a
  :class:`repro.relational.Database` (FK-aware, see
  :mod:`repro.relational`);
* :func:`load_synthesizer` — restore any saved synthesizer by its
  recorded method name.
"""

from .base import Synthesizer, chunk_plan, load_synthesizer
from .registry import (
    available_synthesizers, canonical_name, make_synthesizer, register,
    resolve,
)
from .result import SynthesisResult
from .seeding import derive_seed, fresh_seed, seed_sequence, substream

__all__ = [
    "Synthesizer", "load_synthesizer", "chunk_plan",
    "available_synthesizers", "canonical_name", "make_synthesizer",
    "register", "resolve",
    "derive_seed", "fresh_seed", "seed_sequence", "substream",
    "SynthesisResult", "synthesize", "synthesize_database", "fit_stream",
    "SnapshotScores", "score_snapshots", "select_snapshot",
]

_LAZY = {
    "synthesize": ("repro.api.facade", "synthesize"),
    "synthesize_database": ("repro.api.facade", "synthesize_database"),
    "fit_stream": ("repro.api.facade", "fit_stream"),
    "SnapshotScores": ("repro.api.selection", "SnapshotScores"),
    "score_snapshots": ("repro.api.selection", "score_snapshots"),
    "select_snapshot": ("repro.api.selection", "select_snapshot"),
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        value = getattr(importlib.import_module(module_name), attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
