"""Validation-based snapshot selection, shared across method families.

Paper §6.2: after each training epoch the generator snapshot synthesizes
a table, which is scored against the *validation* set — classifier F1
for labeled tables, negative mean marginal total variation for unlabeled
ones.  The scoring tables are cached so the winning snapshot's table can
be reused as (part of) the final output instead of being regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..datasets.schema import Table
from .base import Synthesizer

Criterion = Callable[[Table], float]


@dataclass
class SnapshotScores:
    """Per-snapshot validation scores plus the tables that produced them."""

    scores: List[float]
    tables: List[Table]
    criterion: str

    @property
    def best_index(self) -> int:
        return int(np.argmax(self.scores))


def default_sample_size(valid: Table) -> int:
    """The paper's scoring sample size: ``min(2000, max(500, 2|V|))``."""
    return min(2000, max(500, len(valid) * 2))


def make_criterion(valid: Table, classifier: str = "DT10",
                   seed: int = 0) -> tuple:
    """Build the validation scoring function for ``valid``.

    Labeled tables score classifier F1 (higher is better); unlabeled
    tables score ``-mean marginal TV`` so both criteria are maximized.
    Returns ``(name, callable)``.
    """
    from ..core.evaluation import classifier_f1
    from ..core.statistics import marginal_distances

    if valid.schema.label is not None:
        def score(table: Table) -> float:
            return classifier_f1(table, valid, classifier, seed)

        return f"f1:{classifier}", score

    def score(table: Table) -> float:
        distances = marginal_distances(valid, table)
        return -float(np.mean(list(distances.values())))

    return "fidelity", score


def score_snapshots(synthesizer: Synthesizer, valid: Table,
                    classifier: str = "DT10",
                    sample_size: Optional[int] = None,
                    seed: int = 0,
                    criterion: Optional[Criterion] = None,
                    criterion_name: str = "custom") -> SnapshotScores:
    """Score every training snapshot on the validation table.

    The synthesizer is left with the *last* scored snapshot active;
    callers select with ``synthesizer.use_snapshot(result.best_index)``.
    """
    if not synthesizer.supports_snapshots:
        raise ValueError(
            f"{type(synthesizer).__name__} does not expose snapshots")
    if criterion is None:
        criterion_name, criterion = make_criterion(valid, classifier, seed)
    if sample_size is None:
        sample_size = default_sample_size(valid)
    scores: List[float] = []
    tables: List[Table] = []
    for index in range(len(synthesizer.snapshots)):
        synthesizer.use_snapshot(index)
        snapshot_table = synthesizer.sample(sample_size)
        tables.append(snapshot_table)
        scores.append(float(criterion(snapshot_table)))
    return SnapshotScores(scores=scores, tables=tables,
                          criterion=criterion_name)


def select_snapshot(synthesizer: Synthesizer, valid: Table,
                    classifier: str = "DT10",
                    sample_size: Optional[int] = None,
                    seed: int = 0) -> SnapshotScores:
    """Score all snapshots and activate the best one."""
    result = score_snapshots(synthesizer, valid, classifier=classifier,
                             sample_size=sample_size, seed=seed)
    synthesizer.use_snapshot(result.best_index)
    return result


def extend_to(table: Table, n: int, synthesizer: Synthesizer,
              seed: Optional[int] = None,
              batch: Optional[int] = None) -> Table:
    """Reuse a cached sample as the final output of ``n`` records.

    Takes a prefix when the cache is large enough; otherwise generates
    only the shortfall — the resampling the selection loop used to do
    from scratch.  ``batch`` is the streaming chunk size of the top-up
    pass.
    """
    if n <= len(table):
        return table.take(np.arange(n))
    extra = synthesizer.sample(n - len(table), batch=batch, seed=seed)
    return table.concat_rows(extra)
