"""String-keyed synthesizer registry.

Experiment code, benchmarks, and services select method families by
name instead of importing concrete classes::

    from repro.api import make_synthesizer

    synth = make_synthesizer("gan", epochs=5, seed=0)
    synth.fit(train)

Built-in families ("gan", "vae", "privbayes") resolve lazily so that
importing :mod:`repro.api` stays cheap; third-party synthesizers join
the registry with the :func:`register` class decorator.
"""

from __future__ import annotations

import importlib
from typing import Dict, Tuple, Type

from ..errors import ConfigError

#: Lazily imported built-in families: name -> (module, class name).
_BUILTIN: Dict[str, Tuple[str, str]] = {
    "gan": ("repro.gan.synthesizer", "GANSynthesizer"),
    "vae": ("repro.vae.synthesizer", "VAESynthesizer"),
    "privbayes": ("repro.privbayes.synthesizer", "PrivBayesSynthesizer"),
    # Multi-table: fits a Database (not a Table); see repro.relational.
    "relational": ("repro.relational.synthesizer", "DatabaseSynthesizer"),
}

#: Convenience aliases accepted anywhere a method name is.
_ALIASES: Dict[str, str] = {"pb": "privbayes"}

_REGISTRY: Dict[str, Type] = {}


def register(name: str):
    """Class decorator adding a :class:`~repro.api.base.Synthesizer`
    subclass to the registry under ``name`` (also sets ``cls.method``).
    """

    def decorator(cls):
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ConfigError(
                f"synthesizer name {name!r} is already registered "
                f"to {existing.__name__}")
        cls.method = name
        _REGISTRY[name] = cls
        return cls

    return decorator


def canonical_name(name: str) -> str:
    """Resolve aliases (e.g. ``"pb"`` -> ``"privbayes"``)."""
    return _ALIASES.get(name, name)


def resolve(name: str) -> Type:
    """Look up a synthesizer class by registered name.

    Raises :class:`~repro.errors.ConfigError` for unknown names.
    """
    if not isinstance(name, str):
        raise ConfigError(f"synthesizer name must be a string, got {name!r}")
    key = canonical_name(name)
    if key not in _REGISTRY and key in _BUILTIN:
        module_name, class_name = _BUILTIN[key]
        # Importing the module runs its @register decorator.
        module = importlib.import_module(module_name)
        _REGISTRY.setdefault(key, getattr(module, class_name))
    if key not in _REGISTRY:
        known = ", ".join(sorted(available_synthesizers()))
        raise ConfigError(
            f"unknown synthesizer {name!r} (available: {known})")
    return _REGISTRY[key]


def make_synthesizer(name: str, **kwargs):
    """Instantiate a registered synthesizer by name.

    Keyword arguments are forwarded verbatim to the family's
    constructor (e.g. ``config=``/``epochs=`` for "gan", ``epsilon=``
    for "privbayes").
    """
    return resolve(name)(**kwargs)


def available_synthesizers() -> Tuple[str, ...]:
    """Sorted names of every registered (or built-in) family."""
    return tuple(sorted(set(_BUILTIN) | set(_REGISTRY)))
