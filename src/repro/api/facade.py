"""One-call synthesis facade: ``repro.synthesize(table, method=...)``.

Subsumes the legacy GAN-only pipeline (``run_gan_synthesis``) in a
method-generic way: any registered family is constructed by name,
fitted, optionally snapshot-selected against a validation table, and
returned as a :class:`~repro.api.result.SynthesisResult` carrying the
synthetic table, the fitted synthesizer, and full provenance.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, Optional

from ..datasets.schema import Table
from ..errors import ConfigError
from ..obs import clock as _obs_clock
from .base import Synthesizer
from .registry import canonical_name, make_synthesizer, resolve
from .result import SynthesisResult
from .selection import extend_to, score_snapshots


def _constructor_kwargs(klass, explicit: Dict[str, Any],
                        defaults: Dict[str, Any]) -> Dict[str, Any]:
    """Assemble constructor keyword arguments for ``klass``.

    ``explicit`` holds what the caller spelled out (facade ``**kwargs``
    plus any named facade parameter they set): unaccepted keys are an
    error, so typos and family mismatches fail loudly, and values —
    including meaningful ``None``\\ s like ``epsilon=None`` — pass
    through verbatim.  ``defaults`` holds unset facade parameters:
    they are dropped so each family keeps its own defaults.
    """
    params = inspect.signature(klass.__init__).parameters
    accepts_var_kwargs = any(p.kind is inspect.Parameter.VAR_KEYWORD
                             for p in params.values())
    rejected = [key for key in explicit
                if key not in params and not accepts_var_kwargs]
    if rejected:
        raise ConfigError(
            f"{klass.__name__} does not accept argument(s) "
            f"{', '.join(sorted(rejected))}")
    accepted = dict(explicit)
    for key, value in defaults.items():
        if key not in accepted and (key in params or accepts_var_kwargs) \
                and value is not None:
            accepted[key] = value
    return accepted


def synthesize(table: Table, method: str = "gan", *,
               config=None,
               valid: Optional[Table] = None,
               n: Optional[int] = None,
               size_ratio: float = 1.0,
               epochs: Optional[int] = None,
               iterations_per_epoch: Optional[int] = None,
               seed: int = 0,
               selection_classifier: str = "DT10",
               selection_sample_size: Optional[int] = None,
               sample_seed: Optional[int] = None,
               sample_batch: Optional[int] = None,
               callbacks=None,
               **kwargs) -> SynthesisResult:
    """Fit a synthesizer by name and emit a synthetic table.

    Parameters
    ----------
    table:
        Training table ``T_train``.
    method:
        Registered family name ("gan", "vae", "privbayes", ...).
    config:
        :class:`~repro.core.design_space.DesignConfig` for families that
        take one (the GAN design space); must be omitted otherwise.
    valid:
        Validation table enabling per-epoch snapshot selection (paper
        §6.2) for families that support snapshots.  The snapshot tables
        generated for scoring are cached and the winner is reused as the
        final output (unless ``sample_seed`` is set), so the best epoch
        is not resampled from scratch.
    n, size_ratio:
        Output size: explicit ``n``, or ``round(len(table) *
        size_ratio)`` (the paper's ``|T'| / |T_train|`` knob).
    epochs, iterations_per_epoch, seed, kwargs:
        Forwarded to the family constructor when it accepts them.
    selection_classifier, selection_sample_size:
        Snapshot scoring knobs (classifier F1 on labeled tables,
        marginal fidelity on unlabeled ones).
    sample_seed:
        Seed for the final sampling pass (reproducible output); setting
        it bypasses the scoring-table cache so the whole output comes
        from one seeded pass.
    sample_batch:
        Streaming chunk size for the final sampling pass (defaults to
        the family's ``default_sample_batch``); generation always runs
        through the ``sample_iter`` streaming path.
    callbacks:
        Per-epoch progress callbacks forwarded to ``fit``.
    """
    method = canonical_name(method)
    klass = resolve(method)
    explicit = dict(kwargs)
    for key, value in (("config", config), ("epochs", epochs),
                       ("iterations_per_epoch", iterations_per_epoch)):
        if value is not None:
            explicit[key] = value
    # Without a validation table no snapshot selection can run, so
    # families that support it default to snapshotting only the final
    # epoch (big memory win on sweeps); an explicit keep_snapshots in
    # ``kwargs`` still wins.
    init_kwargs = _constructor_kwargs(
        klass, explicit,
        {"seed": seed, "keep_snapshots": valid is not None})

    start = _obs_clock.perf()
    synthesizer: Synthesizer = make_synthesizer(method, **init_kwargs)
    synthesizer.fit(table, callbacks=callbacks)

    n_out = n if n is not None else max(1, int(round(len(table) * size_ratio)))
    curves = dict(synthesizer.training_curves())
    best_epoch = None
    criterion = None
    if synthesizer.supports_snapshots and valid is not None:
        selection = score_snapshots(
            synthesizer, valid, classifier=selection_classifier,
            sample_size=selection_sample_size, seed=seed)
        best_epoch = selection.best_index
        criterion = selection.criterion
        synthesizer.use_snapshot(best_epoch)
        curves["selection"] = selection.scores
        if sample_seed is None:
            synthetic = extend_to(selection.tables[best_epoch], n_out,
                                  synthesizer, batch=sample_batch)
        else:
            # A seeded output must be one reproducible sampling pass,
            # not a mix of cached (unseeded) rows and seeded top-up.
            synthetic = synthesizer.sample(n_out, batch=sample_batch,
                                           seed=sample_seed)
    else:
        synthetic = synthesizer.sample(n_out, batch=sample_batch,
                                       seed=sample_seed)
    elapsed = _obs_clock.perf() - start

    provenance = {
        "method": method,
        "seed": seed,
        "n_train": len(table),
        "n_synthetic": len(synthetic),
        "selection_criterion": criterion,
        "elapsed_seconds": elapsed,
    }
    describe = getattr(getattr(synthesizer, "config", None), "describe", None)
    if callable(describe):
        provenance["config"] = describe()
    return SynthesisResult(table=synthetic, synthesizer=synthesizer,
                           method=method, best_epoch=best_epoch,
                           curves=curves, provenance=provenance)


def fit_stream(source, method: str = "privbayes", *,
               chunk_rows: Optional[int] = None,
               schema=None,
               seed: int = 0,
               callbacks=None,
               **kwargs) -> Synthesizer:
    """Fit a synthesizer out-of-core from a chunked source.

    The streaming counterpart of :func:`synthesize`'s fitting step:
    constructs a registered family by name and ingests ``source``
    chunk by chunk through its ``partial_fit`` path, so the training
    table never has to be resident at once.

    Parameters
    ----------
    source:
        Anything :func:`repro.stream.as_chunk_source` accepts: a CSV
        path, a :class:`~repro.datasets.schema.Table`, an iterable of
        tables, or a zero-argument callable returning one.
    method:
        Registered family with ``supports_partial_fit``.  Defaults to
        ``"privbayes"``, whose streamed fit is *bit-identical* to the
        one-shot fit of the concatenated chunks; ``"gan"``/``"vae"``
        stream through a seeded replay reservoir instead (bounded
        memory, approximate).
    chunk_rows:
        Rows per ingested chunk where the source allows re-chunking
        (defaults to the family's ``default_stream_chunk``).
    schema:
        Optional explicit schema for CSV sources (otherwise inferred
        from a leading sample).
    seed, kwargs:
        Forwarded to the family constructor when accepted (e.g.
        ``epsilon=0.8, budget=3.2`` for PrivBayes, ``reservoir_rows``
        for the neural families).
    callbacks:
        Per-chunk progress callbacks: each receives
        ``{"stage": "ingest", "chunk": i, "rows": m, "total_rows": t}``.

    Returns the fitted synthesizer — call ``sample`` / ``save`` on it,
    or hand it straight to ``ModelStore.publish`` for a hot refresh.
    """
    method = canonical_name(method)
    klass = resolve(method)
    init_kwargs = _constructor_kwargs(
        klass, dict(kwargs),
        {"seed": seed, "keep_snapshots": False})
    synthesizer: Synthesizer = make_synthesizer(method, **init_kwargs)
    return synthesizer.fit_stream(source, chunk_rows=chunk_rows,
                                  schema=schema, callbacks=callbacks)


def synthesize_database(database, method: str = "gan", *,
                        per_table: Optional[Dict[str, str]] = None,
                        cardinality: str = "empirical",
                        scale: float = 1.0,
                        seed: int = 0,
                        sample_seed: Optional[int] = None,
                        sample_batch: Optional[int] = None,
                        report: bool = True,
                        callbacks=None,
                        **kwargs):
    """One-call multi-table synthesis: fit + sample + fidelity report.

    The relational analogue of :func:`synthesize`: fits a
    :class:`~repro.relational.DatabaseSynthesizer` (one registered
    per-table family per node of the FK graph, children conditioned on
    parent context where the family supports it), samples a synthetic
    database with referential integrity by construction, and — unless
    ``report=False`` — attaches the relational fidelity report
    (cardinality + parent-child correlation preservation, see
    :func:`repro.relational.database_fidelity_report`).

    Parameters
    ----------
    database:
        Training :class:`~repro.relational.Database`.
    method, per_table:
        Default per-table family name and per-table overrides.
    cardinality:
        Child-count model: ``"empirical"`` or ``"negbin"``.
    scale:
        Synthetic root-table size as a fraction of the real one;
        child sizes follow the cardinality draws.
    seed, kwargs:
        ``seed`` drives fitting; remaining keyword arguments (e.g.
        ``epochs=5``) forward to every per-table constructor.
    sample_seed, sample_batch:
        Reproducible-sampling seed and streaming chunk size for the
        generation pass.
    """
    from ..relational.metrics import database_fidelity_report
    from ..relational.synthesizer import (
        DatabaseSynthesisResult, DatabaseSynthesizer,
    )

    start = _obs_clock.perf()
    synthesizer = DatabaseSynthesizer(
        method=method, per_table=per_table, cardinality=cardinality,
        method_kwargs=kwargs, seed=seed)
    synthesizer.fit(database, callbacks=callbacks)
    synthetic = synthesizer.sample(scale, batch=sample_batch,
                                   seed=sample_seed)
    elapsed = _obs_clock.perf() - start
    fidelity = (database_fidelity_report(database, synthetic)
                if report else None)
    provenance = {
        "method": canonical_name(method),
        "per_table": {name: synthesizer.table_method(name)
                      for name in synthetic.table_names},
        "cardinality": cardinality,
        "seed": seed,
        "scale": scale,
        "n_real": {name: len(database[name])
                   for name in database.table_names},
        "n_synthetic": {name: len(synthetic[name])
                        for name in synthetic.table_names},
        "elapsed_seconds": elapsed,
    }
    return DatabaseSynthesisResult(database=synthetic,
                                   synthesizer=synthesizer,
                                   report=fidelity, provenance=provenance)
