"""The value object returned by the :func:`repro.synthesize` facade."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..datasets.schema import Table


@dataclass
class SynthesisResult:
    """A synthetic table plus the provenance of its generation.

    Attributes
    ----------
    table:
        The synthetic table ``T'``.
    synthesizer:
        The fitted synthesizer (best snapshot active for GAN families),
        ready for further :meth:`~repro.api.base.Synthesizer.sample` /
        :meth:`~repro.api.base.Synthesizer.save` calls.
    method:
        Registry name of the family ("gan", "vae", "privbayes", ...).
    best_epoch:
        Index of the validation-selected snapshot, when the family
        supports per-epoch snapshots and a validation table was given.
    curves:
        Named per-epoch series: the model-selection curve (key
        ``"selection"``) and any family training diagnostics
        (``"g_loss"``, ``"d_loss"``, ``"loss"``, ...).
    provenance:
        JSON-friendly generation record: seed, sizes, config
        description, selection criterion, wall-clock seconds.
    """

    table: Table
    synthesizer: Any
    method: str
    best_epoch: Optional[int] = None
    curves: Dict[str, List[float]] = field(default_factory=dict)
    provenance: Dict[str, Any] = field(default_factory=dict)

    @property
    def synthetic(self) -> Table:
        """Alias kept for symmetry with the legacy ``SynthesisRun``."""
        return self.table

    @property
    def selection_curve(self) -> List[float]:
        return self.curves.get("selection", [])

    @property
    def final_score(self) -> Optional[float]:
        """Selection score of the chosen snapshot (None without selection)."""
        curve = self.selection_curve
        if not curve or self.best_epoch is None:
            return None
        return curve[self.best_epoch]

    def __repr__(self) -> str:
        return (f"SynthesisResult(method={self.method!r}, n={len(self.table)}, "
                f"best_epoch={self.best_epoch})")
