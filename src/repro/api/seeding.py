"""Deterministic seed-substream derivation for parallel sampling.

Reproducible generation at service scale needs more than one seeded
stream: a ``sample(n, seed=s)`` request sharded across worker processes
must produce **bit-identical** output no matter how many workers ran it,
and a multi-table database draw must give every table and foreign-key
edge a stream that does not shift when an unrelated table is added.

Both properties come from the same primitive: a *keyed substream*.
:func:`seed_sequence` mixes a root seed with a tuple of structural tags
(``("chunk", 3)``, ``("table", "orders")``, ``("fk", "orders.cid")``)
into an independent :class:`numpy.random.SeedSequence`.  Tags are hashed
(SHA-256) into the entropy pool, so derivation depends only on the
*identity* of the consumer, never on the order in which consumers happen
to draw — unlike ``rng.integers()`` chains, where inserting one draw
perturbs every later one.

Consumers:

* :meth:`repro.api.Synthesizer.sample_iter` (seeded path) gives chunk
  ``i`` the substream ``("chunk", i)`` — the **sharded-seed contract**
  that makes :mod:`repro.serve` worker pools bit-identical to the
  single-process path;
* :class:`repro.relational.DatabaseSynthesizer` keys per-table fits and
  draws by table name and per-FK draws by FK key;
* :meth:`repro.api.Synthesizer.spawn_sampler` re-derives a forked
  worker's internal generator under ``("worker", worker_id)`` so
  unseeded requests never collide across workers.
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

import numpy as np

Tag = Union[str, int]

#: Derived integer seeds are kept below 2**63 so they stay exact through
#: JSON round-trips and fit signed 64-bit consumers.
_SEED_BOUND = 2 ** 63


def _require_seed(seed: int) -> int:
    if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
        raise ValueError(f"seed must be an int, got {seed!r}")
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    return int(seed)


def _tag_entropy(tags: Tuple[Tag, ...]) -> list:
    """Hash structural tags into uint32 entropy words.

    The digest depends on the tag *values and types* (``repr``), so
    ``("chunk", 1)`` and ``("chunk", "1")`` derive different streams and
    no two distinct tag tuples collide in practice.
    """
    digest = hashlib.sha256(repr(tags).encode("utf-8")).digest()
    return np.frombuffer(digest, dtype=np.uint32).tolist()


def seed_sequence(seed: int, *tags: Tag) -> np.random.SeedSequence:
    """An independent :class:`~numpy.random.SeedSequence` for ``tags``.

    Streams derived from the same ``seed`` under different tag tuples
    are statistically independent; the same ``(seed, tags)`` pair always
    yields the same sequence, on any platform.
    """
    return np.random.SeedSequence([_require_seed(seed), *_tag_entropy(tags)])


def substream(seed: int, *tags: Tag) -> np.random.Generator:
    """A fresh :class:`~numpy.random.Generator` on the keyed substream."""
    return np.random.default_rng(seed_sequence(seed, *tags))


def derive_seed(seed: int, *tags: Tag) -> int:
    """A derived integer seed (``[0, 2**63)``) on the keyed substream.

    Use where an API takes ``seed=`` rather than a generator (e.g. the
    per-table ``sample(seed=...)`` calls inside a database draw); the
    derived value inherits the independence guarantees of
    :func:`seed_sequence`.
    """
    state = seed_sequence(seed, *tags).generate_state(2, np.uint64)
    return int((int(state[0]) << 32 ^ int(state[1])) % _SEED_BOUND)


def fresh_seed() -> int:
    """A non-deterministic request seed (``[0, 2**63)``) from OS entropy.

    The serving layer assigns one to every unseeded request so the
    request can still be sharded deterministically across workers — and
    replayed, since the assigned seed is reported back to the client.
    """
    entropy = np.random.SeedSequence().generate_state(2, np.uint64)
    return int((int(entropy[0]) << 32 ^ int(entropy[1])) % _SEED_BOUND)
