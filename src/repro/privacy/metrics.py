"""Re-identification risk metrics: hitting rate and DCR (paper §6.2).

Hitting rate — sample synthetic records; a synthetic record "hits" when
at least one original record is *similar*: every categorical attribute
equal and every numerical attribute within ``range/30``.  The reported
rate is the fraction of sampled synthetic records with a hit.

DCR — for sampled original records, the Euclidean distance (after
attribute-wise min-max normalization) to the closest synthetic record,
averaged.  DCR=0 means the synthetic table leaks a real record.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets.schema import Table
from ..errors import SchemaError


def _aligned_matrices(real: Table, synthetic: Table):
    if real.schema.names != synthetic.schema.names:
        raise SchemaError("tables must share a schema")
    num_names = real.schema.numerical_names()
    cat_names = real.schema.categorical_names()
    real_num = np.column_stack([real.column(c) for c in num_names]) \
        if num_names else np.zeros((len(real), 0))
    synth_num = np.column_stack([synthetic.column(c) for c in num_names]) \
        if num_names else np.zeros((len(synthetic), 0))
    real_cat = np.column_stack([real.column(c) for c in cat_names]) \
        if cat_names else np.zeros((len(real), 0), dtype=np.int64)
    synth_cat = np.column_stack([synthetic.column(c) for c in cat_names]) \
        if cat_names else np.zeros((len(synthetic), 0), dtype=np.int64)
    return real_num, synth_num, real_cat, synth_cat


def hitting_rate(real: Table, synthetic: Table, n_samples: int = 5000,
                 range_divisor: float = 30.0,
                 rng: Optional[np.random.Generator] = None,
                 seed: int = 0) -> float:
    """Fraction of sampled synthetic records similar to >= 1 real record."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    real_num, synth_num, real_cat, synth_cat = _aligned_matrices(
        real, synthetic)
    n_samples = min(n_samples, len(synthetic))
    idx = rng.choice(len(synthetic), size=n_samples, replace=False)
    synth_num = synth_num[idx]
    synth_cat = synth_cat[idx]

    if real_num.shape[1]:
        ranges = real_num.max(axis=0) - real_num.min(axis=0)
        thresholds = np.maximum(ranges, 1e-12) / range_divisor
    hits = 0
    for i in range(n_samples):
        mask = np.ones(len(real_num), dtype=bool)
        if real_cat.shape[1]:
            mask &= (real_cat == synth_cat[i]).all(axis=1)
        if mask.any() and real_num.shape[1]:
            close = (np.abs(real_num[mask] - synth_num[i])
                     <= thresholds).all(axis=1)
            if close.any():
                hits += 1
        elif mask.any():
            hits += 1
    return hits / n_samples if n_samples else 0.0


def distance_to_closest_record(real: Table, synthetic: Table,
                               n_samples: int = 3000,
                               rng: Optional[np.random.Generator] = None,
                               seed: int = 0) -> float:
    """Mean distance from sampled real records to their nearest synthetic.

    All attributes are min-max normalized (with the real table's ranges)
    so each contributes equally, as the paper specifies.
    """
    rng = rng if rng is not None else np.random.default_rng(seed)
    real_num, synth_num, real_cat, synth_cat = _aligned_matrices(
        real, synthetic)

    # Normalize numerical attributes by the real ranges; categorical codes
    # by their domain size (0/1 mismatch would be an alternative; scaled
    # codes keep the metric continuous and attribute-balanced).
    parts_real = []
    parts_synth = []
    if real_num.shape[1]:
        low = real_num.min(axis=0)
        span = np.maximum(real_num.max(axis=0) - low, 1e-12)
        parts_real.append((real_num - low) / span)
        parts_synth.append((synth_num - low) / span)
    if real_cat.shape[1]:
        domain = np.maximum(real_cat.max(axis=0), 1).astype(np.float64)
        parts_real.append(real_cat / domain)
        parts_synth.append(synth_cat / domain)
    real_mat = np.concatenate(parts_real, axis=1)
    synth_mat = np.concatenate(parts_synth, axis=1)

    n_samples = min(n_samples, len(real_mat))
    idx = rng.choice(len(real_mat), size=n_samples, replace=False)
    sampled = real_mat[idx]

    # Blocked nearest-neighbour search to bound memory.
    block = max(1, 10_000_000 // max(len(synth_mat), 1))
    minima = np.empty(n_samples)
    for start in range(0, n_samples, block):
        chunk = sampled[start:start + block]
        d2 = ((chunk[:, None, :] - synth_mat[None, :, :]) ** 2).sum(axis=2)
        minima[start:start + block] = np.sqrt(d2.min(axis=1))
    return float(minima.mean())
