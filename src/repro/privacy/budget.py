"""Cumulative differential-privacy budget tracking across refreshes.

A streaming synthesizer re-estimates its model every ``finalize`` —
each release consumes a fresh slice of privacy budget over overlapping
data, so by sequential composition the stream's total cost is the *sum*
of per-release epsilons.  :class:`PrivacyLedger` records every spend
(with a note naming the refresh), reports the cumulative epsilon, and —
when constructed with a ``budget`` cap — refuses a spend that would
exceed it *before* any noised statistics are computed, raising
:class:`~repro.errors.PrivacyBudgetError`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import PrivacyBudgetError

#: Absolute slack so a budget spent in k equal slices of eps/k is not
#: rejected on the k-th slice by float rounding.
_EPSILON_SLACK = 1e-9

_M_REMAINING = None


def _note_remaining(remaining: float) -> None:
    """Publish the remaining budget of the most recent capped spend.

    One process-level gauge, not per-ledger: ledgers are plain
    picklable state and a typical streaming deployment has one capped
    ledger; concurrently capped ledgers overwrite each other (last
    spend wins).  Lazy so importing the privacy layer does not import
    ``repro.obs``.
    """
    global _M_REMAINING
    if _M_REMAINING is None:
        from ..obs.metrics import get_registry

        _M_REMAINING = get_registry().gauge(
            "repro_stream_privacy_budget_remaining",
            "Privacy budget (epsilon) left after the latest capped "
            "spend.")
    _M_REMAINING.set(remaining)


class PrivacyLedger:
    """Append-only record of epsilon spends under an optional cap."""

    def __init__(self, budget: Optional[float] = None):
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.budget = float(budget) if budget is not None else None
        self._events: List[Tuple[float, str]] = []

    @property
    def spent(self) -> float:
        """Cumulative epsilon across all recorded spends."""
        return float(sum(eps for eps, _ in self._events))

    @property
    def remaining(self) -> Optional[float]:
        """Budget left under the cap (``None`` when uncapped)."""
        if self.budget is None:
            return None
        return max(0.0, self.budget - self.spent)

    @property
    def events(self) -> List[Tuple[float, str]]:
        return list(self._events)

    def check(self, epsilon: float) -> None:
        """Raise if spending ``epsilon`` now would exceed the cap."""
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        if self.budget is not None \
                and self.spent + epsilon > self.budget + _EPSILON_SLACK:
            raise PrivacyBudgetError(
                f"spending epsilon={epsilon:g} would exceed the privacy "
                f"budget: {self.spent:g} of {self.budget:g} already "
                f"spent over {len(self._events)} release(s)")

    def spend(self, epsilon: float, note: str = "") -> float:
        """Record a release; returns the new cumulative epsilon."""
        self.check(epsilon)
        self._events.append((float(epsilon), note))
        if self.budget is not None:
            _note_remaining(self.remaining)
        return self.spent

    def to_state(self) -> dict:
        """JSON-serializable ledger (synthesizer persistence)."""
        return {"budget": self.budget,
                "events": [{"epsilon": eps, "note": note}
                           for eps, note in self._events]}

    @classmethod
    def from_state(cls, state: dict) -> "PrivacyLedger":
        ledger = cls(budget=state.get("budget"))
        for event in state.get("events", []):
            ledger._events.append((float(event["epsilon"]),
                                   str(event.get("note", ""))))
        return ledger
