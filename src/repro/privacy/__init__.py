"""Privacy evaluation: hitting rate, DCR, a DP accountant, and budgets."""

from .metrics import distance_to_closest_record, hitting_rate
from .accountant import epsilon_for, rdp_subsampled_gaussian, sigma_for_epsilon
from .budget import PrivacyLedger

__all__ = [
    "hitting_rate", "distance_to_closest_record",
    "epsilon_for", "rdp_subsampled_gaussian", "sigma_for_epsilon",
    "PrivacyLedger",
]
