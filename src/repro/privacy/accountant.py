"""Rényi-DP accountant for the subsampled Gaussian mechanism.

DPGAN's privacy cost comes from ``T`` noisy critic updates, each a
Gaussian mechanism on a Poisson-style subsample of rate ``q = m/n``.
The accountant computes the integer-order RDP bound of Mironov et al.
and converts to (epsilon, delta)-DP, letting the benchmarks sweep the
noise multiplier sigma onto the paper's epsilon grid
{0.1, 0.2, 0.4, 0.8, 1.6}.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np
from scipy.special import gammaln


def _log_comb(n: int, k: np.ndarray) -> np.ndarray:
    return gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1)


def rdp_subsampled_gaussian(q: float, sigma: float, alpha: int) -> float:
    """RDP of order ``alpha`` for one subsampled Gaussian step.

    Uses the binomial-expansion bound:
    ``(1/(alpha-1)) * log( sum_k C(alpha,k) (1-q)^{alpha-k} q^k
    exp(k(k-1)/(2 sigma^2)) )``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"sampling rate q={q} must be in [0, 1]")
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if alpha < 2:
        raise ValueError("alpha must be >= 2")
    if q == 0.0:
        return 0.0
    if q == 1.0:
        return alpha / (2.0 * sigma ** 2)
    k = np.arange(alpha + 1)
    log_terms = (_log_comb(alpha, k)
                 + (alpha - k) * np.log1p(-q)
                 + k * np.log(q)
                 + k * (k - 1) / (2.0 * sigma ** 2))
    max_log = log_terms.max()
    log_sum = max_log + np.log(np.exp(log_terms - max_log).sum())
    return float(log_sum / (alpha - 1))


def epsilon_for(sigma: float, q: float, steps: int, delta: float = 1e-5,
                alphas: Optional[Iterable[int]] = None) -> float:
    """(epsilon, delta)-DP of ``steps`` subsampled Gaussian steps."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if steps == 0:
        return 0.0
    if alphas is None:
        # Small-epsilon targets need large orders: the conversion term
        # log(1/delta)/(alpha-1) alone must drop below the target.
        alphas = list(range(2, 65)) + [96, 128, 192, 256, 384, 512, 1024]
    best = np.inf
    for alpha in alphas:
        rdp = steps * rdp_subsampled_gaussian(q, sigma, alpha)
        eps = rdp + np.log(1.0 / delta) / (alpha - 1)
        best = min(best, eps)
    return float(best)


def sigma_for_epsilon(target_epsilon: float, q: float, steps: int,
                      delta: float = 1e-5, low: float = 0.3,
                      high: float = 200.0, tol: float = 1e-3) -> float:
    """Smallest noise multiplier achieving ``target_epsilon`` (bisection)."""
    if target_epsilon <= 0:
        raise ValueError(f"target_epsilon={target_epsilon} must be positive")
    if epsilon_for(high, q, steps, delta) > target_epsilon:
        raise ValueError(f"target_epsilon={target_epsilon} unreachable "
                         f"even at the maximum noise high={high}")
    while high - low > tol:
        mid = 0.5 * (low + high)
        if epsilon_for(mid, q, steps, delta) > target_epsilon:
            low = mid
        else:
            high = mid
    return high
