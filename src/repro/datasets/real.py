"""Schema-faithful stand-ins for the paper's eight real datasets.

The evaluation datasets (Table 2 of the paper: HTRU2, Digits, Adult,
CovType, SAT, Anuran, Census, Bing) cannot be downloaded offline, so each
is simulated by a class-conditional generative model that reproduces the
characteristics the paper's experiments vary over:

* attribute counts and types (numerical / categorical mix),
* label cardinality and skewness (ratio most-popular : rarest > 9),
* attribute correlation (shared latent factors),
* multi-modal numerical marginals (class-dependent component means).

Absolute values are synthetic; the *relative* behaviour of synthesizers
across these characteristics — which is what every experiment measures —
is preserved.  See DESIGN.md §1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from .schema import Attribute, CATEGORICAL, NUMERICAL, Schema, Table


@dataclass(frozen=True)
class DatasetSpec:
    """Declarative description of one stand-in dataset."""

    name: str
    n_numerical: int
    categorical_domains: Tuple[int, ...]  # one entry per categorical attr
    n_labels: int                         # 0 -> unlabeled (Bing)
    label_weights: Tuple[float, ...]      # class prior (empty if unlabeled)
    default_records: int
    latent_dim: int = 2                   # shared factors -> correlations
    noise_scale: float = 1.6              # class overlap (harder learning)
    label_noise: float = 0.05             # fraction of flipped labels
    integral_numerical: bool = False
    #: exp-transform numerics into skewed positive values (counts /
    #: latencies), as in production workload statistics (Bing).
    positive_numerical: bool = False


def _skewed_weights(n_labels: int, ratio: float) -> Tuple[float, ...]:
    """Geometric class prior with most-popular : rarest == ratio."""
    if n_labels == 1:
        return (1.0,)
    decay = ratio ** (1.0 / (n_labels - 1))
    raw = np.array([decay ** -i for i in range(n_labels)])
    return tuple(raw / raw.sum())


SPECS = {
    "htru2": DatasetSpec(
        name="htru2", n_numerical=8, categorical_domains=(), n_labels=2,
        label_weights=_skewed_weights(2, 10.0), default_records=4000,
        noise_scale=1.2),
    "digits": DatasetSpec(
        name="digits", n_numerical=16, categorical_domains=(), n_labels=10,
        label_weights=tuple([0.1] * 10), default_records=4000,
        noise_scale=1.0),
    "adult": DatasetSpec(
        name="adult", n_numerical=6,
        categorical_domains=(7, 9, 16, 7, 14, 6, 5, 2), n_labels=2,
        label_weights=(0.75, 0.25), default_records=4000,
        integral_numerical=True),
    "covtype": DatasetSpec(
        name="covtype", n_numerical=10, categorical_domains=(4, 8),
        n_labels=7, label_weights=_skewed_weights(7, 9.5),
        default_records=5000, noise_scale=1.2),
    "sat": DatasetSpec(
        name="sat", n_numerical=36, categorical_domains=(), n_labels=6,
        label_weights=tuple([1.0 / 6] * 6), default_records=3000,
        noise_scale=1.0),
    "anuran": DatasetSpec(
        name="anuran", n_numerical=22, categorical_domains=(), n_labels=10,
        label_weights=_skewed_weights(10, 20.0), default_records=3600,
        noise_scale=0.7, label_noise=0.02),
    "census": DatasetSpec(
        name="census", n_numerical=9,
        categorical_domains=(9, 8, 7, 6, 5, 5, 4, 4, 3, 3, 3, 3, 2, 2, 2, 2,
                             6, 5, 4, 3, 7, 2, 2, 3, 4, 5, 2, 3, 2, 2),
        n_labels=2, label_weights=(0.95, 0.05), default_records=5000),
    "bing": DatasetSpec(
        name="bing", n_numerical=7,
        categorical_domains=(8, 7, 6, 6, 5, 5, 4, 4, 4, 3, 3, 3, 3, 2, 2, 2,
                             2, 2, 5, 4, 3, 6, 2),
        n_labels=0, label_weights=(), default_records=8000,
        integral_numerical=True, positive_numerical=True),
}

LOW_DIMENSIONAL = ("htru2", "digits", "adult", "covtype")
HIGH_DIMENSIONAL = ("sat", "anuran", "census", "bing")


def generate(spec: DatasetSpec, n_records: Optional[int] = None,
             seed: int = 0) -> Table:
    """Draw ``n_records`` rows from the spec's class-conditional model."""
    n = n_records if n_records is not None else spec.default_records
    rng = np.random.default_rng(hash((spec.name, seed)) % (2 ** 32))

    n_classes = max(spec.n_labels, 1)
    # Class priors.
    if spec.n_labels:
        weights = np.asarray(spec.label_weights)
        labels = rng.choice(spec.n_labels, size=n, p=weights)
    else:
        labels = np.zeros(n, dtype=np.int64)

    # Shared latent factors induce attribute correlations.
    latent = rng.standard_normal((n, spec.latent_dim))

    columns = {}
    attributes = []

    # Numerical attributes: class-dependent component means plus latent
    # projection -> correlated, multi-modal marginals.  Means overlap and
    # noise dominates part of the signal so classification is non-trivial
    # (the paper's real datasets have F1 well below 1).
    class_means = rng.uniform(-1.2, 1.2, size=(n_classes, spec.n_numerical))
    class_scales = rng.uniform(0.4, 1.2, size=(n_classes, spec.n_numerical))
    latent_proj = rng.normal(0.0, 0.8,
                             size=(spec.latent_dim, spec.n_numerical))
    numeric = (class_means[labels]
               + latent @ latent_proj
               + rng.standard_normal((n, spec.n_numerical))
               * class_scales[labels] * spec.noise_scale)
    if spec.positive_numerical:
        # Skewed positive values (counts / latencies): log-normal shape.
        numeric = np.exp(numeric / 2.0) * 10.0
    for j in range(spec.n_numerical):
        name = f"num{j}"
        values = numeric[:, j]
        if spec.integral_numerical and j % 2 == 0:
            values = np.rint(values * 10)
            attributes.append(Attribute(name, NUMERICAL, integral=True))
        else:
            attributes.append(Attribute(name, NUMERICAL))
        columns[name] = values

    # Categorical attributes: class- and latent-dependent logits.
    for j, domain in enumerate(spec.categorical_domains):
        name = f"cat{j}"
        base_logits = rng.normal(0.0, 0.6, size=(n_classes, domain))
        latent_weight = rng.normal(0.0, 0.7, size=(spec.latent_dim, domain))
        logits = base_logits[labels] + latent @ latent_weight
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        probs /= probs.sum(axis=1, keepdims=True)
        u = rng.random(n)
        codes = (u[:, None] > probs.cumsum(axis=1)).sum(axis=1)
        codes = np.minimum(codes, domain - 1)
        attributes.append(Attribute(
            name, CATEGORICAL,
            categories=tuple(f"{name}_v{v}" for v in range(domain))))
        columns[name] = codes

    label_name = None
    if spec.n_labels:
        # Flip a small fraction of labels: an irreducible error floor.
        flip = rng.random(n) < spec.label_noise
        labels = labels.copy()
        labels[flip] = rng.integers(0, spec.n_labels, size=int(flip.sum()))
        columns["label"] = labels
        label_name = "label"
        attributes.append(Attribute(
            "label", CATEGORICAL,
            categories=tuple(f"class{c}" for c in range(spec.n_labels))))
        columns["label"] = labels

    schema = Schema(attributes=tuple(attributes), label_name=label_name)
    return Table(schema, columns)
