"""Typed, column-store relational table (the paper's table ``T``).

Columns live as numpy arrays: numerical attributes as ``float64``,
categorical attributes as ``int64`` category codes with the category
labels kept in the :class:`Attribute`.  Everything downstream — the data
transformation (Phase I), the AQP engine, the privacy metrics, the
classical ML models — operates on this structure; no pandas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SchemaError

CATEGORICAL = "categorical"
NUMERICAL = "numerical"


@dataclass(frozen=True)
class Attribute:
    """One column's declaration.

    ``categories`` is the ordered label set for categorical attributes
    (codes index into it) and must be None for numerical ones.
    ``integral`` marks numerical attributes whose values are integers, so
    synthesis can round on the way back out.
    """

    name: str
    kind: str
    categories: Optional[Tuple[str, ...]] = None
    integral: bool = False

    def __post_init__(self):
        if self.kind not in (CATEGORICAL, NUMERICAL):
            raise SchemaError(f"unknown attribute kind {self.kind!r}")
        if self.kind == CATEGORICAL and not self.categories:
            raise SchemaError(
                f"categorical attribute {self.name!r} needs categories")
        if self.kind == NUMERICAL and self.categories is not None:
            raise SchemaError(
                f"numerical attribute {self.name!r} cannot have categories")

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL

    @property
    def is_numerical(self) -> bool:
        return self.kind == NUMERICAL

    @property
    def domain_size(self) -> int:
        if not self.is_categorical:
            raise SchemaError(f"{self.name!r} is not categorical")
        return len(self.categories)


@dataclass(frozen=True)
class Schema:
    """Ordered attribute declarations plus an optional label attribute."""

    attributes: Tuple[Attribute, ...]
    label_name: Optional[str] = None

    def __post_init__(self):
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate attribute names")
        if self.label_name is not None and self.label_name not in names:
            raise SchemaError(f"label {self.label_name!r} not in attributes")

    def __iter__(self):
        return iter(self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __getitem__(self, name: str) -> Attribute:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise SchemaError(f"no attribute named {name!r}")

    @property
    def names(self) -> List[str]:
        return [a.name for a in self.attributes]

    @property
    def label(self) -> Optional[Attribute]:
        if self.label_name is None:
            return None
        return self[self.label_name]

    @property
    def feature_attributes(self) -> List[Attribute]:
        return [a for a in self.attributes if a.name != self.label_name]

    def numerical_names(self, include_label: bool = True) -> List[str]:
        return [a.name for a in self.attributes if a.is_numerical
                and (include_label or a.name != self.label_name)]

    def categorical_names(self, include_label: bool = True) -> List[str]:
        return [a.name for a in self.attributes if a.is_categorical
                and (include_label or a.name != self.label_name)]

    def without_label(self) -> "Schema":
        """Schema of the feature attributes only."""
        return Schema(tuple(self.feature_attributes), label_name=None)


def schema_to_dict(schema: Schema) -> Dict:
    """JSON-serializable schema description (synthesizer persistence)."""
    return {
        "label_name": schema.label_name,
        "attributes": [
            {"name": a.name, "kind": a.kind,
             "categories": list(a.categories) if a.categories else None,
             "integral": a.integral}
            for a in schema.attributes
        ],
    }


def schema_from_dict(data: Dict) -> Schema:
    """Inverse of :func:`schema_to_dict`."""
    attributes = tuple(
        Attribute(name=a["name"], kind=a["kind"],
                  categories=(tuple(a["categories"])
                              if a.get("categories") else None),
                  integral=bool(a.get("integral", False)))
        for a in data["attributes"])
    return Schema(attributes, label_name=data.get("label_name"))


class Table:
    """A relational table: a :class:`Schema` plus aligned numpy columns."""

    def __init__(self, schema: Schema, columns: Dict[str, np.ndarray]):
        self.schema = schema
        self.columns: Dict[str, np.ndarray] = {}
        n_rows = None
        for attr in schema:
            if attr.name not in columns:
                raise SchemaError(f"missing column {attr.name!r}")
            col = np.asarray(columns[attr.name])
            if attr.is_categorical:
                col = col.astype(np.int64)
                if col.size and (col.min() < 0
                                 or col.max() >= attr.domain_size):
                    raise SchemaError(
                        f"column {attr.name!r} has codes outside "
                        f"[0, {attr.domain_size})")
            else:
                col = col.astype(np.float64)
            if n_rows is None:
                n_rows = len(col)
            elif len(col) != n_rows:
                raise SchemaError(
                    f"column {attr.name!r} has {len(col)} rows, "
                    f"expected {n_rows}")
            self.columns[attr.name] = col
        self._n_rows = n_rows if n_rows is not None else 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n_rows

    def __repr__(self) -> str:
        return (f"Table(n={len(self)}, attrs={len(self.schema)}, "
                f"label={self.schema.label_name!r})")

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise SchemaError(f"no column named {name!r}")
        return self.columns[name]

    @property
    def label_codes(self) -> np.ndarray:
        """Integer label column (categorical labels only)."""
        label = self.schema.label
        if label is None:
            raise SchemaError("table has no label attribute")
        return self.columns[label.name]

    def take(self, indices: np.ndarray) -> "Table":
        """Row subset (copy) preserving the schema."""
        indices = np.asarray(indices)
        return Table(self.schema,
                     {name: col[indices] for name, col in self.columns.items()})

    def sample_rows(self, n: int, rng: np.random.Generator,
                    replace: bool = False) -> "Table":
        idx = rng.choice(len(self), size=min(n, len(self)) if not replace else n,
                         replace=replace)
        return self.take(idx)

    def select(self, names: Sequence[str]) -> "Table":
        """Column subset (shared column refs) preserving declaration order.

        The label attribute survives only when it is among ``names``.
        """
        missing = [n for n in names if n not in self.columns]
        if missing:
            raise SchemaError(f"no column named {missing[0]!r}")
        keep = [a for a in self.schema if a.name in set(names)]
        label = (self.schema.label_name
                 if self.schema.label_name in {a.name for a in keep} else None)
        schema = Schema(tuple(keep), label_name=label)
        return Table(schema, {a.name: self.columns[a.name] for a in keep})

    def drop_label(self) -> "Table":
        """Feature-only view of the table (copy of column refs)."""
        schema = self.schema.without_label()
        return Table(schema, {a.name: self.columns[a.name] for a in schema})

    def concat_rows(self, other: "Table") -> "Table":
        if other.schema.names != self.schema.names:
            raise SchemaError("schema mismatch in concat")
        cols = {name: np.concatenate([self.columns[name], other.columns[name]])
                for name in self.columns}
        return Table(self.schema, cols)

    def decoded_column(self, name: str) -> np.ndarray:
        """Column with categorical codes mapped back to labels."""
        attr = self.schema[name]
        col = self.columns[name]
        if attr.is_categorical:
            return np.asarray(attr.categories, dtype=object)[col]
        return col

    def to_records(self) -> List[tuple]:
        """Materialize decoded rows as plain Python scalars."""
        decoded = [self.decoded_column(name).tolist()
                   for name in self.schema.names]
        return list(zip(*decoded)) if decoded else []


def split_train_valid_test(table: Table, rng: np.random.Generator,
                           ratios: Sequence[float] = (4, 1, 1)
                           ) -> Tuple[Table, Table, Table]:
    """Random 4:1:1 split, as in the paper's evaluation framework (§6.2)."""
    if len(ratios) != 3:
        raise ValueError(
            f"ratios must have exactly three terms, got {len(ratios)}")
    total = float(sum(ratios))
    n = len(table)
    perm = rng.permutation(n)
    n_train = int(round(n * ratios[0] / total))
    n_valid = int(round(n * ratios[1] / total))
    train = table.take(perm[:n_train])
    valid = table.take(perm[n_train:n_train + n_valid])
    test = table.take(perm[n_train + n_valid:])
    return train, valid, test
