"""Dataset substrate: simulated data (§6.1) + real-dataset stand-ins.

Entry points::

    datasets.load("adult", n_records=4000, seed=0)   # Table 2 stand-ins
    datasets.sdata_num(rho=0.9, skew=True)            # simulated numerical
    datasets.sdata_cat(p=0.5)                         # simulated categorical
    datasets.sdata_relational(n_customers=400)        # two-table database
    datasets.split(table, seed=0)                     # 4:1:1 split
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .schema import (
    Attribute, Schema, Table, CATEGORICAL, NUMERICAL, split_train_valid_test,
)
from .simulated import sdata_cat, sdata_num, sdata_relational
from .real import SPECS, LOW_DIMENSIONAL, HIGH_DIMENSIONAL, generate

__all__ = [
    "Attribute", "Schema", "Table", "CATEGORICAL", "NUMERICAL",
    "split_train_valid_test", "sdata_cat", "sdata_num", "sdata_relational",
    "SPECS", "LOW_DIMENSIONAL", "HIGH_DIMENSIONAL",
    "load", "split", "available",
]


def available() -> Tuple[str, ...]:
    """Names accepted by :func:`load`."""
    return tuple(SPECS) + ("sdata_num", "sdata_cat")


def load(name: str, n_records: Optional[int] = None, seed: int = 0,
         **kwargs) -> Table:
    """Load a dataset by name.

    ``sdata_num`` / ``sdata_cat`` accept their simulation parameters
    (``rho`` / ``p``, ``skew``) via keyword arguments.
    """
    key = name.lower()
    if key == "sdata_num":
        return sdata_num(n_records=n_records or 5000, seed=seed, **kwargs)
    if key == "sdata_cat":
        return sdata_cat(n_records=n_records or 5000, seed=seed, **kwargs)
    if key not in SPECS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available()}")
    return generate(SPECS[key], n_records=n_records, seed=seed)


def split(table: Table, seed: int = 0,
          ratios=(4, 1, 1)) -> Tuple[Table, Table, Table]:
    """Paper §6.2 train/valid/test split (default 4:1:1)."""
    return split_train_valid_test(table, np.random.default_rng(seed),
                                  ratios=ratios)
