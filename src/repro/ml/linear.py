"""Multinomial logistic regression — the paper's LR evaluator.

Trained full-batch with gradient descent on the softmax cross entropy
plus L2 regularization, which is exactly the "generalized linear
regression model optimized by gradient descent" the paper describes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LogisticRegression:
    def __init__(self, lr: float = 0.5, max_iter: int = 300,
                 l2: float = 1e-4, tol: float = 1e-7):
        self.lr = lr
        self.max_iter = max_iter
        self.l2 = l2
        self.tol = tol
        self.weights: Optional[np.ndarray] = None  # (d+1, k) incl. bias
        self.n_classes = 0

    def _design(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        return np.concatenate([X, np.ones((len(X), 1))], axis=1)

    @staticmethod
    def _softmax(z: np.ndarray) -> np.ndarray:
        z = z - z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        Xd = self._design(X)
        y = np.asarray(y, dtype=np.int64)
        n, d = Xd.shape
        self.n_classes = int(y.max()) + 1
        k = max(self.n_classes, 2)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), y] = 1.0
        w = np.zeros((d, k))
        prev_loss = np.inf
        for _ in range(self.max_iter):
            probs = self._softmax(Xd @ w)
            grad = Xd.T @ (probs - onehot) / n + self.l2 * w
            w -= self.lr * grad
            loss = (-np.log(np.maximum(
                probs[np.arange(n), y], 1e-12)).mean()
                + 0.5 * self.l2 * float(np.sum(w * w)))
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss
        self.weights = w
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        probs = self._softmax(self._design(X) @ self.weights)
        return probs[:, :self.n_classes]

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)
