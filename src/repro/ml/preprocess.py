"""Feature encoding for the evaluator classifiers.

The utility protocol trains a classifier on the synthetic table and a
twin classifier on the real table, evaluating both on the same test set,
so the encoding must be a pure function of the *schema* (one-hot widths
fixed by declared domains) with scale statistics from the fitting table.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..datasets.schema import Table
from ..errors import SchemaError


class FeatureEncoder:
    """Schema-driven feature matrix builder.

    Numerical attributes are z-scored with statistics of the fitted
    table; categorical attributes are one-hot with width fixed by the
    schema's declared domain, so matrices from different tables sharing a
    schema are column-aligned.
    """

    def __init__(self, standardize: bool = True, onehot: bool = True):
        self.standardize = standardize
        self.onehot = onehot
        self._means = {}
        self._stds = {}
        self._schema = None

    def fit(self, table: Table) -> "FeatureEncoder":
        self._schema = table.schema
        self._means = {}
        self._stds = {}
        for attr in table.schema.feature_attributes:
            if attr.is_numerical and self.standardize:
                col = table.column(attr.name)
                self._means[attr.name] = float(col.mean())
                self._stds[attr.name] = float(max(col.std(), 1e-9))
        return self

    def transform(self, table: Table) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(X, y)``; ``y`` is the integer label column."""
        if self._schema is None:
            raise RuntimeError("encoder is not fitted")
        if table.schema.names != self._schema.names:
            raise SchemaError("table schema differs from fitted schema")
        parts = []
        for attr in self._schema.feature_attributes:
            col = table.column(attr.name)
            if attr.is_numerical:
                if self.standardize:
                    col = (col - self._means[attr.name]) / self._stds[attr.name]
                parts.append(col[:, None])
            elif self.onehot:
                block = np.zeros((len(col), attr.domain_size))
                block[np.arange(len(col)), col] = 1.0
                parts.append(block)
            else:
                parts.append(col[:, None].astype(np.float64))
        X = np.concatenate(parts, axis=1) if parts else np.zeros((len(table), 0))
        if self._schema.label_name is not None:
            y = table.label_codes
        else:
            y = np.zeros(len(table), dtype=np.int64)
        return X, y

    def fit_transform(self, table: Table) -> Tuple[np.ndarray, np.ndarray]:
        return self.fit(table).transform(table)
