"""Evaluation metrics: F1, AUC, NMI (paper §6.2).

The paper measures the F1 of the *positive* label for binary tasks and
the F1 of the *rarest* label for multi-class tasks; both are provided as
:func:`paper_f1`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def _binary_counts(y_true: np.ndarray, y_pred: np.ndarray, label: int):
    tp = int(np.sum((y_pred == label) & (y_true == label)))
    fp = int(np.sum((y_pred == label) & (y_true != label)))
    fn = int(np.sum((y_pred != label) & (y_true == label)))
    return tp, fp, fn


def precision_score(y_true, y_pred, label: int = 1) -> float:
    tp, fp, _ = _binary_counts(np.asarray(y_true), np.asarray(y_pred), label)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true, y_pred, label: int = 1) -> float:
    tp, _, fn = _binary_counts(np.asarray(y_true), np.asarray(y_pred), label)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true, y_pred, label: int = 1) -> float:
    """F1 of one class (harmonic mean of its precision and recall)."""
    p = precision_score(y_true, y_pred, label)
    r = recall_score(y_true, y_pred, label)
    return 2 * p * r / (p + r) if p + r else 0.0


def macro_f1(y_true, y_pred, n_classes: Optional[int] = None) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if n_classes is None:
        n_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    return float(np.mean([f1_score(y_true, y_pred, c)
                          for c in range(n_classes)]))


def rare_label(y: np.ndarray) -> int:
    """The least frequent label present in ``y``."""
    y = np.asarray(y, dtype=np.int64)
    counts = np.bincount(y)
    present = np.nonzero(counts)[0]
    return int(present[np.argmin(counts[present])])


def paper_f1(y_true, y_pred, n_classes: int) -> float:
    """The paper's classifier metric.

    Binary: F1 of the positive (minority-interest) label 1.
    Multi-class: F1 of the rarest label in the test set.
    """
    y_true = np.asarray(y_true)
    if n_classes <= 2:
        return f1_score(y_true, y_pred, label=1)
    return f1_score(y_true, y_pred, label=rare_label(y_true))


def roc_auc(y_true, scores) -> float:
    """Binary AUC via the rank-sum (Mann-Whitney) statistic."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    pos = scores[y_true == 1]
    neg = scores[y_true != 1]
    if len(pos) == 0 or len(neg) == 0:
        return 0.5
    order = np.argsort(np.concatenate([neg, pos]), kind="stable")
    ranks = np.empty(len(order), dtype=np.float64)
    ranks[order] = np.arange(1, len(order) + 1)
    # Average ranks over ties.
    all_scores = np.concatenate([neg, pos])
    sorted_scores = np.sort(all_scores)
    # Map each score to average rank of its tie group.
    uniq, start = np.unique(sorted_scores, return_index=True)
    counts = np.diff(np.append(start, len(sorted_scores)))
    avg_rank = {u: s + (c + 1) / 2.0 for u, s, c in zip(uniq, start, counts)}
    ranks = np.array([avg_rank[s] for s in all_scores])
    rank_pos = ranks[len(neg):].sum()
    auc = (rank_pos - len(pos) * (len(pos) + 1) / 2.0) / (len(pos) * len(neg))
    return float(auc)


def _entropy(counts: np.ndarray) -> float:
    probs = counts / counts.sum()
    probs = probs[probs > 0]
    return float(-(probs * np.log(probs)).sum())


def normalized_mutual_info(labels_a, labels_b) -> float:
    """NMI with arithmetic-mean normalization (the standard form).

    Used as the clustering quality Eval(C|T) in the paper's clustering
    utility metric DiffCST.
    """
    a = np.asarray(labels_a, dtype=np.int64)
    b = np.asarray(labels_b, dtype=np.int64)
    if len(a) != len(b):
        raise ValueError("label arrays must align")
    if len(a) == 0:
        return 0.0
    n = len(a)
    a_vals, a_idx = np.unique(a, return_inverse=True)
    b_vals, b_idx = np.unique(b, return_inverse=True)
    contingency = np.zeros((len(a_vals), len(b_vals)))
    np.add.at(contingency, (a_idx, b_idx), 1.0)
    joint = contingency / n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    outer = pa[:, None] * pb[None, :]
    nonzero = joint > 0
    mi = float((joint[nonzero]
                * np.log(joint[nonzero] / outer[nonzero])).sum())
    ha = _entropy(contingency.sum(axis=1))
    hb = _entropy(contingency.sum(axis=0))
    denom = 0.5 * (ha + hb)
    if denom <= 0:
        return 0.0 if (ha > 0 or hb > 0) else 1.0
    return mi / denom


def accuracy(y_true, y_pred) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    return float(np.mean(y_true == y_pred)) if len(y_true) else 0.0
