"""Random forest classifier (bagging + feature subsampling).

The paper's RF10/RF20 evaluators: forests of depth-bounded CART trees.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees with sqrt feature subsampling."""

    def __init__(self, n_estimators: int = 20, max_depth: int = 10,
                 min_samples_leaf: int = 1,
                 rng: Optional[np.random.Generator] = None):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.rng = rng if rng is not None else np.random.default_rng()
        self.trees: List[DecisionTreeClassifier] = []
        self.n_classes = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self.n_classes = int(y.max()) + 1
        self.trees = []
        n = len(y)
        for _ in range(self.n_estimators):
            idx = self.rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features="sqrt", rng=self.rng)
            tree.fit(X[idx], y[idx])
            self.trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        out = np.zeros((len(X), self.n_classes))
        for tree in self.trees:
            proba = tree.predict_proba(X)
            # Trees trained on a bootstrap may have seen fewer classes.
            out[:, :proba.shape[1]] += proba
        return out / len(self.trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)
