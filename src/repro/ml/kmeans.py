"""K-Means clustering (k-means++ initialization, Lloyd iterations).

Used by the paper's clustering-utility evaluation (§6.2): K-Means is run
on the real and on the synthetic table; NMI against the gold labels is
compared.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class KMeans:
    def __init__(self, n_clusters: int = 8, max_iter: int = 100,
                 n_init: int = 3, tol: float = 1e-6,
                 rng: Optional[np.random.Generator] = None):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.n_init = n_init
        self.tol = tol
        self.rng = rng if rng is not None else np.random.default_rng()
        self.centers: Optional[np.ndarray] = None
        self.inertia: float = np.inf

    # ------------------------------------------------------------------
    def _init_centers(self, X: np.ndarray) -> np.ndarray:
        """k-means++ seeding."""
        n = len(X)
        centers = np.empty((self.n_clusters, X.shape[1]))
        first = self.rng.integers(0, n)
        centers[0] = X[first]
        closest = np.sum((X - centers[0]) ** 2, axis=1)
        for i in range(1, self.n_clusters):
            total = closest.sum()
            if total <= 0:
                centers[i:] = X[self.rng.integers(0, n, self.n_clusters - i)]
                break
            probs = closest / total
            idx = self.rng.choice(n, p=probs)
            centers[i] = X[idx]
            closest = np.minimum(closest,
                                 np.sum((X - centers[i]) ** 2, axis=1))
        return centers

    def _lloyd(self, X: np.ndarray, centers: np.ndarray):
        for _ in range(self.max_iter):
            dists = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            assign = dists.argmin(axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = X[assign == k]
                if len(members):
                    new_centers[k] = members.mean(axis=0)
            shift = float(np.sum((new_centers - centers) ** 2))
            centers = new_centers
            if shift < self.tol:
                break
        dists = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assign = dists.argmin(axis=1)
        inertia = float(dists[np.arange(len(X)), assign].sum())
        return centers, assign, inertia

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "KMeans":
        X = np.asarray(X, dtype=np.float64)
        if len(X) < self.n_clusters:
            raise ValueError(f"X has {len(X)} samples, fewer than "
                             f"n_clusters={self.n_clusters}")
        best = None
        for _ in range(self.n_init):
            centers, assign, inertia = self._lloyd(X, self._init_centers(X))
            if best is None or inertia < best[2]:
                best = (centers, assign, inertia)
        self.centers, self.labels_, self.inertia = best
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.centers is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        dists = ((X[:, None, :] - self.centers[None, :, :]) ** 2).sum(axis=2)
        return dists.argmin(axis=1)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).labels_
