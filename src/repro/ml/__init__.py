"""Classical ML substrate: the paper's evaluator models and metrics.

The utility evaluation (§6.2) trains DT10/DT30/RF10/RF20/AB/LR on real
and synthetic tables; K-Means + NMI measure clustering utility.
"""

from .tree import DecisionTreeClassifier
from .forest import RandomForestClassifier
from .boosting import AdaBoostClassifier
from .linear import LogisticRegression
from .kmeans import KMeans
from .preprocess import FeatureEncoder
from .metrics import (
    f1_score, macro_f1, paper_f1, precision_score, recall_score, roc_auc,
    normalized_mutual_info, accuracy, rare_label,
)

#: The paper's six evaluator classifiers, by short name.
CLASSIFIERS = ("DT10", "DT30", "RF10", "RF20", "AB", "LR")


def make_classifier(name: str, rng=None):
    """Instantiate one of the paper's evaluator classifiers by name."""
    import numpy as np

    rng = rng if rng is not None else np.random.default_rng()
    if name == "DT10":
        return DecisionTreeClassifier(max_depth=10, rng=rng)
    if name == "DT30":
        return DecisionTreeClassifier(max_depth=30, rng=rng)
    if name == "RF10":
        return RandomForestClassifier(n_estimators=20, max_depth=10, rng=rng)
    if name == "RF20":
        return RandomForestClassifier(n_estimators=20, max_depth=20, rng=rng)
    if name == "AB":
        return AdaBoostClassifier(n_estimators=30, rng=rng)
    if name == "LR":
        return LogisticRegression()
    raise KeyError(f"unknown classifier {name!r}; choose from {CLASSIFIERS}")


__all__ = [
    "DecisionTreeClassifier", "RandomForestClassifier", "AdaBoostClassifier",
    "LogisticRegression", "KMeans", "FeatureEncoder",
    "f1_score", "macro_f1", "paper_f1", "precision_score", "recall_score",
    "roc_auc", "normalized_mutual_info", "accuracy", "rare_label",
    "CLASSIFIERS", "make_classifier",
]
