"""AdaBoost (SAMME) over decision stumps — the paper's AB evaluator."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .tree import DecisionTreeClassifier


class AdaBoostClassifier:
    """Multi-class AdaBoost (SAMME) with shallow-tree weak learners."""

    def __init__(self, n_estimators: int = 30, max_depth: int = 1,
                 learning_rate: float = 1.0,
                 rng: Optional[np.random.Generator] = None):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.rng = rng if rng is not None else np.random.default_rng()
        self.estimators: List[DecisionTreeClassifier] = []
        self.alphas: List[float] = []
        self.n_classes = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        n = len(y)
        self.n_classes = int(y.max()) + 1
        k = max(self.n_classes, 2)
        weights = np.full(n, 1.0 / n)
        self.estimators = []
        self.alphas = []
        for _ in range(self.n_estimators):
            stump = DecisionTreeClassifier(max_depth=self.max_depth,
                                           rng=self.rng)
            stump.fit(X, y, sample_weight=weights)
            pred = stump.predict(X)
            miss = pred != y
            err = float(np.sum(weights * miss) / weights.sum())
            if err <= 0:
                # Perfect weak learner: use it with a large finite vote.
                self.estimators.append(stump)
                self.alphas.append(10.0)
                break
            if err >= 1.0 - 1.0 / k:
                # Worse than chance; SAMME stops unless nothing learned yet.
                if not self.estimators:
                    self.estimators.append(stump)
                    self.alphas.append(1e-3)
                break
            alpha = self.learning_rate * (
                np.log((1.0 - err) / err) + np.log(k - 1.0))
            self.estimators.append(stump)
            self.alphas.append(float(alpha))
            weights = weights * np.exp(alpha * miss)
            weights /= weights.sum()
        return self

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Per-class weighted vote matrix."""
        if not self.estimators:
            raise RuntimeError("model is not fitted")
        scores = np.zeros((len(X), self.n_classes))
        for alpha, est in zip(self.alphas, self.estimators):
            pred = est.predict(X)
            scores[np.arange(len(X)), pred] += alpha
        return scores

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_scores(X)
        total = scores.sum(axis=1, keepdims=True)
        total[total == 0] = 1.0
        return scores / total

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.decision_scores(X).argmax(axis=1)
