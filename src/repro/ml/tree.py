"""CART decision tree classifier (gini impurity, weighted samples).

The paper evaluates synthetic-data utility with decision trees of max
depth 10 and 30 (DT10/DT30); this implementation also serves as the weak
learner for AdaBoost and the base estimator for the random forest.
Split search is vectorized: per candidate feature, class counts are
prefix-summed over the sorted column and every valid threshold is scored
at once.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "proba")

    def __init__(self):
        self.feature = -1
        self.threshold = 0.0
        self.left = -1
        self.right = -1
        self.proba: Optional[np.ndarray] = None


class DecisionTreeClassifier:
    """CART with gini impurity.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (paper uses 10 and 30).
    max_features:
        Number of features examined per split; None -> all, "sqrt" ->
        ``ceil(sqrt(d))`` (used by the random forest).
    """

    def __init__(self, max_depth: int = 10, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features=None,
                 rng: Optional[np.random.Generator] = None):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng if rng is not None else np.random.default_rng()
        self.n_classes = 0
        self._nodes: List[_Node] = []

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: Optional[np.ndarray] = None
            ) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("X is empty; cannot fit on zero samples")
        if sample_weight is None:
            sample_weight = np.ones(len(y))
        else:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
        self.n_classes = int(y.max()) + 1
        self._nodes = []
        self._n_features = X.shape[1]

        # Iterative construction with an explicit stack of
        # (node_index, row_indices, depth).
        root = self._new_node()
        stack = [(root, np.arange(len(y)), 0)]
        while stack:
            node_id, idx, depth = stack.pop()
            node = self._nodes[node_id]
            node.proba = self._leaf_proba(y[idx], sample_weight[idx])
            if depth >= self.max_depth or len(idx) < self.min_samples_split:
                continue
            if node.proba.max() >= 1.0:  # pure node
                continue
            split = self._best_split(X, y, sample_weight, idx)
            if split is None:
                continue
            feature, threshold, left_idx, right_idx = split
            node.feature = feature
            node.threshold = threshold
            node.left = self._new_node()
            node.right = self._new_node()
            stack.append((node.left, left_idx, depth + 1))
            stack.append((node.right, right_idx, depth + 1))
        return self

    def _new_node(self) -> int:
        self._nodes.append(_Node())
        return len(self._nodes) - 1

    def _leaf_proba(self, y: np.ndarray, weight: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, weights=weight, minlength=self.n_classes)
        total = counts.sum()
        if total <= 0:
            return np.full(self.n_classes, 1.0 / self.n_classes)
        return counts / total

    def _candidate_features(self) -> np.ndarray:
        d = self._n_features
        if self.max_features is None:
            return np.arange(d)
        if self.max_features == "sqrt":
            k = max(1, int(np.ceil(np.sqrt(d))))
        else:
            k = min(int(self.max_features), d)
        return self.rng.choice(d, size=k, replace=False)

    def _best_split(self, X, y, weight, idx):
        """Return (feature, threshold, left_idx, right_idx) or None."""
        best_gain = 1e-12
        best = None
        y_node = y[idx]
        w_node = weight[idx]
        total_w = w_node.sum()
        onehot = np.zeros((len(idx), self.n_classes))
        onehot[np.arange(len(idx)), y_node] = 1.0
        weighted_onehot = onehot * w_node[:, None]
        counts_total = weighted_onehot.sum(axis=0)
        gini_parent = 1.0 - np.sum((counts_total / total_w) ** 2)

        for feature in self._candidate_features():
            values = X[idx, feature]
            order = np.argsort(values, kind="stable")
            sorted_vals = values[order]
            # Valid split positions: between consecutive distinct values.
            diff = np.diff(sorted_vals)
            positions = np.nonzero(diff > 0)[0]
            if positions.size == 0:
                continue
            prefix = weighted_onehot[order].cumsum(axis=0)
            left_counts = prefix[positions]
            right_counts = counts_total - left_counts
            left_w = left_counts.sum(axis=1)
            right_w = right_counts.sum(axis=1)
            ok = (left_w > 0) & (right_w > 0)
            if self.min_samples_leaf > 1:
                n_left = positions + 1
                n_right = len(idx) - n_left
                ok &= (n_left >= self.min_samples_leaf)
                ok &= (n_right >= self.min_samples_leaf)
            if not ok.any():
                continue
            gini_left = 1.0 - np.sum(
                (left_counts / np.maximum(left_w, 1e-300)[:, None]) ** 2,
                axis=1)
            gini_right = 1.0 - np.sum(
                (right_counts / np.maximum(right_w, 1e-300)[:, None]) ** 2,
                axis=1)
            impurity = (left_w * gini_left + right_w * gini_right) / total_w
            impurity = np.where(ok, impurity, np.inf)
            best_pos = int(np.argmin(impurity))
            gain = gini_parent - impurity[best_pos]
            if gain > best_gain:
                pos = positions[best_pos]
                threshold = 0.5 * (sorted_vals[pos] + sorted_vals[pos + 1])
                best_gain = gain
                best = (int(feature), float(threshold))
        if best is None:
            return None
        feature, threshold = best
        mask = X[idx, feature] <= threshold
        return feature, threshold, idx[mask], idx[~mask]

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if not self._nodes:
            raise RuntimeError("tree is not fitted")
        out = np.empty((len(X), self.n_classes))
        # Route all rows through the tree level by level using masks.
        stack = [(0, np.arange(len(X)))]
        while stack:
            node_id, rows = stack.pop()
            if rows.size == 0:
                continue
            node = self._nodes[node_id]
            if node.left == -1:
                out[rows] = node.proba
                continue
            mask = X[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[mask]))
            stack.append((node.right, rows[~mask]))
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if not self._nodes:
            return 0
        depths = {0: 0}
        best = 0
        for i, node in enumerate(self._nodes):
            d = depths.get(i, 0)
            best = max(best, d)
            if node.left != -1:
                depths[node.left] = d + 1
                depths[node.right] = d + 1
        return best
