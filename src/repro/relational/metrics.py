"""Fidelity metrics for synthetic databases.

Single-table fidelity (marginals, within-table correlations) is covered
by :mod:`repro.core.statistics`; a multi-table synthesis additionally
has to preserve the *relational* structure.  Following the axes of
"Benchmarking the Fidelity and Utility of Synthetic Relational Data"
(Hudovernik et al.):

* **cardinality fidelity** — the distribution of children-per-parent
  along each FK edge (total-variation distance between count
  histograms, plus mean/std deltas);
* **parent-child correlation preservation** — correlations between
  parent attributes and child attributes across the FK join, real vs
  synthetic.

:func:`database_fidelity_report` bundles these with per-table marginal
distances into one JSON-friendly report (the shape
``benchmarks/bench_relational.py`` records).
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..core.statistics import marginal_distances
from ..errors import SchemaError
from .cardinality import child_counts
from .schema import Database, ForeignKey


def _count_histogram_tv(real_counts: np.ndarray,
                        synth_counts: np.ndarray) -> float:
    """Total-variation distance between two child-count histograms."""
    width = int(max(real_counts.max(initial=0),
                    synth_counts.max(initial=0))) + 1
    p = np.bincount(real_counts, minlength=width) / max(len(real_counts), 1)
    q = np.bincount(synth_counts, minlength=width) / max(len(synth_counts), 1)
    return 0.5 * float(np.abs(p - q).sum())


def _fk_counts(database: Database, fk: ForeignKey) -> np.ndarray:
    return child_counts(
        database.primary_key_values(fk.parent),
        database[fk.child].column(fk.column).astype(np.int64))


def cardinality_fidelity(real: Database, synthetic: Database,
                         fk: ForeignKey) -> Dict[str, float]:
    """Children-per-parent distribution comparison along one FK edge."""
    real_counts = _fk_counts(real, fk)
    synth_counts = _fk_counts(synthetic, fk)
    return {
        "real_mean": float(real_counts.mean()),
        "synthetic_mean": float(synth_counts.mean())
        if len(synth_counts) else 0.0,
        "real_std": float(real_counts.std()),
        "synthetic_std": float(synth_counts.std())
        if len(synth_counts) else 0.0,
        "count_tv_distance": _count_histogram_tv(real_counts, synth_counts),
    }


def _join_correlations(database: Database, fk: ForeignKey
                       ) -> Dict[str, float]:
    """Correlations across the FK join (plus parent-vs-count).

    For every (parent numerical attribute, child numerical attribute)
    pair, the Pearson correlation over child rows joined to their
    parent; additionally each parent numerical attribute vs the
    per-parent child count.  Constant columns yield 0.
    """
    parent = database[fk.parent]
    child = database[fk.child]
    parent_keys = {fk.parent_key} | {
        f.column for f in database.parents_of(fk.parent)}
    child_keys = {fk.column} | {
        f.column for f in database.parents_of(fk.child)}
    child_pk = database.primary_keys.get(fk.child)
    if child_pk is not None:
        child_keys.add(child_pk)
    parent_num = [n for n in parent.schema.numerical_names()
                  if n not in parent_keys]
    child_num = [n for n in child.schema.numerical_names()
                 if n not in child_keys]

    parent_ids = database.primary_key_values(fk.parent)
    order = np.argsort(parent_ids, kind="stable")
    positions = order[np.searchsorted(
        parent_ids[order], child.column(fk.column).astype(np.int64))]
    counts = _fk_counts(database, fk)

    def corr(x: np.ndarray, y: np.ndarray) -> float:
        if len(x) < 2 or x.std() == 0 or y.std() == 0:
            return 0.0
        return float(np.corrcoef(x, y)[0, 1])

    out: Dict[str, float] = {}
    for p_name in parent_num:
        p_col = parent.column(p_name)
        out[f"{p_name}~count"] = corr(p_col, counts.astype(np.float64))
        joined = p_col[positions]
        for c_name in child_num:
            out[f"{p_name}~{c_name}"] = corr(joined, child.column(c_name))
    return out


def parent_child_correlation(real: Database, synthetic: Database,
                             fk: ForeignKey) -> Dict[str, Any]:
    """Real-vs-synthetic FK-join correlation comparison for one edge.

    Returns the per-pair real/synthetic correlations and their mean
    absolute difference (0 = perfectly preserved).
    """
    real_corr = _join_correlations(real, fk)
    synth_corr = _join_correlations(synthetic, fk)
    pairs = sorted(real_corr)
    diffs = [abs(real_corr[p] - synth_corr.get(p, 0.0)) for p in pairs]
    return {
        "pairs": {p: {"real": real_corr[p],
                      "synthetic": synth_corr.get(p, 0.0)} for p in pairs},
        "mean_abs_difference": float(np.mean(diffs)) if diffs else 0.0,
    }


def database_fidelity_report(real: Database, synthetic: Database
                             ) -> Dict[str, Any]:
    """Whole-database fidelity report (JSON-friendly).

    Per table: mean marginal TV distance over non-key attributes.  Per
    FK edge: cardinality fidelity and parent-child correlation
    preservation.  Plus the synthetic side's dangling-reference counts
    (zero by construction for :class:`DatabaseSynthesizer` output).
    """
    if sorted(real.table_names) != sorted(synthetic.table_names):
        raise SchemaError("databases must share their table set")
    tables: Dict[str, Any] = {}
    for name in real.table_names:
        distances = marginal_distances(real.inner_table(name),
                                       synthetic.inner_table(name))
        tables[name] = {
            "n_real": len(real[name]),
            "n_synthetic": len(synthetic[name]),
            "marginal_tv_mean": float(np.mean(list(distances.values()))),
            "marginal_tv": distances,
        }
    edges: List[Dict[str, Any]] = []
    for fk in real.foreign_keys:
        edges.append({
            "foreign_key": fk.key,
            "cardinality": cardinality_fidelity(real, synthetic, fk),
            "correlation": parent_child_correlation(real, synthetic, fk),
        })
    return {
        "tables": tables,
        "foreign_keys": edges,
        "dangling_references": synthetic.check_integrity(),
    }
