"""Multi-table database synthesis with referential-integrity guarantees.

:class:`DatabaseSynthesizer` lifts the paper's single-table framework to
whole databases (Row Conditional-TGAN style):

1. **Fit** walks the tables parents-first.  Each table's *non-key*
   attributes are fitted with a registered per-table
   :class:`~repro.api.Synthesizer` family; child tables whose family
   supports explicit conditioning (the GAN family) are fitted with a
   parent-context matrix — each child row's condition is its real
   parent row pushed through a
   :class:`~repro.relational.context.ParentContextEncoder`.  Every FK
   edge additionally fits a per-parent child-count model
   (:mod:`repro.relational.cardinality`).
2. **Sample** replays the same order.  Parents are sampled first; each
   synthetic parent draws a child count from the cardinality model, the
   FK column is assigned by construction (``repeat(parent_ids,
   counts)``), and the child rows are generated in streaming chunks via
   ``sample(n, conditions=...)`` with each chunk conditioned on its own
   synthetic parents' encoded rows.

Key columns are never modeled: primary keys are fresh dense ids and
foreign keys only ever take values of an existing synthetic parent, so
**referential integrity holds by construction** for every per-table
method family — conditioning merely improves parent-child correlation
fidelity where the family supports it.
"""

from __future__ import annotations

import inspect
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..api.base import PathLike, Synthesizer, _count, load_synthesizer
from ..api.registry import canonical_name, register, resolve
from ..api.seeding import derive_seed, substream
from ..datasets.schema import (
    Schema, Table, schema_from_dict, schema_to_dict,
)
from ..errors import ConfigError, TrainingError
from .cardinality import (
    CardinalityModel, child_counts, make_cardinality_model,
)
from .context import ParentContextEncoder
from .schema import Database, ForeignKey

DB_FORMAT_NAME = "repro-database-synthesizer"
DB_FORMAT_VERSION = 1
_DB_META_FILE = "database.json"
_TABLES_DIR = "tables"


def _empty_table(schema: Schema) -> Table:
    return Table(schema, {a.name: np.empty(0) for a in schema})


@dataclass
class DatabaseSynthesisResult:
    """Output of :func:`repro.synthesize_database`."""

    database: Database
    synthesizer: "DatabaseSynthesizer"
    report: Optional[Dict[str, Any]] = None
    provenance: Dict[str, Any] = field(default_factory=dict)


@register("relational")
class DatabaseSynthesizer:
    """Fit one per-table synthesizer per node of the FK graph.

    Parameters
    ----------
    method:
        Default per-table family name (any registered single-table
        family: "gan", "vae", "privbayes", ...).
    per_table:
        ``{table name: family name}`` overrides, so e.g. a large fact
        table can use PrivBayes while dimensions use the GAN.
    cardinality:
        Child-count model: ``"empirical"`` (exact histogram, default)
        or ``"negbin"`` (fitted negative binomial).
    method_kwargs:
        Keyword arguments forwarded to each per-table constructor
        (e.g. ``epochs=5``).  Keys a family's constructor does not
        accept are dropped for that family, so one kwargs dict can
        serve a mixed ``per_table`` assignment.
    """

    def __init__(self, method: str = "gan",
                 per_table: Optional[Dict[str, str]] = None,
                 cardinality: str = "empirical",
                 method_kwargs: Optional[Dict[str, Any]] = None,
                 seed: int = 0):
        make_cardinality_model(cardinality)  # validate the name early
        # (named default_method: ``method`` is the registry key set by
        # the @register decorator on the class itself.)
        self.default_method = canonical_name(method)
        self.per_table = {name: canonical_name(m)
                          for name, m in (per_table or {}).items()}
        self.cardinality = cardinality
        self.method_kwargs = dict(method_kwargs or {})
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self._fitted = False
        self._order: List[str] = []
        self._schemas: Dict[str, Schema] = {}
        self._primary_keys: Dict[str, str] = {}
        self._foreign_keys: List[ForeignKey] = []
        self._synths: Dict[str, Synthesizer] = {}
        self._encoders: Dict[str, ParentContextEncoder] = {}
        self._cardinality_models: Dict[str, CardinalityModel] = {}
        self._conditioned: Dict[str, bool] = {}
        self._n_rows: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise TrainingError("database synthesizer is not fitted")

    def table_method(self, name: str) -> str:
        return self.per_table.get(name, self.default_method)

    def _make_table_synthesizer(self, name: str, seed: int) -> Synthesizer:
        klass = resolve(self.table_method(name))
        params = inspect.signature(klass.__init__).parameters
        accepts_var = any(p.kind is inspect.Parameter.VAR_KEYWORD
                          for p in params.values())
        kwargs = {key: value for key, value in self.method_kwargs.items()
                  if key in params or accepts_var}
        kwargs.setdefault("seed", seed)
        # Snapshot selection never runs inside the database fit, so
        # families that support lazy snapshots keep only the final
        # epoch unless the caller explicitly asks otherwise.
        if "keep_snapshots" in params or accepts_var:
            kwargs.setdefault("keep_snapshots", False)
        return klass(**kwargs)

    # ------------------------------------------------------------------
    # Fit
    # ------------------------------------------------------------------
    def fit(self, database: Database, callbacks=None
            ) -> "DatabaseSynthesizer":
        """Fit per-table models, context encoders, and cardinality models.

        ``callbacks`` is forwarded to every per-table ``fit`` (records
        are family-specific; use closures to tag the current table).
        """
        dangling = {key: count
                    for key, count in database.check_integrity().items()
                    if count}
        if dangling:
            raise TrainingError(
                f"training database has dangling foreign keys: {dangling}")
        self._order = database.topological_order()
        self._schemas = {name: database[name].schema
                         for name in self._order}
        self._primary_keys = dict(database.primary_keys)
        self._foreign_keys = list(database.foreign_keys)
        self._synths = {}
        self._encoders = {}
        self._cardinality_models = {}
        self._conditioned = {}
        self._n_rows = {name: len(database[name]) for name in self._order}

        inner_tables = {name: database.inner_table(name)
                        for name in self._order}
        # Each parent is encoded once; children referencing it (possibly
        # several, possibly through several FKs) index into the matrix.
        encoded: Dict[str, np.ndarray] = {}
        for name in self._order:
            inner = inner_tables[name]
            fks = database.parents_of(name)
            # Keyed by table name, not drawn in fit order: adding or
            # removing one table never perturbs another table's fit.
            table_seed = derive_seed(self.seed, "fit", name)
            synth = self._make_table_synthesizer(name, table_seed)

            # Parent-first ordering guarantees every referenced encoder
            # is already fitted when a child needs it.
            if database.children_of(name):
                self._encoders[name] = ParentContextEncoder(
                    rng=np.random.default_rng(table_seed)).fit(inner)
                encoded[name] = self._encoders[name].encode(inner)

            conditions = None
            if fks and synth.supports_conditioning:
                parts = []
                for fk in fks:
                    positions = self._parent_positions(
                        database.primary_key_values(fk.parent),
                        database[name].column(fk.column).astype(np.int64))
                    parts.append(encoded[fk.parent][positions])
                conditions = (parts[0] if len(parts) == 1
                              else np.concatenate(parts, axis=1))
            self._conditioned[name] = conditions is not None

            for fk in fks:
                counts = child_counts(
                    database.primary_key_values(fk.parent),
                    database[name].column(fk.column).astype(np.int64))
                self._cardinality_models[fk.key] = make_cardinality_model(
                    self.cardinality).fit(counts)

            if conditions is not None:
                synth.fit(inner, callbacks=callbacks, conditions=conditions)
            else:
                synth.fit(inner, callbacks=callbacks)
            self._synths[name] = synth
        self._fitted = True
        return self

    @staticmethod
    def _parent_positions(parent_ids: np.ndarray,
                          fk_values: np.ndarray) -> np.ndarray:
        """Row position in the parent table for each child row."""
        order = np.argsort(parent_ids, kind="stable")
        sorted_ids = parent_ids[order]
        return order[np.searchsorted(sorted_ids, fk_values)]

    # ------------------------------------------------------------------
    # Sample
    # ------------------------------------------------------------------
    def sample(self, scale: float = 1.0, *, sizes: Optional[Dict[str, int]]
               = None, batch: Optional[int] = None,
               seed: Optional[int] = None) -> Database:
        """Generate a synthetic database.

        Root-table sizes default to ``round(real_rows * scale)``
        (override per table with ``sizes``); child-table sizes are the
        sum of per-parent cardinality draws, so the synthetic database
        reproduces the FK fan-out distribution.  ``seed`` makes the
        whole database reproducible.  ``batch`` is the per-table
        streaming chunk size (children stream through ``sample_iter``
        with per-chunk parent-context slices).

        Randomness is organized as keyed substreams off one request
        seed (``seed``, or a single draw from the shared generator when
        unseeded): each table's generation and each FK edge's
        cardinality / secondary-parent draws get independent streams
        keyed by table / FK name, so adding a table to the schema never
        perturbs another table's draw.
        """
        self._require_fitted()
        if scale <= 0:
            raise ValueError("scale must be positive")
        if batch is not None:
            _count("batch", batch, minimum=1)
        request_seed = (derive_seed(seed, "sample") if seed is not None
                        else int(self.rng.integers(0, 2 ** 63)))
        sizes = dict(sizes or {})

        tables: Dict[str, Table] = {}
        inner_tables: Dict[str, Table] = {}
        pk_values: Dict[str, np.ndarray] = {}
        # Synthetic parents are encoded lazily, once each, no matter how
        # many child tables (or FK edges) condition on them.
        encoded: Dict[str, np.ndarray] = {}

        def encoded_parent(parent: str) -> np.ndarray:
            if parent not in encoded:
                encoded[parent] = self._encoders[parent].encode(
                    inner_tables[parent])
            return encoded[parent]

        for name in self._order:
            schema = self._schemas[name]
            fks = [fk for fk in self._foreign_keys if fk.child == name]
            table_seed = derive_seed(request_seed, "table", name)
            synth = self._synths[name]

            if not fks:
                n = sizes.get(name)
                if n is None:
                    n = max(1, int(round(self._n_rows[name] * scale)))
                key_columns: Dict[str, np.ndarray] = {}
            else:
                # The first FK edge drives the row count: one
                # cardinality draw per synthetic parent.
                primary = fks[0]
                parent_n = len(pk_values[primary.parent])
                counts = self._cardinality_models[primary.key].sample(
                    parent_n, substream(request_seed, "fk", primary.key))
                n = int(counts.sum())
                key_columns = {
                    primary.column: np.repeat(pk_values[primary.parent],
                                              counts)}
                positions = {primary: np.repeat(np.arange(parent_n), counts)}
                for fk in fks[1:]:
                    # Secondary parents: uniform assignment keeps the
                    # reference valid without a joint fan-out model.
                    other_n = len(pk_values[fk.parent])
                    if other_n == 0:
                        raise TrainingError(
                            f"cannot assign {fk.key}: parent table is empty")
                    pos = substream(request_seed, "fk", fk.key).integers(
                        0, other_n, size=n)
                    positions[fk] = pos
                    key_columns[fk.column] = pk_values[fk.parent][pos]

            conditions = None
            if fks and self._conditioned[name] and n > 0:
                parts = [encoded_parent(fk.parent)[positions[fk]]
                         for fk in fks]
                conditions = (parts[0] if len(parts) == 1
                              else np.concatenate(parts, axis=1))

            if n > 0:
                inner = synth.sample(n, batch=batch, seed=table_seed,
                                     conditions=conditions)
            else:
                inner = _empty_table(self._inner_schema(name))
            inner_tables[name] = inner

            pk_name = self._primary_keys.get(name)
            if pk_name is not None:
                pk_values[name] = np.arange(n, dtype=np.int64)
                key_columns[pk_name] = pk_values[name]

            columns = dict(inner.columns)
            columns.update(key_columns)
            tables[name] = Table(schema, columns)
        return Database(tables, primary_keys=self._primary_keys,
                        foreign_keys=self._foreign_keys)

    def _inner_schema(self, name: str) -> Schema:
        schema = self._schemas[name]
        keys = {fk.column for fk in self._foreign_keys if fk.child == name}
        pk = self._primary_keys.get(name)
        if pk is not None:
            keys.add(pk)
        attrs = tuple(a for a in schema if a.name not in keys)
        label = (schema.label_name
                 if schema.label_name in {a.name for a in attrs} else None)
        return Schema(attrs, label_name=label)

    def fit_sample(self, database: Database, scale: float = 1.0,
                   callbacks=None, batch: Optional[int] = None,
                   seed: Optional[int] = None) -> Database:
        """``fit`` then ``sample`` in one call."""
        self.fit(database, callbacks=callbacks)
        return self.sample(scale, batch=batch, seed=seed)

    def spawn_sampler(self, worker_id: int = 0) -> "DatabaseSynthesizer":
        """Prepare this instance to sample inside an independent worker.

        The database-level analogue of
        :meth:`repro.api.Synthesizer.spawn_sampler`: every per-table
        synthesizer is spawned (sessions voided, eval pinned) and the
        shared generator — the root of *unseeded* ``sample`` requests —
        is re-derived on a worker-keyed substream so forked workers
        never replay each other's draws.  Seeded requests are unaffected
        (their streams derive from the request seed alone).
        """
        self._require_fitted()
        _count("worker_id", worker_id, minimum=0)
        for synth in self._synths.values():
            synth.spawn_sampler(worker_id)
        self.rng = substream(self.seed, "worker", worker_id)
        return self

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> pathlib.Path:
        """Persist into directory ``path``.

        Layout: ``database.json`` (FK structure, schemas, cardinality
        models, context encoders) plus one per-table synthesizer
        directory under ``tables/``.
        """
        self._require_fitted()
        path = pathlib.Path(path)
        path.mkdir(parents=True, exist_ok=True)
        document = {
            "format": DB_FORMAT_NAME,
            "version": DB_FORMAT_VERSION,
            "method": "relational",
            "params": {"method": self.default_method,
                       "per_table": self.per_table,
                       "cardinality": self.cardinality,
                       "method_kwargs": self.method_kwargs,
                       "seed": self.seed},
            "order": self._order,
            "schemas": {name: schema_to_dict(schema)
                        for name, schema in self._schemas.items()},
            "primary_keys": self._primary_keys,
            "foreign_keys": [fk.to_dict() for fk in self._foreign_keys],
            "conditioned": self._conditioned,
            "n_rows": self._n_rows,
            "encoders": {name: encoder.to_state()
                         for name, encoder in self._encoders.items()},
            "cardinality_models": {
                key: model.to_state()
                for key, model in self._cardinality_models.items()},
        }
        (path / _DB_META_FILE).write_text(json.dumps(document, indent=2))
        for name, synth in self._synths.items():
            synth.save(path / _TABLES_DIR / name)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "DatabaseSynthesizer":
        """Restore a database synthesizer saved with :meth:`save`."""
        path = pathlib.Path(path)
        meta_path = path / _DB_META_FILE
        if not meta_path.exists():
            raise ConfigError(f"no saved database synthesizer at {path}")
        document = json.loads(meta_path.read_text())
        if document.get("format") != DB_FORMAT_NAME:
            raise ConfigError(f"{meta_path} is not a saved database "
                              f"synthesizer")
        if document.get("version") != DB_FORMAT_VERSION:
            raise ConfigError(
                f"unsupported database synthesizer format version "
                f"{document.get('version')!r}")
        params = document["params"]
        instance = cls(method=params["method"],
                       per_table=params["per_table"],
                       cardinality=params["cardinality"],
                       method_kwargs=params["method_kwargs"],
                       seed=params["seed"])
        instance._order = list(document["order"])
        instance._schemas = {name: schema_from_dict(data)
                             for name, data in document["schemas"].items()}
        instance._primary_keys = dict(document["primary_keys"])
        instance._foreign_keys = [ForeignKey.from_dict(data)
                                  for data in document["foreign_keys"]]
        instance._conditioned = {name: bool(flag) for name, flag
                                 in document["conditioned"].items()}
        instance._n_rows = {name: int(n)
                            for name, n in document["n_rows"].items()}
        instance._encoders = {
            name: ParentContextEncoder.from_state(state)
            for name, state in document["encoders"].items()}
        instance._cardinality_models = {
            key: CardinalityModel.from_state(state)
            for key, state in document["cardinality_models"].items()}
        instance._synths = {name: load_synthesizer(path / _TABLES_DIR / name)
                            for name in instance._order}
        instance._fitted = True
        return instance


def load_database_synthesizer(path: PathLike) -> DatabaseSynthesizer:
    """Load a :class:`DatabaseSynthesizer` saved with ``save``."""
    return DatabaseSynthesizer.load(path)
