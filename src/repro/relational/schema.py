"""Multi-table database schema: named tables, keys, and FK edges.

The paper synthesizes one table at a time; real relational databases
couple tables through foreign keys.  :class:`Database` is the container
the :mod:`repro.relational` subsystem operates on: a set of named
:class:`~repro.datasets.schema.Table`\\ s, a primary-key column per
table, and a list of :class:`ForeignKey` edges.

Key columns are *structural*: they identify rows and wire tables
together, so synthesis never models them — the
:class:`~repro.relational.synthesizer.DatabaseSynthesizer` strips them
before fitting the per-table models and reassigns fresh, referentially
valid codes on the way out.  Construction validates the structure
(dangling table/column references, key-kind mismatches, non-numerical
keys, duplicate primary keys, FK cycles); :meth:`Database.check_integrity`
additionally verifies the *data* (every FK value resolves to a parent
primary key).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set, Tuple

import numpy as np

from ..datasets.schema import Schema, Table
from ..errors import SchemaError


@dataclass(frozen=True)
class ForeignKey:
    """One directed reference: ``child.column -> parent.parent_key``."""

    child: str
    column: str
    parent: str
    parent_key: str

    @property
    def key(self) -> str:
        """Stable identifier used by cardinality models and reports."""
        return f"{self.child}.{self.column}->{self.parent}"

    def to_dict(self) -> Dict[str, str]:
        return {"child": self.child, "column": self.column,
                "parent": self.parent, "parent_key": self.parent_key}

    @classmethod
    def from_dict(cls, data: Mapping[str, str]) -> "ForeignKey":
        return cls(child=data["child"], column=data["column"],
                   parent=data["parent"], parent_key=data["parent_key"])


class Database:
    """Named tables + primary keys + foreign-key edges.

    Parameters
    ----------
    tables:
        ``{name: Table}``; iteration order is preserved and used as the
        tie-break for the topological table ordering.
    primary_keys:
        ``{table name: primary-key column}``.  Every table referenced by
        a foreign key must declare one; standalone tables may omit it.
    foreign_keys:
        :class:`ForeignKey` edges.  Each must reference the parent's
        declared primary key.
    """

    def __init__(self, tables: Mapping[str, Table],
                 primary_keys: Mapping[str, str] = (),
                 foreign_keys: Sequence[ForeignKey] = ()):
        self.tables: Dict[str, Table] = dict(tables)
        self.primary_keys: Dict[str, str] = dict(primary_keys or {})
        self.foreign_keys: Tuple[ForeignKey, ...] = tuple(foreign_keys)
        self.validate()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def table_names(self) -> List[str]:
        return list(self.tables)

    def __len__(self) -> int:
        return len(self.tables)

    def __getitem__(self, name: str) -> Table:
        if name not in self.tables:
            raise SchemaError(f"no table named {name!r}")
        return self.tables[name]

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}[{len(t)}]"
                          for name, t in self.tables.items())
        return f"Database({parts}, fks={len(self.foreign_keys)})"

    def parents_of(self, table: str) -> List[ForeignKey]:
        """Foreign keys leaving ``table`` (declaration order)."""
        return [fk for fk in self.foreign_keys if fk.child == table]

    def children_of(self, table: str) -> List[ForeignKey]:
        """Foreign keys arriving at ``table`` (declaration order)."""
        return [fk for fk in self.foreign_keys if fk.parent == table]

    def key_columns(self, table: str) -> Set[str]:
        """Structural columns of ``table``: its primary key + its FKs."""
        keys = {fk.column for fk in self.parents_of(table)}
        pk = self.primary_keys.get(table)
        if pk is not None:
            keys.add(pk)
        return keys

    def inner_table(self, name: str) -> Table:
        """``name``'s table minus key columns — the part to synthesize."""
        table = self[name]
        keys = self.key_columns(name)
        names = [a.name for a in table.schema if a.name not in keys]
        if not names:
            raise SchemaError(
                f"table {name!r} has no non-key attributes to synthesize")
        return table.select(names)

    def primary_key_values(self, name: str) -> np.ndarray:
        """The parent key column as int64 codes."""
        pk = self.primary_keys.get(name)
        if pk is None:
            raise SchemaError(f"table {name!r} declares no primary key")
        return self[name].column(pk).astype(np.int64)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Structural validation (run on construction)."""
        for table, pk in self.primary_keys.items():
            if table not in self.tables:
                raise SchemaError(
                    f"primary key declared for unknown table {table!r}")
            attr = self.tables[table].schema[pk]  # raises on missing column
            if not attr.is_numerical:
                raise SchemaError(
                    f"primary key {table}.{pk} must be a numerical id "
                    f"column, got {attr.kind}")
            values = self.tables[table].column(pk)
            if len(np.unique(values)) != len(values):
                raise SchemaError(
                    f"primary key {table}.{pk} has duplicate values")
        for fk in self.foreign_keys:
            if fk.child not in self.tables:
                raise SchemaError(
                    f"foreign key references unknown child table "
                    f"{fk.child!r}")
            if fk.parent not in self.tables:
                raise SchemaError(
                    f"foreign key {fk.child}.{fk.column} references "
                    f"unknown parent table {fk.parent!r}")
            child_attr = self.tables[fk.child].schema[fk.column]
            parent_attr = self.tables[fk.parent].schema[fk.parent_key]
            if child_attr.kind != parent_attr.kind:
                raise SchemaError(
                    f"foreign key {fk.child}.{fk.column} ({child_attr.kind}) "
                    f"does not match {fk.parent}.{fk.parent_key} "
                    f"({parent_attr.kind})")
            if not child_attr.is_numerical:
                raise SchemaError(
                    f"foreign key {fk.child}.{fk.column} must be a "
                    f"numerical id column, got {child_attr.kind}")
            if self.primary_keys.get(fk.parent) != fk.parent_key:
                raise SchemaError(
                    f"foreign key {fk.child}.{fk.column} must reference "
                    f"{fk.parent}'s declared primary key, not "
                    f"{fk.parent_key!r}")
        self.topological_order()  # raises on cycles

    def check_integrity(self) -> Dict[str, int]:
        """Count dangling FK values per edge (all zero for valid data)."""
        dangling: Dict[str, int] = {}
        for fk in self.foreign_keys:
            parent_ids = self.primary_key_values(fk.parent)
            values = self[fk.child].column(fk.column).astype(np.int64)
            dangling[fk.key] = int((~np.isin(values, parent_ids)).sum())
        return dangling

    def topological_order(self) -> List[str]:
        """Table names ordered parents-first (Kahn's algorithm).

        Declaration order breaks ties, so the ordering is deterministic;
        raises :class:`~repro.errors.SchemaError` when the FK graph has
        a cycle.
        """
        remaining = {name: {fk.parent for fk in self.parents_of(name)
                            if fk.parent != name}
                     for name in self.tables}
        for name in remaining:
            if name in {fk.parent for fk in self.parents_of(name)}:
                raise SchemaError(
                    f"foreign key cycle: table {name!r} references itself")
        order: List[str] = []
        placed: Set[str] = set()
        while remaining:
            ready = [name for name, deps in remaining.items()
                     if deps <= placed]
            if not ready:
                cycle = ", ".join(sorted(remaining))
                raise SchemaError(f"foreign key cycle among tables: {cycle}")
            for name in ready:
                order.append(name)
                placed.add(name)
                del remaining[name]
        return order

    # ------------------------------------------------------------------
    # Persistence helpers
    # ------------------------------------------------------------------
    def structure_to_dict(self) -> Dict:
        """JSON-serializable keys/edges (not the table data)."""
        return {
            "tables": list(self.tables),
            "primary_keys": dict(self.primary_keys),
            "foreign_keys": [fk.to_dict() for fk in self.foreign_keys],
        }
