"""Per-parent child-count models (the FK cardinality distribution).

Multi-table synthesis has to decide *how many* child rows each
synthetic parent gets; getting this distribution wrong breaks
aggregate queries over the synthetic database even when every row looks
realistic (the "cardinality fidelity" axis of Hudovernik et al.).

Two models over the per-parent counts ``c_1..c_P`` (zeros included —
parents without children are part of the distribution):

* :class:`EmpiricalCardinality` — the exact count histogram; sampling
  replays it.  The default: always consistent with the training data.
* :class:`NegativeBinomialCardinality` — method-of-moments negative
  binomial (Gueye et al.'s choice), which extrapolates beyond observed
  counts and smooths small parents; falls back to Poisson when the
  counts are not over-dispersed.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import ConfigError, TrainingError


def child_counts(parent_ids: np.ndarray, fk_values: np.ndarray) -> np.ndarray:
    """Children per parent (aligned with ``parent_ids``, zeros included)."""
    parent_ids = np.asarray(parent_ids, dtype=np.int64)
    fk_values = np.asarray(fk_values, dtype=np.int64)
    order = np.argsort(parent_ids, kind="stable")
    sorted_ids = parent_ids[order]
    positions = np.searchsorted(sorted_ids, fk_values)
    counts_sorted = np.bincount(positions, minlength=len(parent_ids))
    counts = np.empty(len(parent_ids), dtype=np.int64)
    counts[order] = counts_sorted
    return counts


class CardinalityModel:
    """Shared contract: ``fit(counts)`` then ``sample(n, rng)``."""

    kind: str = ""

    def fit(self, counts: np.ndarray) -> "CardinalityModel":
        raise NotImplementedError

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    @property
    def mean(self) -> float:
        raise NotImplementedError

    def to_state(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_state(cls, state: dict) -> "CardinalityModel":
        return _MODELS[state["kind"]]._from_state(state)


class EmpiricalCardinality(CardinalityModel):
    """Exact histogram of the observed per-parent child counts."""

    kind = "empirical"

    def __init__(self):
        self.probs: np.ndarray = np.array([])

    def fit(self, counts: np.ndarray) -> "EmpiricalCardinality":
        counts = np.asarray(counts, dtype=np.int64)
        if len(counts) == 0:
            raise TrainingError("cannot fit cardinality on zero parents")
        histogram = np.bincount(counts)
        self.probs = histogram / histogram.sum()
        return self

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if len(self.probs) == 0:
            raise TrainingError("cardinality model is not fitted")
        return rng.choice(len(self.probs), size=n, p=self.probs)

    @property
    def mean(self) -> float:
        return float(np.arange(len(self.probs)) @ self.probs)

    def to_state(self) -> dict:
        return {"kind": self.kind, "probs": self.probs.tolist()}

    @classmethod
    def _from_state(cls, state: dict) -> "EmpiricalCardinality":
        model = cls()
        model.probs = np.asarray(state["probs"], dtype=np.float64)
        return model


class NegativeBinomialCardinality(CardinalityModel):
    """Method-of-moments negative binomial over the child counts.

    With sample mean ``m`` and variance ``v > m``: ``p = m / v`` and
    ``r = m * p / (1 - p)``.  Counts that are not over-dispersed
    (``v <= m``, where the NB degenerates) fall back to a Poisson with
    rate ``m``; all-zero counts always sample zero.
    """

    kind = "negbin"

    def __init__(self):
        self.r: float = 0.0
        self.p: float = 1.0
        self.lam: float = 0.0
        self._poisson = True

    def fit(self, counts: np.ndarray) -> "NegativeBinomialCardinality":
        counts = np.asarray(counts, dtype=np.float64)
        if len(counts) == 0:
            raise TrainingError("cannot fit cardinality on zero parents")
        mean = float(counts.mean())
        var = float(counts.var())
        if var > mean > 0:
            self.p = mean / var
            self.r = mean * self.p / (1.0 - self.p)
            self._poisson = False
        else:
            self.lam = mean
            self._poisson = True
        return self

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self._poisson:
            if self.lam == 0.0:
                return np.zeros(n, dtype=np.int64)
            return rng.poisson(self.lam, size=n).astype(np.int64)
        return rng.negative_binomial(self.r, self.p, size=n).astype(np.int64)

    @property
    def mean(self) -> float:
        if self._poisson:
            return self.lam
        return self.r * (1.0 - self.p) / self.p

    def to_state(self) -> dict:
        return {"kind": self.kind, "r": self.r, "p": self.p,
                "lam": self.lam, "poisson": self._poisson}

    @classmethod
    def _from_state(cls, state: dict) -> "NegativeBinomialCardinality":
        model = cls()
        model.r = float(state["r"])
        model.p = float(state["p"])
        model.lam = float(state["lam"])
        model._poisson = bool(state["poisson"])
        return model


_MODELS: Dict[str, type] = {
    EmpiricalCardinality.kind: EmpiricalCardinality,
    NegativeBinomialCardinality.kind: NegativeBinomialCardinality,
}


def make_cardinality_model(kind: str) -> CardinalityModel:
    """Instantiate a cardinality model by name."""
    if kind not in _MODELS:
        known = ", ".join(sorted(_MODELS))
        raise ConfigError(
            f"unknown cardinality model {kind!r} (available: {known})")
    return _MODELS[kind]()
