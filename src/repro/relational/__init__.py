"""Multi-table (relational) database synthesis.

Extends the paper's single-table framework to databases with foreign
keys: parents are synthesized first, child tables are generated
conditioned on encoded synthetic-parent context with per-parent child
counts drawn from a fitted cardinality model, and FK columns are
assigned structurally so referential integrity holds by construction.

Public surface::

    from repro.relational import (
        Database, ForeignKey, DatabaseSynthesizer, ParentContextEncoder,
        database_fidelity_report,
    )
"""

from .schema import Database, ForeignKey
from .context import ParentContextEncoder
from .cardinality import (
    CardinalityModel, EmpiricalCardinality, NegativeBinomialCardinality,
    child_counts, make_cardinality_model,
)
from .synthesizer import (
    DatabaseSynthesisResult, DatabaseSynthesizer, load_database_synthesizer,
)
from .metrics import (
    cardinality_fidelity, database_fidelity_report, parent_child_correlation,
)

__all__ = [
    "Database", "ForeignKey", "ParentContextEncoder",
    "CardinalityModel", "EmpiricalCardinality",
    "NegativeBinomialCardinality", "child_counts", "make_cardinality_model",
    "DatabaseSynthesisResult", "DatabaseSynthesizer",
    "load_database_synthesizer",
    "cardinality_fidelity", "database_fidelity_report",
    "parent_child_correlation",
]
