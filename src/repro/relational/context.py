"""Parent-row context encoding for child-table conditioning.

Row Conditional-TGAN-style multi-table synthesis generates child rows
conditioned on *which parent row they belong to*.  The conditioning
signal is the parent row itself, pushed through the same attribute
transformation machinery the paper's Phase I uses
(:class:`~repro.transform.record.RecordTransformer`): categoricals
one-hot encoded, numericals normalized into ``[-1, 1]``, so every
context component is bounded and the child GAN's condition vector is a
well-scaled continuous input.

Simple normalization (not GMM) is the default for the numerical
components: the context is an *input*, not a reconstruction target, so
mode-specific coordinates would only widen the vector without adding
conditioning signal.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets.schema import Table
from ..errors import TransformError
from ..transform import RecordTransformer
from ..transform.record import transformer_from_state


class ParentContextEncoder:
    """Fitted map from parent rows to conditioning vectors.

    ``fit`` on the parent's non-key attributes; ``encode`` turns any
    table with that schema (real or synthetic parents) into a
    ``(n, dim)`` float matrix.
    """

    def __init__(self, categorical_encoding: str = "onehot",
                 numerical_normalization: str = "simple",
                 rng: Optional[np.random.Generator] = None):
        self.categorical_encoding = categorical_encoding
        self.numerical_normalization = numerical_normalization
        self.rng = rng
        self._transformer: Optional[RecordTransformer] = None

    @property
    def is_fitted(self) -> bool:
        return self._transformer is not None

    @property
    def dim(self) -> int:
        """Width of the context vectors."""
        if self._transformer is None:
            raise TransformError("context encoder is not fitted")
        return self._transformer.output_dim

    def fit(self, table: Table) -> "ParentContextEncoder":
        self._transformer = RecordTransformer(
            categorical_encoding=self.categorical_encoding,
            numerical_normalization=self.numerical_normalization,
            rng=self.rng)
        self._transformer.fit(table)
        return self

    def encode(self, table: Table) -> np.ndarray:
        """Encode parent rows into an ``(n, dim)`` context matrix."""
        if self._transformer is None:
            raise TransformError("context encoder is not fitted")
        return self._transformer.transform(table)

    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        if self._transformer is None:
            raise TransformError("context encoder is not fitted")
        return {
            "categorical_encoding": self.categorical_encoding,
            "numerical_normalization": self.numerical_normalization,
            "transformer": self._transformer.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict,
                   rng: Optional[np.random.Generator] = None
                   ) -> "ParentContextEncoder":
        encoder = cls(
            categorical_encoding=state["categorical_encoding"],
            numerical_normalization=state["numerical_normalization"],
            rng=rng)
        encoder._transformer = transformer_from_state(state["transformer"],
                                                      rng=rng)
        return encoder
