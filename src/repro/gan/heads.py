"""Attribute-aware generator output heads (paper Appendix A.1.2, C1-C4).

The generator's last hidden representation is mapped per attribute block
using the activation the block's transformation scheme requires:

* C1 simple normalization  -> ``tanh(FC(h))``
* C2 GMM normalization     -> ``tanh(FC(h)) ⊕ softmax(FC(h))``
* C3 one-hot encoding      -> ``softmax(FC(h))``
* C4 ordinal encoding      -> ``sigmoid(FC(h))``

The heads are shared by the MLP generator (all from one hidden vector)
and the LSTM generator (one or two timesteps per attribute).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import Linear, Module, Tensor, concat
from ..transform.base import (
    BlockSpec, HEAD_SIGMOID, HEAD_SOFTMAX, HEAD_TANH, HEAD_TANH_SOFTMAX,
)
from ..errors import ConfigError


class BlockHead(Module):
    """Output head for one attribute block."""

    def __init__(self, in_features: int, block: BlockSpec,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.block = block
        self.head = block.head
        if self.head == HEAD_TANH_SOFTMAX:
            # value part (width 1) + mode-indicator part (width - 1)
            self.value_fc = Linear(in_features, 1, rng=rng)
            self.mode_fc = Linear(in_features, block.width - 1, rng=rng)
        else:
            self.fc = Linear(in_features, block.width, rng=rng)

    def forward(self, h: Tensor) -> Tensor:
        if self.head == HEAD_TANH:
            return self.fc(h).tanh()
        if self.head == HEAD_SIGMOID:
            return self.fc(h).sigmoid()
        if self.head == HEAD_SOFTMAX:
            return self.fc(h).softmax(axis=-1)
        if self.head == HEAD_TANH_SOFTMAX:
            value = self.value_fc(h).tanh()
            mode = self.mode_fc(h).softmax(axis=-1)
            return concat([value, mode], axis=1)
        raise ConfigError(f"unknown head kind {self.head!r}")


class MultiHead(Module):
    """All attribute heads applied to one shared hidden vector (MLP G)."""

    def __init__(self, in_features: int, blocks: List[BlockSpec],
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.blocks = blocks
        self.heads: List[BlockHead] = []
        for i, block in enumerate(blocks):
            head = BlockHead(in_features, block, rng=rng)
            self.heads.append(head)
            self.register_module(f"head{i}", head)

    def forward(self, h: Tensor) -> Tensor:
        return concat([head(h) for head in self.heads], axis=1)
