"""Attribute-aware generator output heads (paper Appendix A.1.2, C1-C4).

The generator's last hidden representation is mapped per attribute block
using the activation the block's transformation scheme requires:

* C1 simple normalization  -> ``tanh(FC(h))``
* C2 GMM normalization     -> ``tanh(FC(h)) ⊕ softmax(FC(h))``
* C3 one-hot encoding      -> ``softmax(FC(h))``
* C4 ordinal encoding      -> ``sigmoid(FC(h))``

The heads are shared by the MLP generator (all from one hidden vector)
and the LSTM generator (one or two timesteps per attribute).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import Linear, Module, Tensor, concat, fused_linear
from ..nn.tensor import _stable_sigmoid, fast_math, is_grad_enabled
from ..transform.base import (
    BlockSpec, HEAD_SIGMOID, HEAD_SOFTMAX, HEAD_TANH, HEAD_TANH_SOFTMAX,
)
from ..errors import ConfigError


class BlockHead(Module):
    """Output head for one attribute block."""

    def __init__(self, in_features: int, block: BlockSpec,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.block = block
        self.head = block.head
        if self.head == HEAD_TANH_SOFTMAX:
            # value part (width 1) + mode-indicator part (width - 1)
            self.value_fc = Linear(in_features, 1, rng=rng)
            self.mode_fc = Linear(in_features, block.width - 1, rng=rng)
        else:
            self.fc = Linear(in_features, block.width, rng=rng)

    def forward(self, h: Tensor) -> Tensor:
        if self.head == HEAD_TANH:
            return self.fc(h, activation="tanh")
        if self.head == HEAD_SIGMOID:
            return self.fc(h, activation="sigmoid")
        if self.head == HEAD_SOFTMAX:
            return self.fc(h).softmax(axis=-1)
        if self.head == HEAD_TANH_SOFTMAX:
            value = self.value_fc(h, activation="tanh")
            mode = self.mode_fc(h).softmax(axis=-1)
            return concat([value, mode], axis=1)
        raise ConfigError(f"unknown head kind {self.head!r}")


class MultiHead(Module):
    """All attribute heads applied to one shared hidden vector (MLP G).

    Under fast-math all head projections run as one wide matmul —
    weights are concatenated per forward and the activations applied to
    slices of the joint pre-activation.  Flop-equivalent but with one
    input-gradient GEMM instead of one per head; parity mode keeps the
    per-head kernels (bit-identical to the historical graph).
    """

    def __init__(self, in_features: int, blocks: List[BlockSpec],
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.blocks = blocks
        self.heads: List[BlockHead] = []
        for i, block in enumerate(blocks):
            head = BlockHead(in_features, block, rng=rng)
            self.heads.append(head)
            self.register_module(f"head{i}", head)
        # (activation, width, fc) segments of the joint projection.
        self._plan = []
        for head, block in zip(self.heads, blocks):
            if head.head == HEAD_TANH_SOFTMAX:
                self._plan.append(("tanh", 1, head.value_fc))
                self._plan.append(("softmax", block.width - 1, head.mode_fc))
            else:
                act = {HEAD_TANH: "tanh", HEAD_SIGMOID: "sigmoid",
                       HEAD_SOFTMAX: "softmax"}[head.head]
                self._plan.append((act, block.width, head.fc))
        self._seg_info = self._build_seg_info()

    def forward(self, h: Tensor) -> Tensor:
        if not fast_math():
            return concat([head(h) for head in self.heads], axis=1)
        weight = concat([fc.weight for _, _, fc in self._plan], axis=1)
        bias = concat([fc.bias for _, _, fc in self._plan], axis=0)
        pre = fused_linear(h, weight, bias)
        return _multi_activation(pre, self._seg_info)

    def _build_seg_info(self):
        """Segment layout for :func:`_multi_activation` (fixed by _plan)."""
        starts, widths = [], []
        offset = 0
        total = sum(width for _, width, _ in self._plan)
        tanh_cols = np.zeros(total, dtype=bool)
        sigmoid_cols = np.zeros(total, dtype=bool)
        for act, width, _ in self._plan:
            starts.append(offset)
            widths.append(width)
            if act == "tanh":
                tanh_cols[offset:offset + width] = True
            elif act == "sigmoid":
                sigmoid_cols[offset:offset + width] = True
            offset += width
        return (np.asarray(starts), np.asarray(widths),
                tanh_cols, sigmoid_cols)


def _multi_activation(pre: Tensor, seg_info) -> Tensor:
    """Per-column-segment activations on ``pre`` as one tape node.

    ``seg_info`` is ``(starts, widths, tanh_cols, sigmoid_cols)``: the
    segment layout plus boolean column masks for the non-softmax
    segments.  The row-wise softmax runs group-vectorized over ALL
    segments via ``reduceat`` (width-1 tanh/sigmoid segments come out as
    1.0 and are overwritten through their masks), so the cost does not
    scale with the number of attribute heads.  Fast-math companion of
    the per-head op chain.
    """
    starts, widths, tanh_cols, sigmoid_cols = seg_info
    pd = pre.data
    mx = np.maximum.reduceat(pd, starts, axis=1)
    if not is_grad_enabled():
        # Sampling fast path: no backward reads ``pd``/``e``, so the
        # exp/normalize passes can run in place (two fewer full-width
        # temporaries per chunk).
        tanh_in = pd[:, tanh_cols] if tanh_cols.any() else None
        sigmoid_in = pd[:, sigmoid_cols] if sigmoid_cols.any() else None
        e = np.subtract(pd, mx.repeat(widths, axis=1), out=pd)
        np.exp(e, out=e)
        s = np.add.reduceat(e, starts, axis=1)
        out = np.divide(e, s.repeat(widths, axis=1), out=e)
        if tanh_in is not None:
            out[:, tanh_cols] = np.tanh(tanh_in)
        if sigmoid_in is not None:
            out[:, sigmoid_cols] = _stable_sigmoid(sigmoid_in)
        return Tensor(out)
    e = np.exp(pd - mx.repeat(widths, axis=1))
    s = np.add.reduceat(e, starts, axis=1)
    out = e / s.repeat(widths, axis=1)
    if tanh_cols.any():
        out[:, tanh_cols] = np.tanh(pd[:, tanh_cols])
    if sigmoid_cols.any():
        out[:, sigmoid_cols] = _stable_sigmoid(pd[:, sigmoid_cols])

    def backward(grad: np.ndarray):
        dot = np.add.reduceat(grad * out, starts, axis=1)
        d = out * (grad - dot.repeat(widths, axis=1))
        if tanh_cols.any():
            o = out[:, tanh_cols]
            d[:, tanh_cols] = grad[:, tanh_cols] * (1.0 - o ** 2)
        if sigmoid_cols.any():
            o = out[:, sigmoid_cols]
            d[:, sigmoid_cols] = grad[:, sigmoid_cols] * o * (1.0 - o)
        return (d,)

    return Tensor._make(out, (pre,), backward)
