"""GAN training algorithms (paper §5.2-§5.4, Table 1, Algorithms 1-4).

===========  =========  ==========  ============  ====
algorithm    loss       optimizer   sampling      DP
===========  =========  ==========  ============  ====
``vtrain``   Eq. (2)    Adam        random        no
``wtrain``   Eq. (3)    RMSProp     random        no
``ctrain``   Eq. (4)    Adam        label-aware   no
``dptrain``  Eq. (3)    RMSProp     random        yes
===========  =========  ==========  ============  ====

VTrain implements the non-saturating ("improved") generator loss plus
the per-attribute KL-divergence warm-up of Eq. (2).  WTrain is standard
WGAN: no sigmoid, weight clipping, ``d_steps`` inner critic iterations.
CTrain is VTrain with label conditions and label-aware sampling.
DPTrain is WTrain with bounded, noised discriminator gradients (DPGAN).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from ..errors import TrainingError
from ..nn import (
    Adam, Module, RMSProp, Tensor, add_gradient_noise, bce_with_logits,
    categorical_kl_sum, clip_gradients, clip_parameters, fast_math,
    get_default_dtype, no_grad,
)
from ..transform.base import BlockSpec, HEAD_TANH_SOFTMAX, HEAD_SOFTMAX
from .sampler import LabelAwareSampler, RandomSampler


@dataclass
class EpochRecord:
    """Diagnostics collected at the end of one epoch.

    ``snapshot`` is ``None`` for epochs the trainer was told not to
    snapshot (see ``BaseTrainer.train(snapshot_epochs=...)``).
    """

    epoch: int
    g_loss: float
    d_loss: float
    snapshot: Optional[Dict[str, np.ndarray]]


@dataclass
class TrainResult:
    """Everything the evaluation framework needs after training."""

    epochs: List[EpochRecord] = field(default_factory=list)
    g_losses: List[float] = field(default_factory=list)
    d_losses: List[float] = field(default_factory=list)

    @property
    def snapshots(self) -> List[Optional[Dict[str, np.ndarray]]]:
        return [e.snapshot for e in self.epochs]


def _onehot(labels: np.ndarray, n_labels: int) -> np.ndarray:
    # Built in the engine dtype so the Tensor wrap is cast-free (a
    # no-op in float64 parity mode, where zeros() is float64 already).
    out = np.zeros((len(labels), n_labels), dtype=get_default_dtype())
    out[np.arange(len(labels)), labels] = 1.0
    return out


class BaseTrainer:
    """Shared epoch loop; subclasses implement :meth:`iteration`."""

    def __init__(self, generator: Module, discriminator: Module,
                 config, rng: np.random.Generator):
        self.generator = generator
        self.discriminator = discriminator
        self.config = config
        self.rng = rng
        self._last_g_loss = 0.0
        self._last_d_loss = 0.0
        # Optional (n, cond_dim) context matrix for arbitrary-context
        # conditioning (relational parent contexts); when set, the
        # per-row "labels" handed to the sampler are row indices into it.
        self._cond_matrix: Optional[np.ndarray] = None
        # Fast-math only: run D once on [real; fake] instead of twice.
        # Unsafe when D couples rows through batch statistics (layers
        # with running-stat buffers, i.e. batch norm), because a mixed
        # real/fake batch would change those statistics.
        self._batch_d_passes = not any(
            True for _ in discriminator.named_buffers())

    def _discriminate_pair(self, real: np.ndarray, fake: Tensor, cond):
        """D logits for a real batch and a fake batch (maybe batched)."""
        if fast_math() and self._batch_d_passes:
            m = len(real)
            both = Tensor(np.concatenate([real, fake.data], axis=0))
            cond_both = None
            if cond is not None:
                cond_both = Tensor(
                    np.concatenate([cond.data, cond.data], axis=0))
            d_both = self.discriminator(both, cond_both)
            return d_both[:m], d_both[m:]
        return (self.discriminator(Tensor(real), cond),
                self.discriminator(fake, cond))

    # -- noise ----------------------------------------------------------
    def sample_noise(self, m: int) -> Tensor:
        shape = (m, self.config.z_dim)
        dtype = get_default_dtype()
        if dtype is np.float64:
            return Tensor(self.rng.standard_normal(shape))
        # float32 mode: draw directly in the engine dtype (skips a cast;
        # consumes the RNG stream differently, which is fine outside the
        # float64 parity mode).
        return Tensor(self.rng.standard_normal(shape, dtype=dtype))

    # -- main loop ------------------------------------------------------
    def train(self, data: np.ndarray, labels: Optional[np.ndarray],
              n_labels: int, epochs: int, iterations_per_epoch: int,
              epoch_callback: Optional[Callable[[EpochRecord], None]] = None,
              snapshot_epochs: Optional[Iterable[int]] = None,
              conditions: Optional[np.ndarray] = None) -> TrainResult:
        """Run the epoch loop.

        ``snapshot_epochs`` limits which epochs deep-copy the generator
        ``state_dict`` into their :class:`EpochRecord` (``None`` keeps
        every epoch — required for model selection).  The final epoch is
        always snapshotted so the trained generator can be restored and
        persisted.  Sweeps that skip the selection loop pass an empty
        collection and avoid ``epochs``x generator-sized deep copies.

        ``conditions`` generalizes label conditioning to arbitrary
        per-row context matrices: an ``(n, cond_dim)`` float array
        aligned with ``data``; ``labels`` must then be the row indices
        ``arange(n)`` so minibatch sampling gathers the matching rows.
        """
        if len(data) == 0:
            raise TrainingError("cannot train on an empty table")
        if conditions is not None:
            if labels is None or len(conditions) != len(data):
                raise TrainingError(
                    "context conditioning needs per-row indices as labels "
                    "and one context row per record")
            self._cond_matrix = np.asarray(conditions,
                                           dtype=get_default_dtype())
        # Hold the training matrix in the engine dtype so minibatch
        # gathers and loss statistics skip a per-iteration cast (a no-op
        # in float64 parity mode, where data already is float64).
        data = np.asarray(data, dtype=get_default_dtype())
        snapshot_set = (None if snapshot_epochs is None
                        else {int(e) for e in snapshot_epochs})
        self.prepare(data, labels, n_labels)
        result = TrainResult()
        for epoch in range(epochs):
            for _ in range(iterations_per_epoch):
                self.iteration()
                result.g_losses.append(self._last_g_loss)
                result.d_losses.append(self._last_d_loss)
            take_snapshot = (snapshot_set is None or epoch in snapshot_set
                             or epoch == epochs - 1)
            record = EpochRecord(
                epoch=epoch,
                g_loss=self._last_g_loss,
                d_loss=self._last_d_loss,
                snapshot=(self.generator.state_dict()
                          if take_snapshot else None),
            )
            result.epochs.append(record)
            if epoch_callback is not None:
                epoch_callback(record)
        return result

    def prepare(self, data, labels, n_labels) -> None:
        raise NotImplementedError

    def iteration(self) -> None:
        raise NotImplementedError

    # -- KL warm-up (paper Eq. 2) ----------------------------------------
    def kl_term(self, real_batch: np.ndarray, fake: Tensor):
        """Sum of per-attribute KL divergences on discrete blocks.

        Differentiable through the generator's softmax heads; tanh
        (numerical) blocks are skipped, matching the released Daisy code.
        Computed as one fused tape node (:func:`categorical_kl_sum`).
        """
        blocks: List[BlockSpec] = getattr(self.generator, "blocks", [])
        slices = []
        for block in blocks:
            if block.head == HEAD_SOFTMAX:
                slices.append(block.slice)
            elif block.head == HEAD_TANH_SOFTMAX:
                slices.append(slice(block.start + 1, block.stop))
        if not slices:
            return None
        return categorical_kl_sum(real_batch, fake, slices)


class VanillaTrainer(BaseTrainer):
    """Algorithm 1 (VTrain): alternating Adam steps on BCE losses.

    The generator objective uses the non-saturating loss plus the KL
    warm-up.  ``conditional=True`` turns this into CGAN-V: conditions are
    attached but minibatches stay uniformly sampled.
    """

    conditional = False

    def prepare(self, data, labels, n_labels) -> None:
        self.sampler = RandomSampler(data, labels, rng=self.rng)
        self.n_labels = n_labels
        self.opt_d = Adam(self.discriminator.parameters(), lr=self.config.lr_d)
        self.opt_g = Adam(self.generator.parameters(), lr=self.config.lr_g)

    def _conds(self, label_batch):
        if not self.conditional:
            return None, None
        if label_batch is None:
            raise TrainingError("conditional training requires labels")
        if self._cond_matrix is not None:
            # Arbitrary-context mode: label_batch carries row indices.
            return Tensor(self._cond_matrix[label_batch]), label_batch
        cond = Tensor(_onehot(label_batch, self.n_labels))
        return cond, label_batch

    def iteration(self) -> None:
        m = self.config.batch_size
        real, label_batch = self.sampler.batch(m)
        cond, _ = self._conds(label_batch)
        self._step_discriminator(real, cond)
        self._step_generator(real, cond)

    def _step_discriminator(self, real: np.ndarray, cond) -> None:
        m = len(real)
        z = self.sample_noise(m)
        with no_grad():
            fake = self.generator(z, cond)
        self.opt_d.zero_grad()
        d_real, d_fake = self._discriminate_pair(real, fake, cond)
        loss = (bce_with_logits(d_real, np.ones((m, 1)))
                + bce_with_logits(d_fake, np.zeros((m, 1))))
        loss.backward()
        self.opt_d.step()
        self._last_d_loss = float(loss.data)

    def _step_generator(self, real: np.ndarray, cond) -> None:
        m = len(real)
        z = self.sample_noise(m)
        self.opt_g.zero_grad()
        self.opt_d.zero_grad()
        fake = self.generator(z, cond)
        loss = bce_with_logits(self.discriminator(fake, cond),
                               np.ones((m, 1)))
        if self.config.kl_weight > 0:
            kl = self.kl_term(real, fake)
            if kl is not None:
                loss = loss + kl * self.config.kl_weight
        loss.backward()
        self.opt_g.step()
        self._last_g_loss = float(loss.data)


class ConditionalVanillaTrainer(VanillaTrainer):
    """CGAN-V: vanilla training with conditions, random sampling."""

    conditional = True


class CTrainTrainer(VanillaTrainer):
    """Algorithm 3 (CTrain): conditional GAN + label-aware sampling.

    Each iteration walks every label of the real data and runs one D/G
    step on a minibatch of that label, so minority labels receive the
    same number of updates as majority ones.
    """

    conditional = True

    def prepare(self, data, labels, n_labels) -> None:
        if labels is None:
            raise TrainingError("ctrain requires labels")
        self.sampler = LabelAwareSampler(data, labels, rng=self.rng)
        self.n_labels = n_labels
        self.opt_d = Adam(self.discriminator.parameters(), lr=self.config.lr_d)
        self.opt_g = Adam(self.generator.parameters(), lr=self.config.lr_g)

    def iteration(self) -> None:
        m = self.config.batch_size
        for label in self.sampler.label_domain:
            real = self.sampler.batch_for_label(label, m)
            cond = Tensor(_onehot(np.full(m, label, dtype=np.int64),
                                  self.n_labels))
            self._step_discriminator(real, cond)
            self._step_generator(real, cond)


class WGANTrainer(BaseTrainer):
    """Algorithm 2 (WTrain): Wasserstein GAN with weight clipping."""

    def prepare(self, data, labels, n_labels) -> None:
        self.sampler = RandomSampler(data, labels, rng=self.rng)
        self.opt_d = RMSProp(self.discriminator.parameters(),
                             lr=self.config.lr_d)
        self.opt_g = RMSProp(self.generator.parameters(), lr=self.config.lr_g)

    def _critic_step(self, real: np.ndarray) -> float:
        m = len(real)
        z = self.sample_noise(m)
        with no_grad():
            fake = self.generator(z)
        self.opt_d.zero_grad()
        d_real, d_fake = self._discriminate_pair(real, fake, None)
        loss = d_fake.mean() - d_real.mean()  # minimize (d_fake - d_real)
        loss.backward()
        self._post_process_critic_grads(m)
        self.opt_d.step()
        clip_parameters(self.discriminator.parameters(),
                        self.config.weight_clip)
        return float(loss.data)

    def _post_process_critic_grads(self, batch_size: int) -> None:
        """Hook for DPTrain's gradient sanitization."""

    def iteration(self) -> None:
        d_steps = max(1, self.config.d_steps)
        for _ in range(d_steps):
            real, _ = self.sampler.batch(self.config.batch_size)
            self._last_d_loss = self._critic_step(real)
        m = self.config.batch_size
        z = self.sample_noise(m)
        self.opt_g.zero_grad()
        self.opt_d.zero_grad()
        loss = -self.discriminator(self.generator(z)).mean()
        loss.backward()
        self.opt_g.step()
        self._last_g_loss = float(loss.data)


class DPTrainer(WGANTrainer):
    """Algorithm 4 (DPTrain): DPGAN — WGAN + noised critic gradients.

    The critic's batch gradient is clipped to ``dp_grad_bound`` and
    Gaussian noise ``N(0, (sigma * bound)^2 / m^2)`` is added, the
    batch-level analogue of DPGAN's per-example construction.  Only the
    discriminator touches real data; the generator inherits privacy by
    post-processing.
    """

    def _post_process_critic_grads(self, batch_size: int) -> None:
        bound = self.config.dp_grad_bound
        sigma = self.config.dp_noise_multiplier
        clip_gradients(self.discriminator.parameters(), bound)
        add_gradient_noise(self.discriminator.parameters(),
                           sigma * bound / batch_size, self.rng)


TRAINERS = {
    "vtrain": VanillaTrainer,
    "wtrain": WGANTrainer,
    "ctrain": CTrainTrainer,
    "dptrain": DPTrainer,
}


def make_trainer(config, generator: Module, discriminator: Module,
                 rng: np.random.Generator,
                 force_conditional: bool = False) -> BaseTrainer:
    """Instantiate the trainer matching ``config.training``.

    ``vtrain`` with ``conditional=True`` resolves to CGAN-V.
    ``force_conditional`` requests the conditional vanilla trainer even
    when the config itself is unconditional — used by context-matrix
    conditioning, where the condition is not a label of the table.
    """
    name = config.training
    if name == "vtrain" and (config.is_conditional or force_conditional):
        return ConditionalVanillaTrainer(generator, discriminator, config, rng)
    try:
        cls = TRAINERS[name]
    except KeyError:
        raise TrainingError(f"unknown training algorithm {name!r}") from None
    return cls(generator, discriminator, config, rng)
