"""MLP generator and discriminator (paper Appendix A.1.2, Figure 11).

Generator: ``h^{l+1} = ReLU(BN(FC(h^l)))`` over the noise (plus the
condition vector for conditional GAN), finished by the attribute-aware
heads.  Discriminator: fully connected LeakyReLU stack ending in a single
logit (the sigmoid lives in the loss; WGAN uses the raw logit).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import (
    BatchNorm1d, Linear, Module, Tensor, concat, fused_linear,
)
from ..nn.tensor import fast_math, is_grad_enabled
from ..transform.base import BlockSpec
from .heads import MultiHead


def _fold_eval_bn(fc: Linear, bn: BatchNorm1d) -> tuple:
    """Fold eval-mode batch norm into the preceding linear layer.

    ``relu(BN_eval(x W + b))`` equals ``relu(x W' + b')`` with
    ``W' = W * s`` and ``b' = (b - mean) * s + beta`` for the fixed
    per-feature scale ``s = gamma / sqrt(running_var + eps)``.  The fold
    costs two elementwise passes over the (small) weight matrix and
    removes every full-batch BN temporary from the sampling hot loop.
    Fast-math only (the re-associated affine is not bit-identical).
    """
    dtype = fc.weight.data.dtype
    inv = np.asarray(1.0 / np.sqrt(bn.running_var + bn.eps), dtype=dtype)
    mean = np.asarray(bn.running_mean, dtype=dtype)
    scale = bn.gamma.data * inv
    weight = Tensor(fc.weight.data * scale)
    bias = Tensor((fc.bias.data - mean) * scale + bn.beta.data)
    return weight, bias


class MLPGenerator(Module):
    """Noise (+ condition) -> sample vector via fully connected layers."""

    def __init__(self, z_dim: int, blocks: List[BlockSpec],
                 hidden_dim: int = 128, n_layers: int = 2,
                 cond_dim: int = 0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.z_dim = z_dim
        self.cond_dim = cond_dim
        self.blocks = blocks
        in_dim = z_dim + cond_dim
        self.hidden_layers: List[Module] = []
        for i in range(n_layers):
            fc = Linear(in_dim, hidden_dim, rng=rng)
            bn = BatchNorm1d(hidden_dim)
            self.register_module(f"fc{i}", fc)
            self.register_module(f"bn{i}", bn)
            self.hidden_layers.append((fc, bn))
            in_dim = hidden_dim
        self.heads = MultiHead(in_dim, blocks, rng=rng)
        self._folded_cache = None

    # The folded eval-BN weights are constant for a whole eval-mode
    # sampling stream; any event that could change weights or mode
    # invalidates the cache.
    def train(self) -> "Module":
        self._folded_cache = None
        return super().train()

    def eval(self) -> "Module":
        self._folded_cache = None
        return super().eval()

    def load_state_dict(self, state) -> None:
        self._folded_cache = None
        super().load_state_dict(state)

    @property
    def output_dim(self) -> int:
        return sum(block.width for block in self.blocks)

    def forward(self, z: Tensor, cond: Optional[Tensor] = None) -> Tensor:
        h = z if cond is None else concat([z, cond], axis=1)
        if fast_math() and not self.training and not is_grad_enabled():
            # Sampling fast path: eval-mode BN is a constant affine, so
            # each hidden layer collapses to one fused GEMM (the fold is
            # computed once per stream, not per chunk).
            if self._folded_cache is None:
                self._folded_cache = [_fold_eval_bn(fc, bn)
                                      for fc, bn in self.hidden_layers]
            for weight, bias in self._folded_cache:
                h = fused_linear(h, weight, bias, activation="relu")
        else:
            for fc, bn in self.hidden_layers:
                h = bn(fc(h), activation="relu")
        return self.heads(h)


class MLPDiscriminator(Module):
    """Sample (+ condition) -> realness logit.

    ``simplified=True`` realizes the paper's mode-collapse remedy (§5.2):
    a single narrow hidden layer so D never trains "too well" and G's
    gradient does not vanish.
    """

    def __init__(self, input_dim: int, hidden_dim: int = 128,
                 n_layers: int = 2, cond_dim: int = 0,
                 simplified: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.cond_dim = cond_dim
        if simplified:
            hidden_dim = max(16, hidden_dim // 4)
            n_layers = 1
        in_dim = input_dim + cond_dim
        self.hidden_layers: List[Linear] = []
        for i in range(n_layers):
            fc = Linear(in_dim, hidden_dim, rng=rng)
            self.register_module(f"fc{i}", fc)
            self.hidden_layers.append(fc)
            in_dim = hidden_dim
        self.out = Linear(in_dim, 1, rng=rng)

    def forward(self, t: Tensor, cond: Optional[Tensor] = None) -> Tensor:
        h = t if cond is None else concat([t, cond], axis=1)
        for fc in self.hidden_layers:
            h = fc(h, activation="leaky_relu", slope=0.2)
        return self.out(h)
