"""MLP generator and discriminator (paper Appendix A.1.2, Figure 11).

Generator: ``h^{l+1} = ReLU(BN(FC(h^l)))`` over the noise (plus the
condition vector for conditional GAN), finished by the attribute-aware
heads.  Discriminator: fully connected LeakyReLU stack ending in a single
logit (the sigmoid lives in the loss; WGAN uses the raw logit).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import (
    BatchNorm1d, Linear, Module, Tensor, concat,
)
from ..transform.base import BlockSpec
from .heads import MultiHead


class MLPGenerator(Module):
    """Noise (+ condition) -> sample vector via fully connected layers."""

    def __init__(self, z_dim: int, blocks: List[BlockSpec],
                 hidden_dim: int = 128, n_layers: int = 2,
                 cond_dim: int = 0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.z_dim = z_dim
        self.cond_dim = cond_dim
        self.blocks = blocks
        in_dim = z_dim + cond_dim
        self.hidden_layers: List[Module] = []
        for i in range(n_layers):
            fc = Linear(in_dim, hidden_dim, rng=rng)
            bn = BatchNorm1d(hidden_dim)
            self.register_module(f"fc{i}", fc)
            self.register_module(f"bn{i}", bn)
            self.hidden_layers.append((fc, bn))
            in_dim = hidden_dim
        self.heads = MultiHead(in_dim, blocks, rng=rng)

    @property
    def output_dim(self) -> int:
        return sum(block.width for block in self.blocks)

    def forward(self, z: Tensor, cond: Optional[Tensor] = None) -> Tensor:
        h = z if cond is None else concat([z, cond], axis=1)
        for fc, bn in self.hidden_layers:
            h = bn(fc(h), activation="relu")
        return self.heads(h)


class MLPDiscriminator(Module):
    """Sample (+ condition) -> realness logit.

    ``simplified=True`` realizes the paper's mode-collapse remedy (§5.2):
    a single narrow hidden layer so D never trains "too well" and G's
    gradient does not vanish.
    """

    def __init__(self, input_dim: int, hidden_dim: int = 128,
                 n_layers: int = 2, cond_dim: int = 0,
                 simplified: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.cond_dim = cond_dim
        if simplified:
            hidden_dim = max(16, hidden_dim // 4)
            n_layers = 1
        in_dim = input_dim + cond_dim
        self.hidden_layers: List[Linear] = []
        for i in range(n_layers):
            fc = Linear(in_dim, hidden_dim, rng=rng)
            self.register_module(f"fc{i}", fc)
            self.hidden_layers.append(fc)
            in_dim = hidden_dim
        self.out = Linear(in_dim, 1, rng=rng)

    def forward(self, t: Tensor, cond: Optional[Tensor] = None) -> Tensor:
        h = t if cond is None else concat([t, cond], axis=1)
        for fc in self.hidden_layers:
            h = fc(h, activation="leaky_relu", slope=0.2)
        return self.out(h)
