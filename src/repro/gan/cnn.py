"""CNN (DCGAN-style) generator and discriminator for matrix-form samples.

Follows the paper's Appendix A.1.1 (Figure 10) / tableGAN: the generator
de-convolves the noise up to a ``side x side`` single-channel matrix with
a tanh output; the discriminator convolves the matrix down to one logit.
Records are padded into the matrix by
:class:`repro.transform.MatrixTransformer` (ordinal + simple
normalization only — the matrix form carries one value per attribute).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    BatchNorm2d, Conv2d, ConvTranspose2d, Linear, Module, Tensor,
)
from ..errors import ConfigError

#: Matrix side used by the CNN pipeline (8x8 = up to 64 attributes).
DEFAULT_SIDE = 8


class CNNGenerator(Module):
    """z -> (1, side, side) matrix sample via fractionally strided convs."""

    def __init__(self, z_dim: int, side: int = DEFAULT_SIDE,
                 base_channels: int = 32,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if side % 4 != 0:
            raise ConfigError("CNN generator needs side divisible by 4")
        self.z_dim = z_dim
        self.side = side
        self.start = side // 4
        self.channels = base_channels * 2
        self.project = Linear(z_dim, self.channels * self.start ** 2, rng=rng)
        self.deconv1 = ConvTranspose2d(self.channels, base_channels,
                                       kernel_size=4, stride=2, padding=1,
                                       rng=rng)
        self.bn1 = BatchNorm2d(base_channels)
        self.deconv2 = ConvTranspose2d(base_channels, 1, kernel_size=4,
                                       stride=2, padding=1, rng=rng)

    def forward(self, z: Tensor, cond: Optional[Tensor] = None) -> Tensor:
        if cond is not None:
            raise ConfigError("the CNN pipeline is unconditional")
        batch = z.shape[0]
        h = self.project(z, activation="relu")
        h = h.reshape(batch, self.channels, self.start, self.start)
        # The activation/bn hooks fuse deconv + BN + nonlinearity into
        # one tape node in fast-math mode; in float64 parity mode they
        # compose the historical op chain bit-exactly.
        h = self.deconv1(h, activation="relu", bn=self.bn1)
        return self.deconv2(h, activation="tanh")


class CNNDiscriminator(Module):
    """(1, side, side) matrix -> realness logit via strided convolutions."""

    def __init__(self, side: int = DEFAULT_SIDE, base_channels: int = 32,
                 simplified: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if side % 4 != 0:
            raise ConfigError("CNN discriminator needs side divisible by 4")
        if simplified:
            base_channels = max(8, base_channels // 4)
        self.side = side
        self.simplified = simplified
        self.conv1 = Conv2d(1, base_channels, kernel_size=4, stride=2,
                            padding=1, rng=rng)
        self.conv2 = Conv2d(base_channels, base_channels * 2, kernel_size=4,
                            stride=2, padding=1, rng=rng)
        self.bn2 = BatchNorm2d(base_channels * 2)
        flat = base_channels * 2 * (side // 4) ** 2
        self.out = Linear(flat, 1, rng=rng)

    def forward(self, t: Tensor, cond: Optional[Tensor] = None) -> Tensor:
        if cond is not None:
            raise ConfigError("the CNN pipeline is unconditional")
        batch = t.shape[0]
        h = self.conv1(t, activation="leaky_relu", slope=0.2)
        h = self.conv2(h, activation="leaky_relu", slope=0.2, bn=self.bn2)
        h = h.reshape(batch, -1)
        return self.out(h)
