"""GAN models and training algorithms (paper §5, Appendix A)."""

from .heads import BlockHead, MultiHead
from .mlp import MLPDiscriminator, MLPGenerator
from .lstm import LSTMDiscriminator, LSTMGenerator
from .cnn import CNNDiscriminator, CNNGenerator, DEFAULT_SIDE
from .sampler import LabelAwareSampler, RandomSampler
from .training import (
    BaseTrainer, VanillaTrainer, ConditionalVanillaTrainer, CTrainTrainer,
    WGANTrainer, DPTrainer, TrainResult, EpochRecord, make_trainer,
)
from .mode_collapse import duplicate_rate, is_collapsed, mean_pairwise_distance
from .synthesizer import GANSynthesizer

__all__ = [
    "BlockHead", "MultiHead",
    "MLPDiscriminator", "MLPGenerator",
    "LSTMDiscriminator", "LSTMGenerator",
    "CNNDiscriminator", "CNNGenerator", "DEFAULT_SIDE",
    "LabelAwareSampler", "RandomSampler",
    "BaseTrainer", "VanillaTrainer", "ConditionalVanillaTrainer",
    "CTrainTrainer", "WGANTrainer", "DPTrainer", "TrainResult",
    "EpochRecord", "make_trainer",
    "duplicate_rate", "is_collapsed", "mean_pairwise_distance",
    "GANSynthesizer",
]
