"""LSTM generator and discriminator (paper Appendix A.1.3, Figure 12).

The generator treats a record as a sequence of attributes: timestep ``j``
consumes ``(z, f^{j-1})`` with hidden state ``h^{j-1}`` and emits a fixed
size output ``f^j = tanh(FC(h^j))`` from which attribute ``t_j`` is
produced with the head its transformation requires.  Attributes under
GMM normalization take *two* timesteps — one for ``v_gmm`` (tanh), one
for the mode indicator (softmax) — exactly as in the paper.

The discriminator is a sequence-to-one LSTM over per-block embeddings.

Hot-path notes: both models run on the fused LSTM kernels of
:mod:`repro.nn.rnn` (bit-exact in float64).  Under fast-math (float32
mode) the generator additionally splits the input projection into a
static part — ``(z ⊕ cond) @ W_x`` is identical at every timestep and
computed once — plus a small per-step ``f^{j-1}`` projection, and the
discriminator batches all block embeddings through the cell's input
projection in one matmul.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn import Linear, LSTMCell, Module, Tensor, concat
from ..nn.rnn import addmm, lstm_gates, lstm_step
from ..nn.tensor import fast_math
from ..transform.base import (
    BlockSpec, HEAD_SIGMOID, HEAD_SOFTMAX, HEAD_TANH, HEAD_TANH_SOFTMAX,
)
from ..errors import ConfigError


class LSTMGenerator(Module):
    """Sequence generation of attribute blocks.

    Parameters
    ----------
    lstm_output_dim:
        Size of the per-timestep output ``f^j`` fed back into the cell.
    """

    def __init__(self, z_dim: int, blocks: List[BlockSpec],
                 hidden_dim: int = 64, lstm_output_dim: int = 32,
                 cond_dim: int = 0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.z_dim = z_dim
        self.cond_dim = cond_dim
        self.blocks = blocks
        self.output_dim_f = lstm_output_dim
        input_size = z_dim + cond_dim + lstm_output_dim
        self.cell = LSTMCell(input_size, hidden_dim, rng=rng)
        self.f_fc = Linear(hidden_dim, lstm_output_dim, rng=rng)

        # One small FC per timestep output.  GMM blocks take two steps.
        self._step_plan: List[Tuple[int, str]] = []  # (block index, part)
        self._step_fcs: List[Linear] = []
        for bi, block in enumerate(blocks):
            if block.head == HEAD_TANH_SOFTMAX:
                self._add_step(bi, "value", lstm_output_dim, 1, rng)
                self._add_step(bi, "mode", lstm_output_dim,
                               block.width - 1, rng)
            else:
                self._add_step(bi, "whole", lstm_output_dim, block.width, rng)

    def _add_step(self, block_index: int, part: str, in_dim: int,
                  out_dim: int, rng) -> None:
        fc = Linear(in_dim, out_dim, rng=rng)
        step_index = len(self._step_plan)
        self.register_module(f"step{step_index}", fc)
        self._step_plan.append((block_index, part))
        self._step_fcs.append(fc)

    @property
    def n_timesteps(self) -> int:
        return len(self._step_plan)

    @property
    def output_dim(self) -> int:
        return sum(block.width for block in self.blocks)

    def _emit(self, block_index: int, part: str, fc: Linear,
              f_prev: Tensor) -> Tensor:
        block = self.blocks[block_index]
        if part == "value":
            return fc(f_prev, activation="tanh")
        if part == "mode":
            return fc(f_prev).softmax(axis=-1)
        if block.head == HEAD_TANH:
            return fc(f_prev, activation="tanh")
        if block.head == HEAD_SIGMOID:
            return fc(f_prev, activation="sigmoid")
        if block.head == HEAD_SOFTMAX:
            return fc(f_prev).softmax(axis=-1)
        raise ConfigError(f"unknown head {block.head!r}")

    def forward(self, z: Tensor, cond: Optional[Tensor] = None) -> Tensor:
        batch = z.shape[0]
        base = z if cond is None else concat([z, cond], axis=1)
        h, c = self.cell.initial_state(batch)
        f_prev = Tensor(np.zeros((batch, self.output_dim_f)))

        split = fast_math()
        if split:
            # The (z ⊕ cond) part of every timestep input is the same
            # tensor: project it through the matching rows of W_x once
            # and add only the small f^{j-1} projection per step.
            k = base.shape[1]
            w_static = self.cell.weight_x[:k]
            w_dynamic = self.cell.weight_x[k:]
            static_proj = base @ w_static

        block_parts: List[List[Tensor]] = [[] for _ in self.blocks]
        for (block_index, part), fc in zip(self._step_plan, self._step_fcs):
            if split:
                x_proj = addmm(static_proj, f_prev, w_dynamic)
                gates = lstm_gates(None, None, h, self.cell.weight_h,
                                   self.cell.bias, x_proj=x_proj)
            else:
                step_in = concat([base, f_prev], axis=1)
                gates = lstm_gates(step_in, self.cell.weight_x, h,
                                   self.cell.weight_h, self.cell.bias)
            h, c = lstm_step(gates, c, self.cell.hidden_size)
            f_prev = self.f_fc(h, activation="tanh")
            block_parts[block_index].append(
                self._emit(block_index, part, fc, f_prev))

        outputs = []
        for parts in block_parts:
            outputs.append(parts[0] if len(parts) == 1
                           else concat(parts, axis=1))
        return concat(outputs, axis=1)


class LSTMDiscriminator(Module):
    """Sequence-to-one LSTM discriminator (paper Appendix B.4).

    Each attribute block is embedded to a fixed width and the block
    sequence is consumed by an LSTM; the final hidden state maps to one
    realness logit.
    """

    def __init__(self, blocks: List[BlockSpec], hidden_dim: int = 64,
                 embed_dim: int = 16, cond_dim: int = 0,
                 simplified: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if simplified:
            hidden_dim = max(16, hidden_dim // 4)
        self.blocks = blocks
        self.cond_dim = cond_dim
        self.embeds: List[Linear] = []
        for i, block in enumerate(blocks):
            fc = Linear(block.width + cond_dim, embed_dim, rng=rng)
            self.register_module(f"embed{i}", fc)
            self.embeds.append(fc)
        self.cell = LSTMCell(embed_dim, hidden_dim, rng=rng)
        self.out = Linear(hidden_dim, 1, rng=rng)

    def forward(self, t: Tensor, cond: Optional[Tensor] = None) -> Tensor:
        batch = t.shape[0]
        # Block embeddings do not depend on the recurrence: compute them
        # up front so their cell input projections can be batched.
        steps: List[Tensor] = []
        for block, embed in zip(self.blocks, self.embeds):
            part = t[:, block.start:block.stop]
            if cond is not None:
                part = concat([part, cond], axis=1)
            steps.append(embed(part, activation="tanh"))
        h, c = self.cell.initial_state(batch)
        for x_proj in self.cell.project_steps(steps):
            h, c = self.cell.step_projected(x_proj, (h, c))
        return self.out(h)
