"""Minibatch samplers (the "Sampler" box of paper Figure 2).

``RandomSampler`` draws uniform minibatches — the default GAN protocol.
``LabelAwareSampler`` draws minibatches conditioned on a given label so
minority labels get fair training opportunities (§5.3, CTrain).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class RandomSampler:
    """Uniform minibatch sampling over rows of ``data``."""

    def __init__(self, data: np.ndarray, labels: Optional[np.ndarray] = None,
                 rng: Optional[np.random.Generator] = None):
        self.data = data
        self.labels = labels
        self.rng = rng if rng is not None else np.random.default_rng()
        if labels is not None and len(labels) != len(data):
            raise ValueError("labels must align with data")

    def batch(self, m: int) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        idx = self.rng.integers(0, len(self.data), size=m)
        batch = self.data[idx]
        label_batch = self.labels[idx] if self.labels is not None else None
        return batch, label_batch


class LabelAwareSampler:
    """Per-label minibatch sampling (paper Algorithm 3).

    Every label of the real data keeps its own index pool; a batch for
    label ``y`` is drawn only from records carrying ``y``.
    """

    def __init__(self, data: np.ndarray, labels: np.ndarray,
                 rng: Optional[np.random.Generator] = None):
        if labels is None:
            raise ValueError("label-aware sampling requires labels")
        if len(labels) != len(data):
            raise ValueError("labels must align with data")
        self.data = data
        self.labels = np.asarray(labels, dtype=np.int64)
        self.rng = rng if rng is not None else np.random.default_rng()
        self._pools = {}
        for label in np.unique(self.labels):
            self._pools[int(label)] = np.nonzero(self.labels == label)[0]

    @property
    def label_domain(self):
        return sorted(self._pools)

    def batch_for_label(self, label: int, m: int) -> np.ndarray:
        pool = self._pools.get(int(label))
        if pool is None or len(pool) == 0:
            raise KeyError(f"no records with label {label}")
        idx = self.rng.choice(pool, size=m, replace=True)
        return self.data[idx]

    def label_frequencies(self) -> np.ndarray:
        """Empirical label distribution of the real data."""
        n_labels = max(self._pools) + 1
        freq = np.zeros(n_labels)
        for label, pool in self._pools.items():
            freq[label] = len(pool)
        return freq / freq.sum()
