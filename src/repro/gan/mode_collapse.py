"""Mode-collapse diagnostics (paper §5.2).

When the generator collapses it emits nearly duplicated samples
regardless of the input noise; the synthetic table then has many rows
sharing most attribute values and utility craters.  These helpers
quantify that: duplicate rate after rounding, and mean pairwise distance
of a sample subset.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def duplicate_rate(samples: np.ndarray, decimals: int = 2) -> float:
    """Fraction of rows that duplicate an earlier row (after rounding)."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        samples = samples.reshape(len(samples), -1)
    if len(samples) == 0:
        return 0.0
    rounded = np.round(samples, decimals=decimals)
    unique = np.unique(rounded, axis=0)
    return 1.0 - len(unique) / len(samples)


def mean_pairwise_distance(samples: np.ndarray, max_rows: int = 200,
                           rng: Optional[np.random.Generator] = None
                           ) -> float:
    """Mean Euclidean distance among a row subsample (diversity proxy)."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        samples = samples.reshape(len(samples), -1)
    if len(samples) < 2:
        return 0.0
    if len(samples) > max_rows:
        rng = rng if rng is not None else np.random.default_rng(0)
        samples = samples[rng.choice(len(samples), max_rows, replace=False)]
    diffs = samples[:, None, :] - samples[None, :, :]
    dists = np.sqrt((diffs ** 2).sum(axis=2))
    n = len(samples)
    return float(dists.sum() / (n * (n - 1)))


def is_collapsed(samples: np.ndarray, duplicate_threshold: float = 0.8,
                 decimals: int = 2) -> bool:
    """Heuristic collapse detector: most rows are (near-)duplicates."""
    return duplicate_rate(samples, decimals=decimals) >= duplicate_threshold
