"""End-to-end GAN synthesizer: the unified framework of paper Figure 2.

:class:`GANSynthesizer` drives the three phases:

I.   data transformation (vector or matrix form per the design config);
II.  adversarial training (one of VTrain / WTrain / CTrain / DPTrain),
     producing one generator snapshot per epoch for model selection;
III. synthetic data generation — noise (plus sampled label conditions)
     through the trained generator, then the inverse transformation.

It implements the unified :class:`repro.api.Synthesizer` contract
(``fit`` / ``sample`` / ``sample_iter`` / ``save`` / ``load``) and is
registered under the name ``"gan"``.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..api.base import Synthesizer, prefixed, unprefixed
from ..api.registry import register
from ..api.seeding import substream
from ..core.design_space import DesignConfig
from ..datasets.schema import Table
from ..errors import ConfigError, TrainingError
from ..nn import Module, Tensor, get_default_dtype, no_grad
from ..transform import MatrixTransformer, RecordTransformer
from ..transform.record import transformer_from_state
from .cnn import CNNDiscriminator, CNNGenerator, DEFAULT_SIDE
from .lstm import LSTMDiscriminator, LSTMGenerator
from .mlp import MLPDiscriminator, MLPGenerator
from .training import EpochRecord, TrainResult, make_trainer


@register("gan")
class GANSynthesizer(Synthesizer):
    """GAN-based relational data synthesizer.

    Parameters
    ----------
    config:
        Point in the design space (defaults to the paper's recommended
        MLP + one-hot + GMM + vanilla training).
    epochs, iterations_per_epoch:
        The paper divides training into 10 epochs and snapshots the
        generator after each for validation-based selection.
    keep_snapshots:
        When False, only the final epoch deep-copies the generator
        state (the others record ``snapshot=None``), cutting sweep
        memory by ``epochs``x generator size.  Leave True (the default)
        whenever validation-based snapshot selection will run.
    """

    supports_conditioning = True
    #: Streaming via a seeded replay reservoir: ``partial_fit`` buffers
    #: a bounded uniform row sample plus running transformer statistics;
    #: finalize retrains on the reservoir (bounded drift, not exact).
    supports_partial_fit = True

    def __init__(self, config: Optional[DesignConfig] = None,
                 epochs: int = 10, iterations_per_epoch: int = 40,
                 keep_snapshots: bool = True, seed: int = 0,
                 reservoir_rows: int = 8192):
        super().__init__(seed=seed)
        config = config if config is not None else DesignConfig()
        # Streaming chunk size: large enough that per-chunk python
        # dispatch amortizes against the generator GEMMs, small enough
        # that intermediates stay cache-resident.  The CNN generator's
        # fold buffers blow past L2 earlier than the vector-form models
        # (measured: 2048 beats 4096 by ~1.6x on the DCGAN stack).
        self.default_sample_batch = 2048 if config.generator == "cnn" \
            else 4096
        self.config = config
        self.epochs = epochs
        self.iterations_per_epoch = iterations_per_epoch
        self.keep_snapshots = bool(keep_snapshots)
        self.generator: Optional[Module] = None
        self.discriminator: Optional[Module] = None
        self.transformer = None
        self.train_result: Optional[TrainResult] = None
        self._label_freq: Optional[np.ndarray] = None
        self._n_labels = 0
        # Conditioning spec: "none" | "label" (one-hot of the label
        # attribute, the paper's CGAN) | "context" (arbitrary per-row
        # float matrices, e.g. relational parent contexts).
        self._cond_kind = "none"
        self._cond_dim = 0
        self.reservoir_rows = int(reservoir_rows)
        self._reservoir = None
        self._stream_transformer = None

    # ------------------------------------------------------------------
    # Phase I + II
    # ------------------------------------------------------------------
    def fit(self, table: Table, callbacks=None, conditions=None,
            epoch_callback: Optional[Callable[[EpochRecord], None]] = None
            ) -> "GANSynthesizer":
        """Transform ``table`` and adversarially train the generator.

        ``epoch_callback`` is the legacy single-callable spelling of
        ``callbacks``; both receive per-epoch :class:`EpochRecord`\\ s.
        ``conditions`` switches the synthesizer into *context*
        conditioning: an ``(n, cond_dim)`` float matrix with one row per
        training record (e.g. encoded parent rows in multi-table
        synthesis); sampling then requires a matching matrix.
        """
        if epoch_callback is not None:
            merged = [epoch_callback]
            if callbacks is not None:
                merged = ([callbacks] if callable(callbacks)
                          else list(callbacks)) + merged
            callbacks = merged
        return super().fit(table, callbacks=callbacks, conditions=conditions)

    def _fit(self, table: Table, callbacks, conditions=None) -> None:
        config = self.config
        label_attr = table.schema.label
        if conditions is not None:
            conditions = np.asarray(conditions, dtype=get_default_dtype())
            if conditions.ndim != 2 or conditions.shape[1] == 0:
                raise TrainingError(
                    f"conditions must be a (n, cond_dim) matrix, got "
                    f"shape {conditions.shape}")
            if config.matrix_form:
                raise TrainingError(
                    "context conditioning requires a vector-form "
                    "generator (mlp or lstm), not the CNN pipeline")
            if config.training != "vtrain" or config.is_conditional:
                raise TrainingError(
                    "context conditioning runs on unconditional vtrain "
                    "configs (the context replaces the label condition)")
            self._cond_kind = "context"
            self._cond_dim = int(conditions.shape[1])
            exclude = ()
        elif config.is_conditional:
            if label_attr is None:
                raise TrainingError("conditional synthesis requires a label")
            self._cond_kind = "label"
            self._cond_dim = label_attr.domain_size
            exclude = (label_attr.name,)
        else:
            self._cond_kind = "none"
            self._cond_dim = 0
            exclude = ()
        if config.matrix_form:
            self.transformer = MatrixTransformer(exclude=exclude,
                                                 side=DEFAULT_SIDE)
        else:
            self.transformer = RecordTransformer(
                categorical_encoding=config.categorical_encoding,
                numerical_normalization=config.numerical_normalization,
                gmm_components=config.gmm_components,
                exclude=exclude, rng=self.rng)
        self.transformer.fit(table)
        data = self.transformer.transform(table)
        if self._cond_kind == "none":
            # Seed the streaming state with the training rows (on
            # dedicated substreams, so the fit trajectory itself stays
            # bit-identical): a later partial_fit continues from this
            # table instead of forgetting it.
            self._seed_stream_state(table)
        self._train_transformed(table, data, callbacks, conditions)

    def _train_transformed(self, table: Table, data: np.ndarray,
                           callbacks, conditions=None) -> None:
        """Phase II on an already-transformed table (fit + stream refresh)."""
        config = self.config
        label_attr = table.schema.label
        labels = table.label_codes if label_attr is not None else None
        self._n_labels = label_attr.domain_size if label_attr else 0
        self._label_freq = None
        if labels is not None:
            counts = np.bincount(labels, minlength=self._n_labels)
            self._label_freq = counts / counts.sum()

        self.generator, self.discriminator = self._build_models()
        trainer = make_trainer(config, self.generator, self.discriminator,
                               self.rng,
                               force_conditional=self._cond_kind == "context")
        epoch_callback = None
        if callbacks:
            def epoch_callback(record, _callbacks=tuple(callbacks)):
                for callback in _callbacks:
                    callback(record)
        if self._cond_kind == "context":
            # The sampler's per-row "labels" are indices into the
            # context matrix, so minibatches gather matching rows.
            trainer_labels = np.arange(len(data), dtype=np.int64)
        else:
            trainer_labels = labels
        self.train_result = trainer.train(
            data, trainer_labels, self._n_labels, self.epochs,
            self.iterations_per_epoch, epoch_callback=epoch_callback,
            snapshot_epochs=None if self.keep_snapshots else (),
            conditions=conditions if self._cond_kind == "context" else None)
        self._active_snapshot = len(self.train_result.epochs) - 1

    def _build_models(self):
        config = self.config
        cond_dim = self._cond_dim
        rng = self.rng
        if config.generator == "cnn":
            generator = CNNGenerator(config.z_dim, side=self.transformer.side,
                                     rng=rng)
            discriminator = CNNDiscriminator(
                side=self.transformer.side,
                simplified=config.simplified_discriminator, rng=rng)
            return generator, discriminator

        blocks = self.transformer.blocks
        if config.generator == "mlp":
            generator = MLPGenerator(
                config.z_dim, blocks, hidden_dim=config.hidden_dim,
                n_layers=config.n_layers, cond_dim=cond_dim, rng=rng)
        elif config.generator == "lstm":
            generator = LSTMGenerator(
                config.z_dim, blocks, hidden_dim=config.lstm_hidden,
                lstm_output_dim=config.lstm_output_dim, cond_dim=cond_dim,
                rng=rng)
        else:
            raise TrainingError(f"unknown generator {config.generator!r}")

        disc_kind = config.effective_discriminator
        input_dim = self.transformer.output_dim
        if disc_kind == "mlp":
            discriminator = MLPDiscriminator(
                input_dim, hidden_dim=config.hidden_dim,
                n_layers=config.n_layers, cond_dim=cond_dim,
                simplified=config.simplified_discriminator, rng=rng)
        elif disc_kind == "lstm":
            discriminator = LSTMDiscriminator(
                blocks, hidden_dim=config.lstm_hidden, cond_dim=cond_dim,
                simplified=config.simplified_discriminator, rng=rng)
        else:
            raise TrainingError(f"unknown discriminator {disc_kind!r}")
        return generator, discriminator

    # ------------------------------------------------------------------
    # Streaming (seeded replay reservoir + incremental transformer)
    # ------------------------------------------------------------------
    def _reset_fit_state(self) -> None:
        # Clean-refit contract: conditioning spec, label marginal, and
        # stream buffers from a previous fit never leak into this one.
        self.transformer = None
        self.train_result = None
        self._label_freq = None
        self._n_labels = 0
        self._cond_kind = "none"
        self._cond_dim = 0
        self._reservoir = None
        self._stream_transformer = None

    def _make_stream_transformer(self):
        if self.config.matrix_form:
            return MatrixTransformer(side=DEFAULT_SIDE)
        return RecordTransformer(
            categorical_encoding=self.config.categorical_encoding,
            numerical_normalization=self.config.numerical_normalization,
            gmm_components=self.config.gmm_components,
            rng=substream(self.seed, "stream", "transform"))

    def _seed_stream_state(self, table: Table) -> None:
        from ..stream.reservoir import TableReservoir

        if self._reservoir is None:
            self._reservoir = TableReservoir(
                self.reservoir_rows,
                rng=substream(self.seed, "stream", "reservoir"))
            self._stream_transformer = self._make_stream_transformer()
        self._reservoir.add(table)
        self._stream_transformer.partial_fit(table)

    def _partial_fit(self, table: Table) -> None:
        if self.config.is_conditional or self._cond_kind != "none":
            raise ConfigError(
                "streaming is only supported for unconditional GAN "
                "configs (no label / context conditioning)")
        self._seed_stream_state(table)

    def _finalize_partial(self) -> None:
        if self._reservoir is None or len(self._reservoir) == 0:
            raise TrainingError("no stream chunks ingested")
        # The incremental transformer holds running statistics over
        # *every* row seen (global ranges, grow-only vocabularies); the
        # reservoir holds a bounded uniform row sample.  Retraining on
        # the reservoir under the finalized transformer bounds memory
        # while keeping the encoding consistent with the full stream.
        table = self._reservoir.table()
        self.transformer = self._stream_transformer.finalize()
        data = self.transformer.transform(table)
        self._train_transformed(table, data, [])

    # ------------------------------------------------------------------
    # Snapshots (model selection, paper §6.2)
    # ------------------------------------------------------------------
    @property
    def supports_snapshots(self) -> bool:
        return self.train_result is not None

    @property
    def snapshots(self) -> List[Dict[str, np.ndarray]]:
        if self.train_result is None:
            raise TrainingError("synthesizer has no training history")
        return self.train_result.snapshots

    def _snapshot_module(self) -> Module:
        return self.generator

    def training_curves(self) -> Dict[str, List[float]]:
        if self.train_result is None:
            return {}
        return {"g_loss": [e.g_loss for e in self.train_result.epochs],
                "d_loss": [e.d_loss for e in self.train_result.epochs]}

    # ------------------------------------------------------------------
    # Phase III
    # ------------------------------------------------------------------
    def _sampling_session(self):
        return self._eval_mode_session(self.generator)

    def spawn_sampler(self, worker_id: int = 0) -> "GANSynthesizer":
        """Worker prep (see :meth:`repro.api.Synthesizer.spawn_sampler`).

        Additionally drops the discriminator and the training history:
        a sampling worker only runs the generator, and under forked
        workers every retained snapshot would be duplicated per process
        on first write.
        """
        super().spawn_sampler(worker_id)
        self.discriminator = None
        self.train_result = None
        return self

    def _generate_raw(self, m: int, rng: np.random.Generator,
                      conditions: Optional[np.ndarray] = None
                      ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """One chunk of generator output plus its label conditions.

        Must run inside :meth:`_sampling_session` (the generator is
        assumed to be in eval mode).  Noise and conditions are drawn in
        the engine dtype, skipping a cast per chunk in float32 mode.
        ``conditions`` fixes the conditioning inputs explicitly: label
        codes for a label-conditional config (``None`` draws from the
        training marginal, the legacy behaviour), or a ``(m, cond_dim)``
        context matrix for a context-conditioned fit (required).
        """
        dtype = get_default_dtype()
        if dtype is np.float64:
            z = Tensor(rng.standard_normal((m, self.config.z_dim)))
        else:
            z = Tensor(rng.standard_normal((m, self.config.z_dim),
                                           dtype=dtype))
        cond = None
        labels = None
        if self._cond_kind == "label":
            if conditions is None:
                labels = rng.choice(self._n_labels, size=m,
                                    p=self._label_freq)
            else:
                labels = np.asarray(conditions)
                if labels.ndim != 1:
                    raise ValueError(
                        "label conditions must be a 1-D array of codes")
                labels = labels.astype(np.int64)
                if len(labels) and (labels.min() < 0
                                    or labels.max() >= self._n_labels):
                    raise ValueError(
                        f"label conditions must be codes in "
                        f"[0, {self._n_labels})")
            onehot = np.zeros((m, self._n_labels), dtype=dtype)
            onehot[np.arange(m), labels] = 1.0
            cond = Tensor(onehot)
        elif self._cond_kind == "context":
            if conditions is None:
                raise ValueError(
                    "this synthesizer was fitted with context "
                    "conditioning; sample(n, conditions=...) must supply "
                    "one context row per record")
            context = np.asarray(conditions, dtype=dtype)
            if context.shape != (m, self._cond_dim):
                raise ValueError(
                    f"expected context of shape ({m}, {self._cond_dim}), "
                    f"got {context.shape}")
            cond = Tensor(context)
        elif conditions is not None:
            raise ValueError(
                "this synthesizer was fitted without conditioning; "
                "refit with a conditional config or explicit conditions")
        with no_grad():
            raw = self.generator(z, cond).data
        return raw, labels

    def sample_raw(self, n: int, batch: int = 256,
                   seed: Optional[int] = None) -> np.ndarray:
        """Generate ``n`` raw samples (pre-inverse-transformation)."""
        self._require_fitted()
        rng = self._sampling_rng(seed)
        chunks = []
        self._sampled_labels = []
        remaining = n
        with self._sampling_session():
            while remaining > 0:
                m = min(batch, remaining)
                raw, labels = self._generate_raw(m, rng)
                chunks.append(raw)
                if labels is not None:
                    self._sampled_labels.append(labels)
                remaining -= m
        return np.concatenate(chunks, axis=0)

    def _sample_chunk(self, m: int, rng: np.random.Generator,
                      conditions=None) -> Table:
        raw, labels = self._generate_raw(m, rng, conditions=conditions)
        extra = None
        if labels is not None:
            label_name = self.transformer.exclude[0]
            extra = {label_name: labels}
        return self.transformer.inverse(raw, extra_columns=extra)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _state(self):
        meta = {
            "params": {"config": asdict(self.config), "epochs": self.epochs,
                       "iterations_per_epoch": self.iterations_per_epoch,
                       "keep_snapshots": self.keep_snapshots,
                       "seed": self.seed,
                       "reservoir_rows": self.reservoir_rows},
            "transformer": self.transformer.to_state(),
            "n_labels": self._n_labels,
            "label_freq": (self._label_freq.tolist()
                           if self._label_freq is not None else None),
            "cond_kind": self._cond_kind,
            "cond_dim": self._cond_dim,
            "active_snapshot": self._active_snapshot,
        }
        # Only the active generator is persisted: it is all Phase III
        # needs, and the winning snapshot is active after selection.
        arrays = prefixed("generator", self.generator.state_dict())
        return meta, arrays

    def _load_state(self, state, arrays) -> None:
        self.transformer = transformer_from_state(state["transformer"],
                                                  rng=self.rng)
        self._n_labels = int(state["n_labels"])
        self._label_freq = (np.asarray(state["label_freq"], dtype=np.float64)
                            if state["label_freq"] is not None else None)
        # Saves that predate context conditioning carry no cond spec;
        # reconstruct the label-mode spec from the config.
        default_kind = "label" if self.config.is_conditional else "none"
        self._cond_kind = state.get("cond_kind", default_kind)
        default_dim = self._n_labels if self._cond_kind == "label" else 0
        self._cond_dim = int(state.get("cond_dim", default_dim))
        self.generator, self.discriminator = self._build_models()
        self.generator.load_state_dict(unprefixed("generator", arrays))
        self._active_snapshot = state["active_snapshot"]

    @classmethod
    def _init_kwargs_from_state(cls, params):
        kwargs = dict(params)
        kwargs["config"] = DesignConfig(**kwargs["config"])
        return kwargs
