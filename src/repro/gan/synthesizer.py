"""End-to-end GAN synthesizer: the unified framework of paper Figure 2.

:class:`GANSynthesizer` drives the three phases:

I.   data transformation (vector or matrix form per the design config);
II.  adversarial training (one of VTrain / WTrain / CTrain / DPTrain),
     producing one generator snapshot per epoch for model selection;
III. synthetic data generation — noise (plus sampled label conditions)
     through the trained generator, then the inverse transformation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.design_space import DesignConfig
from ..datasets.schema import Table
from ..errors import TrainingError
from ..nn import Module, Tensor
from ..transform import MatrixTransformer, RecordTransformer
from .cnn import CNNDiscriminator, CNNGenerator, DEFAULT_SIDE
from .lstm import LSTMDiscriminator, LSTMGenerator
from .mlp import MLPDiscriminator, MLPGenerator
from .training import EpochRecord, TrainResult, make_trainer


class GANSynthesizer:
    """GAN-based relational data synthesizer.

    Parameters
    ----------
    config:
        Point in the design space (defaults to the paper's recommended
        MLP + one-hot + GMM + vanilla training).
    epochs, iterations_per_epoch:
        The paper divides training into 10 epochs and snapshots the
        generator after each for validation-based selection.
    """

    def __init__(self, config: Optional[DesignConfig] = None,
                 epochs: int = 10, iterations_per_epoch: int = 40,
                 seed: int = 0):
        self.config = config if config is not None else DesignConfig()
        self.epochs = epochs
        self.iterations_per_epoch = iterations_per_epoch
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.generator: Optional[Module] = None
        self.discriminator: Optional[Module] = None
        self.transformer = None
        self.train_result: Optional[TrainResult] = None
        self._label_freq: Optional[np.ndarray] = None
        self._n_labels = 0
        self._active_snapshot: Optional[int] = None

    # ------------------------------------------------------------------
    # Phase I + II
    # ------------------------------------------------------------------
    def fit(self, table: Table,
            epoch_callback: Optional[Callable[[EpochRecord], None]] = None
            ) -> "GANSynthesizer":
        """Transform ``table`` and adversarially train the generator."""
        config = self.config
        label_attr = table.schema.label
        if config.is_conditional and label_attr is None:
            raise TrainingError("conditional synthesis requires a label")

        exclude = (label_attr.name,) if (config.is_conditional
                                         and label_attr is not None) else ()
        if config.matrix_form:
            self.transformer = MatrixTransformer(exclude=exclude,
                                                 side=DEFAULT_SIDE)
        else:
            self.transformer = RecordTransformer(
                categorical_encoding=config.categorical_encoding,
                numerical_normalization=config.numerical_normalization,
                gmm_components=config.gmm_components,
                exclude=exclude, rng=self.rng)
        self.transformer.fit(table)
        data = self.transformer.transform(table)

        labels = table.label_codes if label_attr is not None else None
        self._n_labels = label_attr.domain_size if label_attr else 0
        if labels is not None:
            counts = np.bincount(labels, minlength=self._n_labels)
            self._label_freq = counts / counts.sum()

        self.generator, self.discriminator = self._build_models()
        trainer = make_trainer(config, self.generator, self.discriminator,
                               self.rng)
        self.train_result = trainer.train(
            data, labels, self._n_labels, self.epochs,
            self.iterations_per_epoch, epoch_callback=epoch_callback)
        self._active_snapshot = len(self.train_result.epochs) - 1
        return self

    def _build_models(self):
        config = self.config
        cond_dim = self._n_labels if config.is_conditional else 0
        rng = self.rng
        if config.generator == "cnn":
            generator = CNNGenerator(config.z_dim, side=self.transformer.side,
                                     rng=rng)
            discriminator = CNNDiscriminator(
                side=self.transformer.side,
                simplified=config.simplified_discriminator, rng=rng)
            return generator, discriminator

        blocks = self.transformer.blocks
        if config.generator == "mlp":
            generator = MLPGenerator(
                config.z_dim, blocks, hidden_dim=config.hidden_dim,
                n_layers=config.n_layers, cond_dim=cond_dim, rng=rng)
        elif config.generator == "lstm":
            generator = LSTMGenerator(
                config.z_dim, blocks, hidden_dim=config.lstm_hidden,
                lstm_output_dim=config.lstm_output_dim, cond_dim=cond_dim,
                rng=rng)
        else:
            raise TrainingError(f"unknown generator {config.generator!r}")

        disc_kind = config.effective_discriminator
        input_dim = self.transformer.output_dim
        if disc_kind == "mlp":
            discriminator = MLPDiscriminator(
                input_dim, hidden_dim=config.hidden_dim,
                n_layers=config.n_layers, cond_dim=cond_dim,
                simplified=config.simplified_discriminator, rng=rng)
        elif disc_kind == "lstm":
            discriminator = LSTMDiscriminator(
                blocks, hidden_dim=config.lstm_hidden, cond_dim=cond_dim,
                simplified=config.simplified_discriminator, rng=rng)
        else:
            raise TrainingError(f"unknown discriminator {disc_kind!r}")
        return generator, discriminator

    # ------------------------------------------------------------------
    # Snapshots (model selection, paper §6.2)
    # ------------------------------------------------------------------
    @property
    def snapshots(self) -> List[Dict[str, np.ndarray]]:
        if self.train_result is None:
            raise TrainingError("synthesizer is not fitted")
        return self.train_result.snapshots

    def use_snapshot(self, index: int) -> None:
        """Activate the generator snapshot taken after epoch ``index``."""
        snapshots = self.snapshots
        if not -len(snapshots) <= index < len(snapshots):
            raise IndexError(f"no snapshot {index}")
        self.generator.load_state_dict(snapshots[index])
        self._active_snapshot = index % len(snapshots)

    @property
    def active_snapshot(self) -> Optional[int]:
        return self._active_snapshot

    # ------------------------------------------------------------------
    # Phase III
    # ------------------------------------------------------------------
    def sample_raw(self, n: int, batch: int = 256) -> np.ndarray:
        """Generate ``n`` raw samples (pre-inverse-transformation)."""
        if self.generator is None:
            raise TrainingError("synthesizer is not fitted")
        self.generator.eval()
        chunks = []
        self._sampled_labels = []
        remaining = n
        while remaining > 0:
            m = min(batch, remaining)
            z = Tensor(self.rng.standard_normal((m, self.config.z_dim)))
            cond = None
            if self.config.is_conditional:
                labels = self.rng.choice(self._n_labels, size=m,
                                         p=self._label_freq)
                onehot = np.zeros((m, self._n_labels))
                onehot[np.arange(m), labels] = 1.0
                cond = Tensor(onehot)
                self._sampled_labels.append(labels)
            chunks.append(self.generator(z, cond).data)
            remaining -= m
        self.generator.train()
        return np.concatenate(chunks, axis=0)

    def sample(self, n: int, batch: int = 256) -> Table:
        """Generate a synthetic table of ``n`` records."""
        raw = self.sample_raw(n, batch=batch)
        extra = None
        if self.config.is_conditional:
            label_name = self.transformer.exclude[0]
            extra = {label_name: np.concatenate(self._sampled_labels)}
        return self.transformer.inverse(raw, extra_columns=extra)
