"""Numerical attribute normalizations: simple min-max and GMM-based.

Simple normalization maps into ``[-1, 1]`` (tanh head, case C1).  GMM
("mode-specific") normalization represents a value as the pair
``(v_gmm, onehot(mode))`` (tanh + softmax head, case C2), exactly as in
paper §4 / Xu & Veeramachaneni's TGAN.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import TransformError
from .base import AttributeTransformer, HEAD_TANH, HEAD_TANH_SOFTMAX
from .gmm import GaussianMixture1D


class SimpleNormalizer(AttributeTransformer):
    """Min-max normalization into [-1, 1]: ``-1 + 2 (v - min)/(max - min)``."""

    head = HEAD_TANH
    width = 1
    discrete_block = False
    state_kind = "simple"

    supports_partial_fit = True

    def __init__(self, integral: bool = False):
        self.integral = integral
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.n_seen = 0
        self._mean = 0.0
        self._m2 = 0.0

    def fit(self, values: np.ndarray) -> "SimpleNormalizer":
        self.reset()
        return self.partial_fit(values).finalize_partial()

    def partial_fit(self, values: np.ndarray) -> "SimpleNormalizer":
        """Fold a chunk into the running range and moments.

        Min/max are associative, so chunked fitting matches a one-shot
        ``fit`` on the concatenated column exactly; the mean/variance
        use Welford's merge and are exposed via :meth:`moments`.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return self
        low, high = float(values.min()), float(values.max())
        self.min = low if self.min is None else min(self.min, low)
        self.max = high if self.max is None else max(self.max, high)
        m = int(values.size)
        mean = float(values.mean())
        m2 = float(((values - mean) ** 2).sum())
        if self.n_seen == 0:
            self._mean, self._m2 = mean, m2
        else:
            delta = mean - self._mean
            total = self.n_seen + m
            self._mean += delta * m / total
            self._m2 += m2 + delta * delta * self.n_seen * m / total
        self.n_seen += m
        return self

    def finalize_partial(self) -> "SimpleNormalizer":
        if self.min is None:
            raise TransformError("cannot fit normalizer on empty column")
        return self

    def reset(self) -> "SimpleNormalizer":
        self.min = None
        self.max = None
        self.n_seen = 0
        self._mean = 0.0
        self._m2 = 0.0
        return self

    def moments(self) -> tuple:
        """Running ``(mean, variance)`` over everything seen so far."""
        if self.n_seen == 0:
            raise TransformError("normalizer is not fitted")
        return self._mean, self._m2 / self.n_seen

    def _range(self) -> float:
        if self.min is None:
            raise TransformError("normalizer is not fitted")
        return max(self.max - self.min, 1e-12)

    def transform(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        normed = -1.0 + 2.0 * (values - self.min) / self._range()
        return normed[:, None]

    def inverse(self, block: np.ndarray) -> np.ndarray:
        block = self._require_block(block)
        clipped = np.clip(block[:, 0], -1.0, 1.0)
        values = self.min + (clipped + 1.0) / 2.0 * self._range()
        if self.integral:
            values = np.rint(values)
        return values

    def inverse_spec(self) -> dict:
        if self.min is None:
            raise TransformError("normalizer is not fitted")
        return {"kind": "simple", "min": self.min, "range": self._range(),
                "integral": self.integral}

    def to_state(self) -> dict:
        if self.min is None:
            raise TransformError("normalizer is not fitted")
        return {"kind": self.state_kind, "integral": self.integral,
                "min": self.min, "max": self.max}

    @classmethod
    def from_state(cls, state: dict) -> "SimpleNormalizer":
        normalizer = cls(integral=bool(state["integral"]))
        normalizer.min = float(state["min"])
        normalizer.max = float(state["max"])
        return normalizer


class GMMNormalizer(AttributeTransformer):
    """Mode-specific normalization via a 1-D Gaussian mixture.

    ``v -> (v_gmm, onehot(k))`` where ``k = argmax_i P(i | v)`` and
    ``v_gmm = (v - mu_k) / (2 sigma_k)`` clipped to ``[-1, 1]``.
    """

    head = HEAD_TANH_SOFTMAX
    discrete_block = True
    state_kind = "gmm"

    supports_partial_fit = True

    #: Default value-reservoir capacity for the streaming refit path.
    DEFAULT_RESERVOIR = 4096

    def __init__(self, n_components: int = 5, integral: bool = False,
                 rng: Optional[np.random.Generator] = None,
                 reservoir_size: int = DEFAULT_RESERVOIR):
        self.integral = integral
        self.n_components = n_components
        self.rng = rng if rng is not None else np.random.default_rng()
        self.gmm: Optional[GaussianMixture1D] = None
        self.width = 1 + n_components
        self.reservoir_size = int(reservoir_size)
        self._initial_components = n_components
        self._reservoir = None

    def fit(self, values: np.ndarray) -> "GMMNormalizer":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise TransformError("cannot fit normalizer on empty column")
        self.gmm = GaussianMixture1D(n_components=self.n_components).fit(
            values, rng=self.rng)
        # The GMM may collapse to fewer components on low-cardinality data.
        self.n_components = self.gmm.n_components
        self.width = 1 + self.n_components
        return self

    def partial_fit(self, values: np.ndarray) -> "GMMNormalizer":
        """Buffer a bounded uniform sample of the stream for refitting.

        EM over a mixture is not mergeable chunk-by-chunk, so the
        streaming path keeps a seeded reservoir of raw values and
        :meth:`finalize_partial` refits the mixture on it — bounded
        memory, approximate (bounded-drift) statistics.
        """
        from ..stream.reservoir import Reservoir

        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return self
        if self._reservoir is None:
            self._reservoir = Reservoir(self.reservoir_size, rng=self.rng)
        self._reservoir.add(values)
        return self

    def finalize_partial(self) -> "GMMNormalizer":
        if self._reservoir is None:
            raise TransformError("cannot fit normalizer on empty column")
        self.n_components = self._initial_components
        return self.fit(self._reservoir.values())

    def reset(self) -> "GMMNormalizer":
        self.gmm = None
        self.n_components = self._initial_components
        self.width = 1 + self.n_components
        self._reservoir = None
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.gmm is None:
            raise TransformError("normalizer is not fitted")
        values = np.asarray(values, dtype=np.float64)
        modes = self.gmm.assign(values)
        mu = self.gmm.means[modes]
        sigma = self.gmm.stds[modes]
        v_gmm = np.clip((values - mu) / (2.0 * sigma), -1.0, 1.0)
        onehot = np.zeros((len(values), self.n_components))
        onehot[np.arange(len(values)), modes] = 1.0
        return np.concatenate([v_gmm[:, None], onehot], axis=1)

    def inverse(self, block: np.ndarray) -> np.ndarray:
        if self.gmm is None:
            raise TransformError("normalizer is not fitted")
        block = self._require_block(block)
        v_gmm = np.clip(block[:, 0], -1.0, 1.0)
        modes = block[:, 1:].argmax(axis=1)
        values = v_gmm * 2.0 * self.gmm.stds[modes] + self.gmm.means[modes]
        if self.integral:
            values = np.rint(values)
        return values

    def inverse_spec(self) -> dict:
        if self.gmm is None:
            raise TransformError("normalizer is not fitted")
        means, stds = self.gmm.mode_arrays()
        return {"kind": "gmm", "means": means, "stds": stds,
                "integral": self.integral}

    def to_state(self) -> dict:
        if self.gmm is None:
            raise TransformError("normalizer is not fitted")
        return {"kind": self.state_kind, "integral": self.integral,
                "gmm": self.gmm.to_state()}

    @classmethod
    def from_state(cls, state: dict) -> "GMMNormalizer":
        gmm = GaussianMixture1D.from_state(state["gmm"])
        normalizer = cls(n_components=gmm.n_components,
                         integral=bool(state["integral"]))
        normalizer.gmm = gmm
        normalizer.width = 1 + gmm.n_components
        return normalizer
