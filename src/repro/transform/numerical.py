"""Numerical attribute normalizations: simple min-max and GMM-based.

Simple normalization maps into ``[-1, 1]`` (tanh head, case C1).  GMM
("mode-specific") normalization represents a value as the pair
``(v_gmm, onehot(mode))`` (tanh + softmax head, case C2), exactly as in
paper §4 / Xu & Veeramachaneni's TGAN.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import TransformError
from .base import AttributeTransformer, HEAD_TANH, HEAD_TANH_SOFTMAX
from .gmm import GaussianMixture1D


class SimpleNormalizer(AttributeTransformer):
    """Min-max normalization into [-1, 1]: ``-1 + 2 (v - min)/(max - min)``."""

    head = HEAD_TANH
    width = 1
    discrete_block = False
    state_kind = "simple"

    def __init__(self, integral: bool = False):
        self.integral = integral
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def fit(self, values: np.ndarray) -> "SimpleNormalizer":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise TransformError("cannot fit normalizer on empty column")
        self.min = float(values.min())
        self.max = float(values.max())
        return self

    def _range(self) -> float:
        if self.min is None:
            raise TransformError("normalizer is not fitted")
        return max(self.max - self.min, 1e-12)

    def transform(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        normed = -1.0 + 2.0 * (values - self.min) / self._range()
        return normed[:, None]

    def inverse(self, block: np.ndarray) -> np.ndarray:
        block = self._require_block(block)
        clipped = np.clip(block[:, 0], -1.0, 1.0)
        values = self.min + (clipped + 1.0) / 2.0 * self._range()
        if self.integral:
            values = np.rint(values)
        return values

    def inverse_spec(self) -> dict:
        if self.min is None:
            raise TransformError("normalizer is not fitted")
        return {"kind": "simple", "min": self.min, "range": self._range(),
                "integral": self.integral}

    def to_state(self) -> dict:
        if self.min is None:
            raise TransformError("normalizer is not fitted")
        return {"kind": self.state_kind, "integral": self.integral,
                "min": self.min, "max": self.max}

    @classmethod
    def from_state(cls, state: dict) -> "SimpleNormalizer":
        normalizer = cls(integral=bool(state["integral"]))
        normalizer.min = float(state["min"])
        normalizer.max = float(state["max"])
        return normalizer


class GMMNormalizer(AttributeTransformer):
    """Mode-specific normalization via a 1-D Gaussian mixture.

    ``v -> (v_gmm, onehot(k))`` where ``k = argmax_i P(i | v)`` and
    ``v_gmm = (v - mu_k) / (2 sigma_k)`` clipped to ``[-1, 1]``.
    """

    head = HEAD_TANH_SOFTMAX
    discrete_block = True
    state_kind = "gmm"

    def __init__(self, n_components: int = 5, integral: bool = False,
                 rng: Optional[np.random.Generator] = None):
        self.integral = integral
        self.n_components = n_components
        self.rng = rng if rng is not None else np.random.default_rng()
        self.gmm: Optional[GaussianMixture1D] = None
        self.width = 1 + n_components

    def fit(self, values: np.ndarray) -> "GMMNormalizer":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise TransformError("cannot fit normalizer on empty column")
        self.gmm = GaussianMixture1D(n_components=self.n_components).fit(
            values, rng=self.rng)
        # The GMM may collapse to fewer components on low-cardinality data.
        self.n_components = self.gmm.n_components
        self.width = 1 + self.n_components
        return self

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.gmm is None:
            raise TransformError("normalizer is not fitted")
        values = np.asarray(values, dtype=np.float64)
        modes = self.gmm.assign(values)
        mu = self.gmm.means[modes]
        sigma = self.gmm.stds[modes]
        v_gmm = np.clip((values - mu) / (2.0 * sigma), -1.0, 1.0)
        onehot = np.zeros((len(values), self.n_components))
        onehot[np.arange(len(values)), modes] = 1.0
        return np.concatenate([v_gmm[:, None], onehot], axis=1)

    def inverse(self, block: np.ndarray) -> np.ndarray:
        if self.gmm is None:
            raise TransformError("normalizer is not fitted")
        block = self._require_block(block)
        v_gmm = np.clip(block[:, 0], -1.0, 1.0)
        modes = block[:, 1:].argmax(axis=1)
        values = v_gmm * 2.0 * self.gmm.stds[modes] + self.gmm.means[modes]
        if self.integral:
            values = np.rint(values)
        return values

    def inverse_spec(self) -> dict:
        if self.gmm is None:
            raise TransformError("normalizer is not fitted")
        means, stds = self.gmm.mode_arrays()
        return {"kind": "gmm", "means": means, "stds": stds,
                "integral": self.integral}

    def to_state(self) -> dict:
        if self.gmm is None:
            raise TransformError("normalizer is not fitted")
        return {"kind": self.state_kind, "integral": self.integral,
                "gmm": self.gmm.to_state()}

    @classmethod
    def from_state(cls, state: dict) -> "GMMNormalizer":
        gmm = GaussianMixture1D.from_state(state["gmm"])
        normalizer = cls(n_components=gmm.n_components,
                         integral=bool(state["integral"]))
        normalizer.gmm = gmm
        normalizer.width = 1 + gmm.n_components
        return normalizer
