"""Phase I data transformation (paper §4): records <-> numeric samples."""

from .base import (
    AttributeTransformer, BlockSpec, attribute_transformer_from_state,
    HEAD_TANH, HEAD_TANH_SOFTMAX, HEAD_SOFTMAX, HEAD_SIGMOID,
)
from .categorical import OneHotEncoder, OrdinalEncoder, TanhOrdinalEncoder
from .numerical import GMMNormalizer, SimpleNormalizer
from .gmm import GaussianMixture1D
from .record import (
    RecordTransformer, MatrixTransformer, transformer_from_state,
    ORDINAL, ONEHOT, SIMPLE, GMM,
)

__all__ = [
    "AttributeTransformer", "BlockSpec", "attribute_transformer_from_state",
    "HEAD_TANH", "HEAD_TANH_SOFTMAX", "HEAD_SOFTMAX", "HEAD_SIGMOID",
    "OneHotEncoder", "OrdinalEncoder", "TanhOrdinalEncoder",
    "GMMNormalizer", "SimpleNormalizer", "GaussianMixture1D",
    "RecordTransformer", "MatrixTransformer", "transformer_from_state",
    "ORDINAL", "ONEHOT", "SIMPLE", "GMM",
]
