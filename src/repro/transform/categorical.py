"""Categorical attribute encodings: ordinal and one-hot (paper §4)."""

from __future__ import annotations

import numpy as np

from ..errors import TransformError
from .base import AttributeTransformer, HEAD_SIGMOID, HEAD_SOFTMAX, HEAD_TANH


class OrdinalEncoder(AttributeTransformer):
    """Map category code ``k`` of a K-category attribute to ``k / (K-1)``.

    The paper assigns each category an ordinal integer in ``[0, K-1]``;
    for the neural input we scale that into ``[0, 1]`` to match the
    sigmoid output head (case C4).  Decoding rounds to the nearest code.
    """

    head = HEAD_SIGMOID
    width = 1
    discrete_block = False
    state_kind = "ordinal"

    supports_partial_fit = True

    def __init__(self):
        self.domain_size: int | None = None

    def fit(self, values: np.ndarray) -> "OrdinalEncoder":
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            raise TransformError("cannot fit encoder on empty column")
        self.domain_size = int(values.max()) + 1
        return self

    def partial_fit(self, values: np.ndarray) -> "OrdinalEncoder":
        """Grow the domain to cover the chunk (codes never shrink)."""
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return self
        seen = int(values.max()) + 1
        self.domain_size = seen if self.domain_size is None \
            else max(self.domain_size, seen)
        return self

    def finalize_partial(self) -> "OrdinalEncoder":
        if self.domain_size is None:
            raise TransformError("cannot fit encoder on empty column")
        return self

    def reset(self) -> "OrdinalEncoder":
        self.domain_size = None
        return self

    def to_state(self) -> dict:
        return {"kind": self.state_kind, "domain_size": self.domain_size}

    @classmethod
    def from_state(cls, state: dict):
        encoder = cls()
        encoder.domain_size = int(state["domain_size"])
        return encoder

    def inverse_spec(self) -> dict:
        return {"kind": self.state_kind, "scale": self._scale(),
                "domain_size": self.domain_size}

    def _scale(self) -> float:
        if self.domain_size is None:
            raise TransformError("encoder is not fitted")
        return float(max(self.domain_size - 1, 1))

    def transform(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return (values / self._scale())[:, None]

    def inverse(self, block: np.ndarray) -> np.ndarray:
        block = self._require_block(block)
        codes = np.rint(block[:, 0] * self._scale()).astype(np.int64)
        return np.clip(codes, 0, self.domain_size - 1)


class TanhOrdinalEncoder(OrdinalEncoder):
    """Ordinal encoding scaled into [-1, 1] for tanh-output models.

    Used by the matrix-form (CNN) pipeline, whose single final activation
    is tanh and therefore needs every cell in [-1, 1].
    """

    head = HEAD_TANH
    state_kind = "tanh_ordinal"

    def transform(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        return (-1.0 + 2.0 * values / self._scale())[:, None]

    def inverse(self, block: np.ndarray) -> np.ndarray:
        block = self._require_block(block)
        unit = (np.clip(block[:, 0], -1.0, 1.0) + 1.0) / 2.0
        codes = np.rint(unit * self._scale()).astype(np.int64)
        return np.clip(codes, 0, self.domain_size - 1)


class OneHotEncoder(AttributeTransformer):
    """K-wide one-hot encoding; decoding takes the argmax (case C3)."""

    head = HEAD_SOFTMAX
    discrete_block = True
    state_kind = "onehot"

    supports_partial_fit = True

    def __init__(self):
        self.domain_size: int | None = None
        self.width = 0

    def fit(self, values: np.ndarray) -> "OneHotEncoder":
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            raise TransformError("cannot fit encoder on empty column")
        self.domain_size = int(values.max()) + 1
        self.width = self.domain_size
        return self

    def partial_fit(self, values: np.ndarray) -> "OneHotEncoder":
        """Grow the one-hot width to cover the chunk (grow-only vocab)."""
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return self
        seen = int(values.max()) + 1
        self.domain_size = seen if self.domain_size is None \
            else max(self.domain_size, seen)
        self.width = self.domain_size
        return self

    def finalize_partial(self) -> "OneHotEncoder":
        if self.domain_size is None:
            raise TransformError("cannot fit encoder on empty column")
        return self

    def reset(self) -> "OneHotEncoder":
        self.domain_size = None
        self.width = 0
        return self

    def to_state(self) -> dict:
        return {"kind": self.state_kind, "domain_size": self.domain_size}

    @classmethod
    def from_state(cls, state: dict) -> "OneHotEncoder":
        encoder = cls()
        encoder.domain_size = int(state["domain_size"])
        encoder.width = encoder.domain_size
        return encoder

    def inverse_spec(self) -> dict:
        if self.domain_size is None:
            raise TransformError("encoder is not fitted")
        return {"kind": self.state_kind, "width": self.width}

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.domain_size is None:
            raise TransformError("encoder is not fitted")
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= self.domain_size):
            raise TransformError("category code outside fitted domain")
        out = np.zeros((len(values), self.domain_size))
        out[np.arange(len(values)), values] = 1.0
        return out

    def inverse(self, block: np.ndarray) -> np.ndarray:
        block = self._require_block(block)
        return block.argmax(axis=1).astype(np.int64)
