"""Record-level transformation: combine attribute blocks into samples.

Implements the paper's two sample forms (§4):

* vector form — concatenation of per-attribute blocks, for MLP/LSTM;
* matrix form — one value per attribute, zero-padded into a square
  matrix, for the CNN pipeline (only ordinal encoding + simple
  normalization are compatible, as the paper notes).

Both directions are implemented, so synthetic samples convert back into
records (Phase III).

Phase III is the sampling hot path: both transformers precompute a
:class:`CompiledInverse` at fit/load time, so decoding a sample chunk
is a handful of whole-matrix operations (one clip+affine over all
simple-normalized columns, one padded gather+argmax over all one-hot /
GMM-mode blocks, ...) instead of per-attribute numpy calls re-issued
for every chunk of a streaming ``sample_iter``.  The compiled path is
bit-identical to the per-block reference (``inverse(...,
vectorized=False)``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..datasets.schema import Schema, Table, schema_from_dict, schema_to_dict
from ..errors import TransformError
from .base import AttributeTransformer, BlockSpec, attribute_transformer_from_state
from .categorical import OneHotEncoder, OrdinalEncoder, TanhOrdinalEncoder
from .numerical import GMMNormalizer, SimpleNormalizer

ORDINAL = "ordinal"
ONEHOT = "onehot"
SIMPLE = "simple"
GMM = "gmm"


class CompiledInverse:
    """Whole-matrix inverse transform for a fitted block layout.

    Decoding one sample chunk used to walk the attribute blocks and call
    each :meth:`AttributeTransformer.inverse` in turn — dozens of small
    numpy calls per chunk, re-dispatched for every chunk of a streaming
    ``sample_iter``.  This compiler gathers every block's decode
    parameters **once** (at fit/load time) into flat arrays grouped by
    decode kind, so applying the inverse is a handful of whole-matrix
    operations regardless of attribute count:

    * ``simple``-normalized columns: one clip + one affine map;
    * ``ordinal`` / ``tanh_ordinal`` columns: one round + clip each;
    * one-hot blocks: a single padded gather + one ``argmax`` over all
      blocks at once (padding repeats each block's first column, which
      can never steal a first-occurrence argmax from a real column);
    * GMM (mode-specific) blocks: the same padded ``argmax`` for the
      mode, then one gather over the stacked per-mode means/stds.

    Every kind evaluates the exact elementwise expressions of the
    per-block reference ``inverse`` methods, so decoded columns are
    bit-identical to the legacy path.
    """

    def __init__(self, blocks: Sequence[BlockSpec], transformers):
        simple = []     # (name, col, min, range, integral)
        rounded = []    # (name, col, scale, domain, tanh-scaled?)
        onehot = []     # (name, start, width)
        gmm = []        # (name, start, width, means, stds, integral)
        for block in blocks:
            spec = transformers[block.name].inverse_spec()
            kind = spec["kind"]
            if kind == "simple":
                simple.append((block.name, block.start, spec["min"],
                               spec["range"], spec["integral"]))
            elif kind in ("ordinal", "tanh_ordinal"):
                rounded.append((block.name, block.start, spec["scale"],
                                spec["domain_size"],
                                kind == "tanh_ordinal"))
            elif kind == "onehot":
                onehot.append((block.name, block.start, spec["width"]))
            elif kind == "gmm":
                gmm.append((block.name, block.start, block.width - 1,
                            spec["means"], spec["stds"], spec["integral"]))
            else:
                raise TransformError(
                    f"unknown inverse kind {kind!r} for {block.name!r}")
        self._simple = self._pack_simple(simple)
        self._rounded = self._pack_rounded(rounded)
        self._onehot = self._pack_argmax(
            [(name, start, width) for name, start, width in onehot])
        self._gmm = self._pack_gmm(gmm)

    @staticmethod
    def _pack_simple(simple):
        if not simple:
            return None
        names, cols, mins, ranges, integral = zip(*simple)
        return (list(names), np.asarray(cols), np.asarray(mins),
                np.asarray(ranges), np.asarray(integral, dtype=bool))

    @staticmethod
    def _pack_rounded(rounded):
        if not rounded:
            return None
        names, cols, scales, domains, tanh = zip(*rounded)
        return (list(names), np.asarray(cols), np.asarray(scales),
                np.asarray(domains, dtype=np.int64),
                np.asarray(tanh, dtype=bool))

    @staticmethod
    def _pack_argmax(blocks):
        """Padded column-index matrix for a joint per-block argmax.

        Index matrix rows are padded with each block's *first* column:
        a duplicate value sits after the original, so ``argmax`` (first
        occurrence wins) returns exactly the per-block result.
        """
        if not blocks:
            return None
        names = [name for name, _, _ in blocks]
        widths = np.asarray([width for _, _, width in blocks])
        idx = np.empty((len(blocks), int(widths.max())), dtype=np.intp)
        for g, (_, start, width) in enumerate(blocks):
            idx[g, :width] = start + np.arange(width)
            idx[g, width:] = start
        return names, idx

    @staticmethod
    def _pack_gmm(gmm):
        if not gmm:
            return None
        names = [name for name, *_ in gmm]
        vcols = np.asarray([start for _, start, *_ in gmm])
        argmax = CompiledInverse._pack_argmax(
            [(name, start + 1, width)
             for name, start, width, _, _, _ in gmm])
        max_k = max(width for _, _, width, _, _, _ in gmm)
        means = np.zeros((len(gmm), max_k))
        stds = np.ones((len(gmm), max_k))
        for g, (_, _, width, mu, sigma, _) in enumerate(gmm):
            means[g, :width] = mu
            stds[g, :width] = sigma
        integral = np.asarray([flag for *_, flag in gmm], dtype=bool)
        return names, vcols, argmax[1], means, stds, integral

    def __call__(self, samples: np.ndarray) -> Dict[str, np.ndarray]:
        """Decode ``(n, output_dim)`` samples into attribute columns."""
        columns: Dict[str, np.ndarray] = {}
        if self._simple is not None:
            names, cols, mins, ranges, integral = self._simple
            clipped = np.clip(samples[:, cols], -1.0, 1.0)
            values = mins + (clipped + 1.0) / 2.0 * ranges
            if integral.any():
                values[:, integral] = np.rint(values[:, integral])
            for i, name in enumerate(names):
                columns[name] = values[:, i]
        if self._rounded is not None:
            names, cols, scales, domains, tanh = self._rounded
            raw = samples[:, cols]
            unit = np.where(tanh, (np.clip(raw, -1.0, 1.0) + 1.0) / 2.0, raw)
            codes = np.rint(unit * scales).astype(np.int64)
            codes = np.clip(codes, 0, domains - 1)
            for i, name in enumerate(names):
                columns[name] = codes[:, i]
        if self._onehot is not None:
            names, idx = self._onehot
            codes = samples[:, idx].argmax(axis=2).astype(np.int64)
            for i, name in enumerate(names):
                columns[name] = codes[:, i]
        if self._gmm is not None:
            names, vcols, idx, means, stds, integral = self._gmm
            modes = samples[:, idx].argmax(axis=2)
            rows = np.arange(len(names))[None, :]
            v_gmm = np.clip(samples[:, vcols], -1.0, 1.0)
            values = (v_gmm * 2.0 * stds[rows, modes]
                      + means[rows, modes])
            if integral.any():
                values[:, integral] = np.rint(values[:, integral])
            for i, name in enumerate(names):
                columns[name] = values[:, i]
        return columns


def _make_categorical(encoding: str) -> AttributeTransformer:
    if encoding == ORDINAL:
        return OrdinalEncoder()
    if encoding == ONEHOT:
        return OneHotEncoder()
    raise TransformError(f"unknown categorical encoding {encoding!r}")


def _make_numerical(normalization: str, integral: bool, gmm_components: int,
                    rng: np.random.Generator) -> AttributeTransformer:
    if normalization == SIMPLE:
        return SimpleNormalizer(integral=integral)
    if normalization == GMM:
        return GMMNormalizer(n_components=gmm_components, integral=integral,
                             rng=rng)
    raise TransformError(f"unknown numerical normalization {normalization!r}")


class RecordTransformer:
    """Vector-form sample transformer (MLP / LSTM pipelines).

    Parameters
    ----------
    categorical_encoding:
        ``"ordinal"`` or ``"onehot"``.
    numerical_normalization:
        ``"simple"`` or ``"gmm"``.
    exclude:
        Attribute names excluded from the sample (the conditional-GAN
        pipeline excludes the label, which travels as the condition
        vector instead).
    """

    def __init__(self, categorical_encoding: str = ONEHOT,
                 numerical_normalization: str = GMM,
                 gmm_components: int = 5,
                 exclude: Sequence[str] = (),
                 rng: Optional[np.random.Generator] = None):
        self.categorical_encoding = categorical_encoding
        self.numerical_normalization = numerical_normalization
        self.gmm_components = gmm_components
        self.exclude = tuple(exclude)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.schema: Optional[Schema] = None
        self.transformers: Dict[str, AttributeTransformer] = {}
        self.blocks: List[BlockSpec] = []
        self.output_dim = 0
        self._compiled: Optional[CompiledInverse] = None

    @property
    def attribute_names(self) -> List[str]:
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        return [a.name for a in self.schema.attributes
                if a.name not in self.exclude]

    def fit(self, table: Table) -> "RecordTransformer":
        self.schema = table.schema
        self.transformers = {}
        self.blocks = []
        offset = 0
        for attr in table.schema:
            if attr.name in self.exclude:
                continue
            if attr.is_categorical:
                transformer = _make_categorical(self.categorical_encoding)
            else:
                transformer = _make_numerical(
                    self.numerical_normalization, attr.integral,
                    self.gmm_components, self.rng)
            transformer.fit(table.column(attr.name))
            self.transformers[attr.name] = transformer
            self.blocks.append(BlockSpec(
                name=attr.name, start=offset, width=transformer.width,
                head=transformer.head,
                discrete_block=transformer.discrete_block))
            offset += transformer.width
        self.output_dim = offset
        if self.output_dim == 0:
            raise TransformError("no attributes to transform")
        self._compiled = CompiledInverse(self.blocks, self.transformers)
        return self

    def partial_fit(self, table: Table) -> "RecordTransformer":
        """Absorb one stream chunk into per-attribute running statistics.

        The first chunk establishes the schema and constructs the
        per-attribute transformers; later chunks widen the schema under
        the grow-only contract (see
        :func:`repro.stream.reservoir.widen_schema`) and update each
        transformer's running statistics.  The block layout and
        compiled inverse are only valid after :meth:`finalize`.
        """
        from ..stream.reservoir import widen_schema

        if self.schema is None or not self.transformers:
            self.schema = table.schema
            self.transformers = {}
            for attr in table.schema:
                if attr.name in self.exclude:
                    continue
                if attr.is_categorical:
                    transformer = _make_categorical(self.categorical_encoding)
                else:
                    transformer = _make_numerical(
                        self.numerical_normalization, attr.integral,
                        self.gmm_components, self.rng)
                self.transformers[attr.name] = transformer
        else:
            self.schema = widen_schema(self.schema, table.schema)
        for name, transformer in self.transformers.items():
            transformer.partial_fit(table.column(name))
        # Layout is stale until finalize(): block widths may still grow.
        self.blocks = []
        self.output_dim = 0
        self._compiled = None
        return self

    def finalize(self) -> "RecordTransformer":
        """Seal running statistics and rebuild the block layout."""
        if self.schema is None or not self.transformers:
            raise TransformError("no chunks were partially fitted")
        self.blocks = []
        offset = 0
        for attr in self.schema:
            if attr.name in self.exclude:
                continue
            transformer = self.transformers[attr.name]
            transformer.finalize_partial()
            self.blocks.append(BlockSpec(
                name=attr.name, start=offset, width=transformer.width,
                head=transformer.head,
                discrete_block=transformer.discrete_block))
            offset += transformer.width
        self.output_dim = offset
        if self.output_dim == 0:
            raise TransformError("no attributes to transform")
        self._compiled = CompiledInverse(self.blocks, self.transformers)
        return self

    def reset(self) -> "RecordTransformer":
        """Drop all fitted and accumulated state (refit escape hatch)."""
        self.schema = None
        self.transformers = {}
        self.blocks = []
        self.output_dim = 0
        self._compiled = None
        return self

    def transform(self, table: Table) -> np.ndarray:
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        parts = [self.transformers[name].transform(table.column(name))
                 for name in self.attribute_names]
        return np.concatenate(parts, axis=1)

    def inverse(self, samples: np.ndarray,
                extra_columns: Optional[Dict[str, np.ndarray]] = None,
                vectorized: bool = True) -> Table:
        """Convert samples back into a table.

        ``extra_columns`` supplies excluded attributes (e.g. the label in
        conditional synthesis).  ``vectorized=True`` (the default)
        decodes through the precomputed :class:`CompiledInverse` —
        whole-matrix ops, bit-identical to the per-block reference path
        selected by ``vectorized=False``.
        """
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 2 or samples.shape[1] != self.output_dim:
            raise TransformError(
                f"expected samples of width {self.output_dim}, "
                f"got {samples.shape}")
        if vectorized:
            if self._compiled is None:
                self._compiled = CompiledInverse(self.blocks,
                                                 self.transformers)
            columns = self._compiled(samples)
        else:
            columns = {}
            for block in self.blocks:
                transformer = self.transformers[block.name]
                columns[block.name] = transformer.inverse(
                    samples[:, block.slice])
        extra_columns = extra_columns or {}
        for name in self.exclude:
            if name not in extra_columns:
                raise TransformError(
                    f"excluded attribute {name!r} needs an explicit column")
            columns[name] = extra_columns[name]
        return Table(self.schema, columns)

    def to_state(self) -> dict:
        """JSON-serializable fitted state (synthesizer persistence)."""
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        return {
            "form": "record",
            "categorical_encoding": self.categorical_encoding,
            "numerical_normalization": self.numerical_normalization,
            "gmm_components": self.gmm_components,
            "exclude": list(self.exclude),
            "schema": schema_to_dict(self.schema),
            "transformers": {name: t.to_state()
                             for name, t in self.transformers.items()},
        }

    @classmethod
    def from_state(cls, state: dict,
                   rng: Optional[np.random.Generator] = None
                   ) -> "RecordTransformer":
        """Rebuild a fitted transformer without refitting any data."""
        transformer = cls(
            categorical_encoding=state["categorical_encoding"],
            numerical_normalization=state["numerical_normalization"],
            gmm_components=state["gmm_components"],
            exclude=state["exclude"], rng=rng)
        transformer.schema = schema_from_dict(state["schema"])
        transformer.transformers = {
            name: attribute_transformer_from_state(sub)
            for name, sub in state["transformers"].items()}
        offset = 0
        for name in transformer.attribute_names:
            sub = transformer.transformers[name]
            transformer.blocks.append(BlockSpec(
                name=name, start=offset, width=sub.width, head=sub.head,
                discrete_block=sub.discrete_block))
            offset += sub.width
        transformer.output_dim = offset
        transformer._compiled = CompiledInverse(transformer.blocks,
                                                transformer.transformers)
        return transformer


class MatrixTransformer:
    """Matrix-form sample transformer (CNN pipeline).

    Each attribute becomes exactly one value in [-1, 1] (tanh-scaled
    ordinal for categorical, simple normalization for numerical); records
    are zero-padded into the smallest square matrix, e.g. 8 attributes ->
    3x3 with one pad cell, matching the paper's §4 example.
    """

    def __init__(self, exclude: Sequence[str] = (),
                 side: Optional[int] = None):
        self.exclude = tuple(exclude)
        self.requested_side = side
        self.schema: Optional[Schema] = None
        self.transformers: Dict[str, AttributeTransformer] = {}
        self.side = 0
        self.n_attributes = 0
        self._compiled: Optional[CompiledInverse] = None

    @property
    def attribute_names(self) -> List[str]:
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        return [a.name for a in self.schema.attributes
                if a.name not in self.exclude]

    def fit(self, table: Table) -> "MatrixTransformer":
        self.schema = table.schema
        self.transformers = {}
        count = 0
        for attr in table.schema:
            if attr.name in self.exclude:
                continue
            if attr.is_categorical:
                transformer = TanhOrdinalEncoder()
            else:
                transformer = SimpleNormalizer(integral=attr.integral)
            transformer.fit(table.column(attr.name))
            self.transformers[attr.name] = transformer
            count += 1
        if count == 0:
            raise TransformError("no attributes to transform")
        self.n_attributes = count
        minimal = int(math.ceil(math.sqrt(count)))
        if self.requested_side is not None:
            if self.requested_side < minimal:
                raise TransformError(
                    f"side {self.requested_side} too small for "
                    f"{count} attributes (need >= {minimal})")
            self.side = self.requested_side
        else:
            self.side = minimal
        self._compiled = CompiledInverse(self._cell_blocks(),
                                         self.transformers)
        return self

    def _cell_blocks(self) -> List[BlockSpec]:
        """One width-1 block per attribute cell of the flattened matrix."""
        return [BlockSpec(name=name, start=i, width=1,
                          head=self.transformers[name].head,
                          discrete_block=False)
                for i, name in enumerate(self.attribute_names)]

    def partial_fit(self, table: Table) -> "MatrixTransformer":
        """Absorb one stream chunk (same contract as RecordTransformer)."""
        from ..stream.reservoir import widen_schema

        if self.schema is None or not self.transformers:
            self.schema = table.schema
            self.transformers = {}
            for attr in table.schema:
                if attr.name in self.exclude:
                    continue
                if attr.is_categorical:
                    transformer = TanhOrdinalEncoder()
                else:
                    transformer = SimpleNormalizer(integral=attr.integral)
                self.transformers[attr.name] = transformer
        else:
            self.schema = widen_schema(self.schema, table.schema)
        for name, transformer in self.transformers.items():
            transformer.partial_fit(table.column(name))
        self._compiled = None
        return self

    def finalize(self) -> "MatrixTransformer":
        """Seal running statistics and fix the matrix layout."""
        if self.schema is None or not self.transformers:
            raise TransformError("no chunks were partially fitted")
        count = 0
        for name in self.attribute_names:
            self.transformers[name].finalize_partial()
            count += 1
        if count == 0:
            raise TransformError("no attributes to transform")
        self.n_attributes = count
        minimal = int(math.ceil(math.sqrt(count)))
        if self.requested_side is not None:
            if self.requested_side < minimal:
                raise TransformError(
                    f"side {self.requested_side} too small for "
                    f"{count} attributes (need >= {minimal})")
            self.side = self.requested_side
        else:
            self.side = minimal
        self._compiled = CompiledInverse(self._cell_blocks(),
                                         self.transformers)
        return self

    def reset(self) -> "MatrixTransformer":
        """Drop all fitted and accumulated state (refit escape hatch)."""
        self.schema = None
        self.transformers = {}
        self.side = 0
        self.n_attributes = 0
        self._compiled = None
        return self

    def transform(self, table: Table) -> np.ndarray:
        """Encode into shape ``(n, 1, side, side)``."""
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        parts = [self.transformers[name].transform(table.column(name))
                 for name in self.attribute_names]
        flat = np.concatenate(parts, axis=1)
        n = flat.shape[0]
        padded = np.zeros((n, self.side * self.side))
        padded[:, :self.n_attributes] = flat
        return padded.reshape(n, 1, self.side, self.side)

    def inverse(self, samples: np.ndarray,
                extra_columns: Optional[Dict[str, np.ndarray]] = None,
                vectorized: bool = True) -> Table:
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 4 or samples.shape[2] != self.side:
            raise TransformError(
                f"expected samples (n, 1, {self.side}, {self.side}), "
                f"got {samples.shape}")
        flat = samples.reshape(samples.shape[0], -1)[:, :self.n_attributes]
        if vectorized:
            if self._compiled is None:
                self._compiled = CompiledInverse(self._cell_blocks(),
                                                 self.transformers)
            columns = self._compiled(flat)
        else:
            columns = {}
            for i, name in enumerate(self.attribute_names):
                columns[name] = self.transformers[name].inverse(
                    flat[:, i:i + 1])
        extra_columns = extra_columns or {}
        for name in self.exclude:
            if name not in extra_columns:
                raise TransformError(
                    f"excluded attribute {name!r} needs an explicit column")
            columns[name] = extra_columns[name]
        return Table(self.schema, columns)

    def to_state(self) -> dict:
        """JSON-serializable fitted state (synthesizer persistence)."""
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        return {
            "form": "matrix",
            "exclude": list(self.exclude),
            "requested_side": self.requested_side,
            "side": self.side,
            "n_attributes": self.n_attributes,
            "schema": schema_to_dict(self.schema),
            "transformers": {name: t.to_state()
                             for name, t in self.transformers.items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "MatrixTransformer":
        """Rebuild a fitted transformer without refitting any data."""
        transformer = cls(exclude=state["exclude"],
                          side=state["requested_side"])
        transformer.schema = schema_from_dict(state["schema"])
        transformer.side = int(state["side"])
        transformer.n_attributes = int(state["n_attributes"])
        transformer.transformers = {
            name: attribute_transformer_from_state(sub)
            for name, sub in state["transformers"].items()}
        transformer._compiled = CompiledInverse(transformer._cell_blocks(),
                                                transformer.transformers)
        return transformer


def transformer_from_state(state: dict,
                           rng: Optional[np.random.Generator] = None):
    """Rebuild either sample-form transformer from its ``to_state`` dict."""
    form = state.get("form")
    if form == "record":
        return RecordTransformer.from_state(state, rng=rng)
    if form == "matrix":
        return MatrixTransformer.from_state(state)
    raise TransformError(f"unknown transformer form {form!r}")
