"""Record-level transformation: combine attribute blocks into samples.

Implements the paper's two sample forms (§4):

* vector form — concatenation of per-attribute blocks, for MLP/LSTM;
* matrix form — one value per attribute, zero-padded into a square
  matrix, for the CNN pipeline (only ordinal encoding + simple
  normalization are compatible, as the paper notes).

Both directions are implemented, so synthetic samples convert back into
records (Phase III).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..datasets.schema import Schema, Table, schema_from_dict, schema_to_dict
from ..errors import TransformError
from .base import AttributeTransformer, BlockSpec, attribute_transformer_from_state
from .categorical import OneHotEncoder, OrdinalEncoder, TanhOrdinalEncoder
from .numerical import GMMNormalizer, SimpleNormalizer

ORDINAL = "ordinal"
ONEHOT = "onehot"
SIMPLE = "simple"
GMM = "gmm"


def _make_categorical(encoding: str) -> AttributeTransformer:
    if encoding == ORDINAL:
        return OrdinalEncoder()
    if encoding == ONEHOT:
        return OneHotEncoder()
    raise TransformError(f"unknown categorical encoding {encoding!r}")


def _make_numerical(normalization: str, integral: bool, gmm_components: int,
                    rng: np.random.Generator) -> AttributeTransformer:
    if normalization == SIMPLE:
        return SimpleNormalizer(integral=integral)
    if normalization == GMM:
        return GMMNormalizer(n_components=gmm_components, integral=integral,
                             rng=rng)
    raise TransformError(f"unknown numerical normalization {normalization!r}")


class RecordTransformer:
    """Vector-form sample transformer (MLP / LSTM pipelines).

    Parameters
    ----------
    categorical_encoding:
        ``"ordinal"`` or ``"onehot"``.
    numerical_normalization:
        ``"simple"`` or ``"gmm"``.
    exclude:
        Attribute names excluded from the sample (the conditional-GAN
        pipeline excludes the label, which travels as the condition
        vector instead).
    """

    def __init__(self, categorical_encoding: str = ONEHOT,
                 numerical_normalization: str = GMM,
                 gmm_components: int = 5,
                 exclude: Sequence[str] = (),
                 rng: Optional[np.random.Generator] = None):
        self.categorical_encoding = categorical_encoding
        self.numerical_normalization = numerical_normalization
        self.gmm_components = gmm_components
        self.exclude = tuple(exclude)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.schema: Optional[Schema] = None
        self.transformers: Dict[str, AttributeTransformer] = {}
        self.blocks: List[BlockSpec] = []
        self.output_dim = 0

    @property
    def attribute_names(self) -> List[str]:
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        return [a.name for a in self.schema.attributes
                if a.name not in self.exclude]

    def fit(self, table: Table) -> "RecordTransformer":
        self.schema = table.schema
        self.transformers = {}
        self.blocks = []
        offset = 0
        for attr in table.schema:
            if attr.name in self.exclude:
                continue
            if attr.is_categorical:
                transformer = _make_categorical(self.categorical_encoding)
            else:
                transformer = _make_numerical(
                    self.numerical_normalization, attr.integral,
                    self.gmm_components, self.rng)
            transformer.fit(table.column(attr.name))
            self.transformers[attr.name] = transformer
            self.blocks.append(BlockSpec(
                name=attr.name, start=offset, width=transformer.width,
                head=transformer.head,
                discrete_block=transformer.discrete_block))
            offset += transformer.width
        self.output_dim = offset
        if self.output_dim == 0:
            raise TransformError("no attributes to transform")
        return self

    def transform(self, table: Table) -> np.ndarray:
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        parts = [self.transformers[name].transform(table.column(name))
                 for name in self.attribute_names]
        return np.concatenate(parts, axis=1)

    def inverse(self, samples: np.ndarray,
                extra_columns: Optional[Dict[str, np.ndarray]] = None
                ) -> Table:
        """Convert samples back into a table.

        ``extra_columns`` supplies excluded attributes (e.g. the label in
        conditional synthesis).
        """
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 2 or samples.shape[1] != self.output_dim:
            raise TransformError(
                f"expected samples of width {self.output_dim}, "
                f"got {samples.shape}")
        columns: Dict[str, np.ndarray] = {}
        for block in self.blocks:
            transformer = self.transformers[block.name]
            columns[block.name] = transformer.inverse(
                samples[:, block.slice])
        extra_columns = extra_columns or {}
        for name in self.exclude:
            if name not in extra_columns:
                raise TransformError(
                    f"excluded attribute {name!r} needs an explicit column")
            columns[name] = extra_columns[name]
        return Table(self.schema, columns)

    def to_state(self) -> dict:
        """JSON-serializable fitted state (synthesizer persistence)."""
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        return {
            "form": "record",
            "categorical_encoding": self.categorical_encoding,
            "numerical_normalization": self.numerical_normalization,
            "gmm_components": self.gmm_components,
            "exclude": list(self.exclude),
            "schema": schema_to_dict(self.schema),
            "transformers": {name: t.to_state()
                             for name, t in self.transformers.items()},
        }

    @classmethod
    def from_state(cls, state: dict,
                   rng: Optional[np.random.Generator] = None
                   ) -> "RecordTransformer":
        """Rebuild a fitted transformer without refitting any data."""
        transformer = cls(
            categorical_encoding=state["categorical_encoding"],
            numerical_normalization=state["numerical_normalization"],
            gmm_components=state["gmm_components"],
            exclude=state["exclude"], rng=rng)
        transformer.schema = schema_from_dict(state["schema"])
        transformer.transformers = {
            name: attribute_transformer_from_state(sub)
            for name, sub in state["transformers"].items()}
        offset = 0
        for name in transformer.attribute_names:
            sub = transformer.transformers[name]
            transformer.blocks.append(BlockSpec(
                name=name, start=offset, width=sub.width, head=sub.head,
                discrete_block=sub.discrete_block))
            offset += sub.width
        transformer.output_dim = offset
        return transformer


class MatrixTransformer:
    """Matrix-form sample transformer (CNN pipeline).

    Each attribute becomes exactly one value in [-1, 1] (tanh-scaled
    ordinal for categorical, simple normalization for numerical); records
    are zero-padded into the smallest square matrix, e.g. 8 attributes ->
    3x3 with one pad cell, matching the paper's §4 example.
    """

    def __init__(self, exclude: Sequence[str] = (),
                 side: Optional[int] = None):
        self.exclude = tuple(exclude)
        self.requested_side = side
        self.schema: Optional[Schema] = None
        self.transformers: Dict[str, AttributeTransformer] = {}
        self.side = 0
        self.n_attributes = 0

    @property
    def attribute_names(self) -> List[str]:
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        return [a.name for a in self.schema.attributes
                if a.name not in self.exclude]

    def fit(self, table: Table) -> "MatrixTransformer":
        self.schema = table.schema
        self.transformers = {}
        count = 0
        for attr in table.schema:
            if attr.name in self.exclude:
                continue
            if attr.is_categorical:
                transformer = TanhOrdinalEncoder()
            else:
                transformer = SimpleNormalizer(integral=attr.integral)
            transformer.fit(table.column(attr.name))
            self.transformers[attr.name] = transformer
            count += 1
        if count == 0:
            raise TransformError("no attributes to transform")
        self.n_attributes = count
        minimal = int(math.ceil(math.sqrt(count)))
        if self.requested_side is not None:
            if self.requested_side < minimal:
                raise TransformError(
                    f"side {self.requested_side} too small for "
                    f"{count} attributes (need >= {minimal})")
            self.side = self.requested_side
        else:
            self.side = minimal
        return self

    def transform(self, table: Table) -> np.ndarray:
        """Encode into shape ``(n, 1, side, side)``."""
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        parts = [self.transformers[name].transform(table.column(name))
                 for name in self.attribute_names]
        flat = np.concatenate(parts, axis=1)
        n = flat.shape[0]
        padded = np.zeros((n, self.side * self.side))
        padded[:, :self.n_attributes] = flat
        return padded.reshape(n, 1, self.side, self.side)

    def inverse(self, samples: np.ndarray,
                extra_columns: Optional[Dict[str, np.ndarray]] = None
                ) -> Table:
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim != 4 or samples.shape[2] != self.side:
            raise TransformError(
                f"expected samples (n, 1, {self.side}, {self.side}), "
                f"got {samples.shape}")
        flat = samples.reshape(samples.shape[0], -1)[:, :self.n_attributes]
        columns: Dict[str, np.ndarray] = {}
        for i, name in enumerate(self.attribute_names):
            columns[name] = self.transformers[name].inverse(flat[:, i:i + 1])
        extra_columns = extra_columns or {}
        for name in self.exclude:
            if name not in extra_columns:
                raise TransformError(
                    f"excluded attribute {name!r} needs an explicit column")
            columns[name] = extra_columns[name]
        return Table(self.schema, columns)

    def to_state(self) -> dict:
        """JSON-serializable fitted state (synthesizer persistence)."""
        if self.schema is None:
            raise TransformError("transformer is not fitted")
        return {
            "form": "matrix",
            "exclude": list(self.exclude),
            "requested_side": self.requested_side,
            "side": self.side,
            "n_attributes": self.n_attributes,
            "schema": schema_to_dict(self.schema),
            "transformers": {name: t.to_state()
                             for name, t in self.transformers.items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "MatrixTransformer":
        """Rebuild a fitted transformer without refitting any data."""
        transformer = cls(exclude=state["exclude"],
                          side=state["requested_side"])
        transformer.schema = schema_from_dict(state["schema"])
        transformer.side = int(state["side"])
        transformer.n_attributes = int(state["n_attributes"])
        transformer.transformers = {
            name: attribute_transformer_from_state(sub)
            for name, sub in state["transformers"].items()}
        return transformer


def transformer_from_state(state: dict,
                           rng: Optional[np.random.Generator] = None):
    """Rebuild either sample-form transformer from its ``to_state`` dict."""
    form = state.get("form")
    if form == "record":
        return RecordTransformer.from_state(state, rng=rng)
    if form == "matrix":
        return MatrixTransformer.from_state(state)
    raise TransformError(f"unknown transformer form {form!r}")
