"""1-D Gaussian mixture model fitted by expectation–maximization.

Backs the paper's GMM-based ("mode-specific") normalization (§4): a
numerical attribute is clustered into ``s`` modes and each value is
normalized within the mode it most likely belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

_VAR_FLOOR = 1e-6


@dataclass
class GaussianMixture1D:
    """EM-fitted univariate GMM.

    Attributes
    ----------
    means, stds, weights:
        Per-component parameters, shape ``(n_components,)``.
    """

    n_components: int = 5
    max_iter: int = 100
    tol: float = 1e-5

    means: Optional[np.ndarray] = None
    stds: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None

    def fit(self, values: np.ndarray,
            rng: Optional[np.random.Generator] = None) -> "GaussianMixture1D":
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size == 0:
            raise ValueError("values is empty; cannot fit GMM on empty "
                             "data")
        rng = rng if rng is not None else np.random.default_rng()
        k = min(self.n_components, max(1, np.unique(values).size))
        self.n_components = k

        # Initialize means at spread quantiles, which is deterministic and
        # robust for 1-D data; stds at the global scale.
        quantiles = np.linspace(0, 100, k + 2)[1:-1]
        means = np.percentile(values, quantiles).astype(np.float64)
        means += rng.normal(0, 1e-6, size=k)  # break exact ties
        global_std = max(float(values.std()), np.sqrt(_VAR_FLOOR))
        stds = np.full(k, global_std)
        weights = np.full(k, 1.0 / k)

        prev_ll = -np.inf
        x = values[:, None]
        for _ in range(self.max_iter):
            # E-step: responsibilities (log-space for stability).
            log_prob = (-0.5 * ((x - means) / stds) ** 2
                        - np.log(stds) - 0.5 * np.log(2 * np.pi)
                        + np.log(np.maximum(weights, 1e-300)))
            log_norm = _logsumexp(log_prob, axis=1)
            resp = np.exp(log_prob - log_norm[:, None])
            ll = float(log_norm.mean())

            # M-step.
            nk = resp.sum(axis=0) + 1e-12
            means = (resp * x).sum(axis=0) / nk
            var = (resp * (x - means) ** 2).sum(axis=0) / nk
            stds = np.sqrt(np.maximum(var, _VAR_FLOOR))
            weights = nk / nk.sum()

            if abs(ll - prev_ll) < self.tol:
                break
            prev_ll = ll

        self.means, self.stds, self.weights = means, stds, weights
        return self

    def _check_fitted(self) -> None:
        if self.means is None:
            raise RuntimeError("GMM is not fitted")

    def posteriors(self, values: np.ndarray) -> np.ndarray:
        """P(component | value), shape ``(n, n_components)``."""
        self._check_fitted()
        x = np.asarray(values, dtype=np.float64).ravel()[:, None]
        log_prob = (-0.5 * ((x - self.means) / self.stds) ** 2
                    - np.log(self.stds)
                    + np.log(np.maximum(self.weights, 1e-300)))
        log_prob -= _logsumexp(log_prob, axis=1)[:, None]
        return np.exp(log_prob)

    def assign(self, values: np.ndarray) -> np.ndarray:
        """Most likely component index per value (paper's argmax pi)."""
        return self.posteriors(values).argmax(axis=1)

    def mode_arrays(self) -> tuple:
        """``(means, stds)`` per component, for vectorized mode decoding.

        The record-level inverse denormalizes every GMM-encoded
        attribute of a sample matrix in one gather over these arrays
        instead of re-touching the mixture object per chunk.
        """
        self._check_fitted()
        return self.means, self.stds

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check_fitted()
        comps = rng.choice(self.n_components, size=n, p=self.weights)
        return rng.normal(self.means[comps], self.stds[comps])

    def to_state(self) -> dict:
        """JSON-serializable fitted parameters (persistence)."""
        self._check_fitted()
        return {"n_components": self.n_components, "max_iter": self.max_iter,
                "tol": self.tol, "means": self.means.tolist(),
                "stds": self.stds.tolist(), "weights": self.weights.tolist()}

    @classmethod
    def from_state(cls, state: dict) -> "GaussianMixture1D":
        gmm = cls(n_components=int(state["n_components"]),
                  max_iter=int(state["max_iter"]), tol=float(state["tol"]))
        gmm.means = np.asarray(state["means"], dtype=np.float64)
        gmm.stds = np.asarray(state["stds"], dtype=np.float64)
        gmm.weights = np.asarray(state["weights"], dtype=np.float64)
        return gmm


def _logsumexp(a: np.ndarray, axis: int) -> np.ndarray:
    amax = a.max(axis=axis, keepdims=True)
    out = np.log(np.exp(a - amax).sum(axis=axis)) + amax.squeeze(axis)
    return out
