"""Attribute transformer interface (paper §4, Phase I).

Each transformer converts one attribute column into a block of the sample
vector ``t`` and back.  ``head`` declares which output activation the
generator must use for this block (paper Appendix A.1.2, cases C1–C4),
which is how the models are made "attribute-aware".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

# Generator head kinds (paper cases C1-C4).
HEAD_TANH = "tanh"                  # C1: simple normalization
HEAD_TANH_SOFTMAX = "tanh+softmax"  # C2: GMM-based (mode-specific)
HEAD_SOFTMAX = "softmax"            # C3: one-hot encoding
HEAD_SIGMOID = "sigmoid"            # C4: ordinal encoding


class AttributeTransformer:
    """Reversible encoding of one attribute into ``width`` numeric columns."""

    #: head activation kind, one of the HEAD_* constants
    head: str = HEAD_TANH
    #: number of output columns
    width: int = 1
    #: True when the block's values are category-like (used by KL warm-up)
    discrete_block: bool = False
    #: persistence key; set by concrete subclasses
    state_kind: str = ""

    #: True when :meth:`partial_fit` accumulates useful statistics; the
    #: base-class fallback buffers nothing and simply refits at finalize.
    supports_partial_fit: bool = False

    def fit(self, values: np.ndarray) -> "AttributeTransformer":
        raise NotImplementedError

    def partial_fit(self, values: np.ndarray) -> "AttributeTransformer":
        """Absorb one chunk of the attribute's stream.

        Streaming transformers keep running statistics (moments, ranges,
        grow-only vocabularies, reservoirs) here; :meth:`finalize_partial`
        turns them into a fitted state.  The default implementation
        refits on the chunk alone — correct only for stateless encoders,
        so concrete streaming transformers must override it.
        """
        return self.fit(values)

    def finalize_partial(self) -> "AttributeTransformer":
        """Seal accumulated chunk statistics into a fitted state."""
        return self

    def reset(self) -> "AttributeTransformer":
        """Drop all fitted and accumulated state (the refit escape hatch).

        After ``reset`` the transformer behaves as freshly constructed:
        the next ``fit``/``partial_fit`` starts from nothing.  Streaming
        callers use this when a domain change (renamed categories,
        shifted distribution) makes grow-only accumulation wrong.
        """
        raise NotImplementedError

    def to_state(self) -> dict:
        """JSON-serializable fitted state; ``"kind"`` keys the subclass."""
        raise NotImplementedError

    @classmethod
    def from_state(cls, state: dict) -> "AttributeTransformer":
        """Rebuild a fitted transformer from :meth:`to_state` output."""
        raise NotImplementedError

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Encode a column into shape ``(n, width)``."""
        raise NotImplementedError

    def inverse(self, block: np.ndarray) -> np.ndarray:
        """Decode a ``(n, width)`` block back into a column."""
        raise NotImplementedError

    def inverse_spec(self) -> dict:
        """Flat parameters of :meth:`inverse` for the vectorized decoder.

        Returns a dict with a ``"kind"`` key plus the scalars/arrays the
        record-level compiled inverse (see
        :class:`repro.transform.record.RecordTransformer`) needs to
        apply this attribute's decode as part of one whole-matrix pass.
        Every fitted transformer must support this; the per-block
        :meth:`inverse` remains the reference implementation.
        """
        raise NotImplementedError

    def _require_block(self, block: np.ndarray) -> np.ndarray:
        block = np.asarray(block, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != self.width:
            raise ValueError(
                f"expected block of width {self.width}, got {block.shape}")
        return block


def attribute_transformer_from_state(state: dict) -> AttributeTransformer:
    """Dispatch :meth:`AttributeTransformer.from_state` on ``state["kind"]``."""
    # Imported lazily: the concrete modules import this one.
    from .categorical import OneHotEncoder, OrdinalEncoder, TanhOrdinalEncoder
    from .numerical import GMMNormalizer, SimpleNormalizer

    kinds = {cls.state_kind: cls
             for cls in (OrdinalEncoder, TanhOrdinalEncoder, OneHotEncoder,
                         SimpleNormalizer, GMMNormalizer)}
    kind = state.get("kind")
    if kind not in kinds:
        raise ValueError(f"unknown attribute transformer kind {kind!r}")
    return kinds[kind].from_state(state)


@dataclass
class BlockSpec:
    """Layout of one attribute's block inside the sample vector."""

    name: str
    start: int
    width: int
    head: str
    discrete_block: bool

    @property
    def stop(self) -> int:
        return self.start + self.width

    @property
    def slice(self) -> slice:
        return slice(self.start, self.stop)
