"""Exception hierarchy for the synthesis serving layer.

Every serving error derives from :class:`ServingError` (itself a
:class:`repro.errors.ReproError`), and each class maps onto one HTTP
status in :mod:`repro.serve.http`, so front ends translate failures
mechanically instead of pattern-matching messages.
"""

from __future__ import annotations

from ..errors import ReproError


class ServingError(ReproError):
    """Base class for all serving-layer errors."""


class ModelNotFound(ServingError):
    """No model with the requested name exists in the store (HTTP 404)."""


class BackpressureError(ServingError):
    """The request queue is full; the client should back off (HTTP 503).

    Raised *immediately* at submission time — bounded queues shed load
    at the edge rather than letting latency grow without bound.
    """


class RequestTimeout(ServingError):
    """The request missed its deadline while queued or running (HTTP 504)."""


class WorkerError(ServingError):
    """A worker process failed while serving the request (HTTP 500).

    Carries the worker-side exception rendering; the worker itself
    survives and keeps serving subsequent requests.
    """


class CircuitOpen(ServingError):
    """The model's circuit breaker is open after repeated pool
    failures; the request is rejected fast instead of paying a boot
    timeout (HTTP 503 with ``Retry-After``).

    ``retry_after`` is the breaker's estimate, in seconds, of when a
    half-open probe will next be admitted.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = float(retry_after)


class PoolClosed(ServingError):
    """The worker pool (or service) was closed while the request was
    pending, or a request was submitted after shutdown."""
