"""Dependency-free HTTP front end over a :class:`SynthesisService`.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
connection, no third-party web stack.  Endpoints:

``GET /healthz``
    Liveness + counters (JSON).
``GET /metrics``
    Prometheus text exposition of the service's metrics registry
    (request latency histograms, pool supervision counters, batcher
    queue depth, circuit-state gauges...).  Point a scraper here.
``GET /models``
    The model catalogue with live-pool status (JSON).
``GET /models/{name}``
    One model's detail: active version, published versions, pool
    status, and the array manifest of the active version (shapes and
    dtypes read lazily from the saved headers).
``POST /models/{name}/sample``
    Synthesize rows.  JSON body for a **table** model::

        {"n": 5000, "seed": 17, "batch": 4096,
         "format": "json" | "csv", "stream": false}

    and for a **database** model::

        {"scale": 1.0, "sizes": {"orders": 200}, "seed": 17}

    ``seed`` makes the response reproducible (and is echoed back);
    unseeded requests report the fresh seed the service assigned, or
    ``null`` when the rows came out of a coalesced micro-batch.  With
    ``"format": "csv"`` and ``"stream": true`` (or ``n`` past the
    server's streaming threshold) the response is sent with chunked
    transfer-encoding, one CSV fragment per generated chunk, so large
    draws start flowing before generation finishes.  A JSON table
    request may add ``"trace": true`` to get the request's stitched
    span breakdown (batcher pass, pool dispatch, per-chunk worker
    spans) back in the response under ``"trace"``.

Errors map 1:1 from the serving exception hierarchy: 404 unknown model,
400 invalid request, 503 backpressure (with ``Retry-After``), 504
deadline, 500 worker failure.
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..obs.export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from ..obs.trace import Trace
from .encoding import (
    columns_payload, csv_stream, database_payload, schema_payload,
)
from .errors import (
    BackpressureError, CircuitOpen, ModelNotFound, PoolClosed,
    RequestTimeout,
)
from .service import SynthesisService
from .store import KIND_DATABASE

_SAMPLE_ROUTE = re.compile(r"^/models/([A-Za-z0-9][A-Za-z0-9._-]*)/sample$")
_MODEL_ROUTE = re.compile(r"^/models/([A-Za-z0-9][A-Za-z0-9._-]*)$")

#: CSV responses for at least this many rows stream chunked by default.
DEFAULT_STREAM_THRESHOLD = 50_000


class _StreamAborted(Exception):
    """A chunked response failed after its headers were sent.

    The only protocol-valid signal left is a truncated stream: the
    handler must close the connection without the terminal 0-chunk and
    must NOT write a second status line (which would land inside the
    chunk framing and corrupt the wire).  Carries nothing; the original
    error was already logged.
    """


def _status_for(exc: Exception) -> int:
    if isinstance(exc, ModelNotFound):
        return 404
    if isinstance(exc, (BackpressureError, CircuitOpen)):
        return 503
    if isinstance(exc, RequestTimeout):
        return 504
    if isinstance(exc, PoolClosed):
        return 503
    if isinstance(exc, (ValueError, TypeError)):
        return 400
    return 500


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    # The ThreadingHTTPServer subclass carries the service + knobs.
    @property
    def service(self) -> SynthesisService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Response plumbing
    # ------------------------------------------------------------------
    def _send_bytes(self, status: int, payload: bytes,
                    content_type: str,
                    retry_after: Optional[float] = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        if status == 503:
            # An open circuit reports the breaker's own estimate of
            # when a probe will be admitted; plain backpressure keeps
            # the generic hint.
            seconds = 1 if retry_after is None else \
                max(1, math.ceil(retry_after))
            self.send_header("Retry-After", str(seconds))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, payload: dict,
                   retry_after: Optional[float] = None) -> None:
        self._send_bytes(status, json.dumps(payload).encode("utf-8"),
                         "application/json", retry_after=retry_after)

    def _send_error_json(self, exc: Exception) -> None:
        status = _status_for(exc)
        self._send_json(status, {"error": type(exc).__name__,
                                 "detail": str(exc)},
                        retry_after=getattr(exc, "retry_after", None))

    def _send_chunked(self, fragments, content_type: str,
                      trailer_headers=None) -> None:
        """Chunked transfer-encoding: forward fragments as they come."""
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Transfer-Encoding", "chunked")
        if trailer_headers:
            for key, value in trailer_headers.items():
                self.send_header(key, value)
        self.end_headers()
        try:
            for fragment in fragments:
                data = fragment.encode("utf-8")
                if not data:
                    continue
                self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
                self.wfile.write(data)
                self.wfile.write(b"\r\n")
            self.wfile.write(b"0\r\n\r\n")
        except Exception as exc:
            # Headers are gone: a mid-stream failure (including the
            # terminal-chunk write racing a client disconnect) cannot
            # become an error response.  Truncate and drop the
            # connection so the client sees a hard framing error
            # instead of silently-complete-looking data.
            self.log_error("chunked response aborted: %s: %s",
                           type(exc).__name__, exc)
            self.close_connection = True
            raise _StreamAborted() from exc

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ValueError("request body must be a JSON object")
        return body

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        try:
            if self.path == "/healthz":
                self._send_json(200, self.service.healthz())
            elif self.path == "/metrics":
                text = render_prometheus(self.service.metrics.snapshot())
                self._send_bytes(200, text.encode("utf-8"),
                                 PROMETHEUS_CONTENT_TYPE)
            elif self.path == "/models":
                self._send_json(200, {"models": self.service.models()})
            elif _MODEL_ROUTE.match(self.path):
                name = _MODEL_ROUTE.match(self.path).group(1)
                self._send_json(200, self.service.model_info(name))
            else:
                self._send_json(404, {"error": "NotFound",
                                      "detail": f"no route {self.path}"})
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(exc)

    def do_POST(self) -> None:  # noqa: N802
        match = _SAMPLE_ROUTE.match(self.path)
        if match is None:
            self._send_json(404, {"error": "NotFound",
                                  "detail": f"no route {self.path}"})
            return
        name = match.group(1)
        try:
            body = self._read_body()
            info = self.service.store.info(name)
            if info.kind == KIND_DATABASE:
                self._serve_database(name, body)
            else:
                self._serve_table(name, body)
        except _StreamAborted:
            pass  # response already truncated; never double-respond
        except Exception as exc:
            self._send_error_json(exc)

    def _serve_table(self, name: str, body: dict) -> None:
        if "n" not in body:
            raise ValueError("table request body requires \"n\" (rows)")
        n = body["n"]
        seed = body.get("seed")
        batch = body.get("batch")
        out_format = body.get("format", "json")
        if out_format not in ("json", "csv"):
            raise ValueError(
                f"format must be \"json\" or \"csv\", got {out_format!r}")
        threshold = getattr(self.server, "stream_threshold",
                            DEFAULT_STREAM_THRESHOLD)
        stream = bool(body.get("stream",
                               out_format == "csv" and isinstance(n, int)
                               and n >= threshold))
        if stream and out_format != "csv":
            raise ValueError("streaming responses require format=csv")
        traced = bool(body.get("trace", False))
        if traced and (stream or out_format != "json"):
            raise ValueError(
                "trace=true requires a non-streaming json response")
        if stream:
            chunks, used_seed = self.service.sample_iter(
                name, n, batch=batch, seed=seed)
            # The first chunk carries the schema; pull it eagerly so
            # the CSV header (and any generation error) precedes the
            # chunked response instead of corrupting it midway.
            iterator = iter(chunks)
            first = next(iterator)
            self._send_chunked(
                csv_stream(_chain_first(first, iterator), first.schema),
                "text/csv", {"X-Repro-Seed": str(used_seed)})
            return
        trace = Trace("http.sample", tags={"model": name}) if traced \
            else None
        table, used_seed = self.service.sample(name, n, batch=batch,
                                               seed=seed, trace=trace)
        if out_format == "csv":
            payload = (csv_stream([table], table.schema))
            data = "".join(payload).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/csv")
            self.send_header("Content-Length", str(len(data)))
            if used_seed is not None:
                # Coalesced rows have no standalone stream: omit the
                # replay token rather than sending a literal "None".
                self.send_header("X-Repro-Seed", str(used_seed))
            self.end_headers()
            self.wfile.write(data)
            return
        payload = {
            "model": name, "n": len(table), "seed": used_seed,
            "schema": schema_payload(table.schema),
            "columns": columns_payload(table),
        }
        if trace is not None:
            payload["trace"] = trace.to_dict()
        self._send_json(200, payload)

    def _serve_database(self, name: str, body: dict) -> None:
        scale = body.get("scale", 1.0)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool):
            raise ValueError(f"scale must be a number, got {scale!r}")
        sizes = body.get("sizes")
        if sizes is not None and not isinstance(sizes, dict):
            raise ValueError("sizes must be an object of table -> rows")
        database, used_seed = self.service.sample_database(
            name, float(scale), sizes=sizes, seed=body.get("seed"))
        self._send_json(200, {
            "model": name, "seed": used_seed,
            **database_payload(database),
        })


def _chain_first(first, rest):
    yield first
    yield from rest


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class SynthesisServer:
    """A :class:`SynthesisService` behind a threading HTTP server.

    ``port=0`` binds an ephemeral port (see :attr:`port`).  The server
    owns the service when it constructed it from ``root``; a service
    passed in explicitly stays the caller's to close.
    """

    def __init__(self, service_or_root, host: str = "127.0.0.1",
                 port: int = 0, *, workers: int = 2,
                 stream_threshold: int = DEFAULT_STREAM_THRESHOLD,
                 verbose: bool = False, degraded: str = "reject"):
        if isinstance(service_or_root, SynthesisService):
            self.service = service_or_root
            self._owns_service = False
        else:
            self.service = SynthesisService(service_or_root,
                                            workers=workers,
                                            degraded=degraded)
            self._owns_service = True
        self._httpd = _Server((host, port), _Handler)
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._httpd.stream_threshold = stream_threshold
        self._httpd.verbose = verbose
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "SynthesisServer":
        """Serve in a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name="repro-serve-http")
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (blocks until ``close``)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "SynthesisServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
