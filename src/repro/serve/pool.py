"""Self-healing multi-process sampling pool with deterministic sharding.

A :class:`WorkerPool` owns N worker processes, each holding its **own**
loaded copy of one saved model (single-table synthesizer or database
synthesizer).  Table requests are sharded by the chunk plan of the
sharded-seed contract (:func:`repro.api.chunk_plan`): chunk ``i`` of a
``sample(n, batch, seed)`` request is generated from the substream
``(seed, "chunk", i)`` *wherever it runs*, so the pool's reassembled
output is bit-identical to single-process ``sample(n, batch=batch,
seed=seed)`` — for any worker count, including the inline ``workers=0``
mode.  Database requests are not sharded (a database draw is a
sequential parents-first walk); they run whole on one worker, with
parallelism coming from concurrent requests.

Transport: every worker slot gets its **own pair of pipes** (tasks
down, results up).  A shared ``mp.Queue`` cannot survive worker death —
a worker killed while blocked in ``get()`` leaves the queue's shared
reader lock held forever, wedging every successor — whereas a dead
worker's private pipes are simply drained and discarded.  The parent
balances load by dispatching each task to the least-loaded live slot,
records the assignment in that slot's claim ledger, and the worker acks
the claim on its result pipe before generating.

Fault tolerance (the self-healing layer):

* **Chunk-level recovery.**  When a worker dies (OOM, SIGKILL,
  segfault), its buffered results are drained, then only its
  claimed-but-undelivered chunks are requeued to surviving workers —
  or executed by the parent inline, as a last resort.  Re-execution
  pulls the same ``(seed, "chunk", i)`` substream, so recovered output
  is bit-identical to an uninterrupted run and duplicate delivery is
  harmless.
* **Respawn with backoff.**  Dead workers are respawned in place (new
  incarnation, fresh pipes) under an exponential
  :class:`repro.serve.circuit.RespawnBackoff`; repeated boot failures
  retire the slot instead of hot-looping fork+load.
* **Poison-chunk isolation.**  A chunk whose execution keeps killing
  workers is retried at most ``chunk_retry_budget`` times, then fails
  *that request* with :class:`WorkerError` — one bad request cannot
  take the pool down.
* **Event-driven supervision.**  Death detection blocks in
  ``multiprocessing.connection.wait`` on process sentinels; the result
  receiver blocks the same way on the result pipes.  An idle pool burns
  no CPU polling.
* **Stale-work shedding.**  When a request fails or is abandoned, its
  id enters a small shared-memory cancellation ring; workers check it
  at dispatch and between chunks and skip dead work instead of
  computing chunks nobody will read.

Deterministic fault injection (:mod:`repro.serve.faults`, env-gated via
``REPRO_FAULTS``) hooks the worker body at boot/task/chunk events so
chaos tests can script exactly these failures and assert bit-identity.
"""

from __future__ import annotations

import collections
import contextlib
import itertools
import multiprocessing as mp
import pathlib
import threading
import traceback
from multiprocessing import connection as mp_connection
from typing import Dict, Iterator, List, Optional, Set, Tuple

import numpy as np

from ..api.base import PathLike, _count, chunk_plan
from ..api.seeding import fresh_seed
from ..check.lockorder import make_condition, make_lock
from ..datasets.schema import Table
from ..obs import clock as _obs_clock
from .circuit import RespawnBackoff
from .errors import PoolClosed, RequestTimeout, ServingError, WorkerError
from .faults import plan_from_env
from .store import KIND_DATABASE, KIND_TABLE, load_model, model_kind

#: Handshake budget: covers the worker's model load (arrays from disk).
DEFAULT_START_TIMEOUT = 120.0
#: Per-request budget when the caller does not pass ``timeout=``.
DEFAULT_REQUEST_TIMEOUT = 300.0
#: Chunk-retry ceiling before a request is failed as a poison chunk.
DEFAULT_CHUNK_RETRY_BUDGET = 2
#: Consecutive boot failures before a worker slot is retired.
DEFAULT_MAX_BOOT_FAILURES = 3
#: Default supervision event-ring size (overridable via ``event_ring=``).
DEFAULT_EVENT_RING = 16
#: Fallback delay between a death and requeueing its claims if the
#: receiver cannot confirm the dead worker's result pipe is drained
#: (normally the drain signal arrives within milliseconds).
_RECLAIM_FALLBACK = 5.0
#: Entries in the shared-memory cancellation ring (slot 0 is the write
#: cursor).  Sized for "recently failed" — a worker that misses an
#: overwritten id merely wastes one chunk of work.
_CANCEL_SLOTS = 32


def _mp_context():
    """Prefer ``fork`` (cheap, COW model pages); fall back to spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else methods[0])


def _is_cancelled(cancel_ring, req_id: int) -> bool:
    """Worker-side check of the shared cancellation ring.

    Lock-free read: only the parent writes (under the ring's lock to
    serialize its own threads), and the parent is never killed, so the
    writer lock cannot be poisoned; a worker reading a torn entry at
    worst mis-skips one cancellation check.
    """
    raw = cancel_ring.get_obj()
    return req_id in list(raw)[1:]


def _worker_main(path: str, worker_id: int, incarnation: int,
                 dtype_name: str, task_r, result_w, cancel_ring) -> None:
    """Worker process body: load once, then serve tasks until sentinel.

    Runs in the child.  The engine dtype is pinned to the parent's
    before the load so a ``spawn``-started worker decodes float32
    models with float32 noise exactly like a forked one, and the
    process-global tape pool inherited over ``fork`` is dropped
    (:func:`repro.nn.reset_worker_state`) so copy-on-write pages sized
    for the parent's training workload are not dirtied per worker.

    Every message leads with this worker's slot id.  A claim ack is
    sent *before* generation starts, so the parent's ledger of what
    this process owes is confirmed on the same ordered pipe that later
    carries the chunks.
    """
    try:
        from ..nn import reset_worker_state, set_default_dtype

        set_default_dtype(dtype_name)
        reset_worker_state()
        plan = plan_from_env()
        model = load_model(path).spawn_sampler(worker_id)
        if plan is not None:
            plan.fire("boot", worker=worker_id, incarnation=incarnation)
        meta = {"method": getattr(model, "method", None),
                "default_batch": getattr(model, "default_sample_batch",
                                         None)}
    except BaseException:
        result_w.send(("boot_error", worker_id,
                       traceback.format_exc(limit=16)))
        return
    result_w.send(("ready", worker_id, meta))
    produced = 0
    tasks_seen = 0
    while True:
        try:
            task = task_r.recv()
        except EOFError:
            return
        if task is None:
            return
        kind, req_id = task[0], task[1]
        tasks_seen += 1
        if _is_cancelled(cancel_ring, req_id):
            result_w.send(("skip", worker_id, req_id))
            continue
        try:
            if plan is not None:
                plan.fire("task", worker=worker_id,
                          incarnation=incarnation, count=tasks_seen)
            if kind == "chunks":
                _, _, n, batch, seed, indices, traced = task
                result_w.send(("claim", worker_id, req_id,
                               list(indices)))
                chunk_started = _obs_clock.perf()
                for index, table in model.sample_chunks(
                        n, batch=batch, seed=seed, indices=indices):
                    if _is_cancelled(cancel_ring, req_id):
                        result_w.send(("skip", worker_id, req_id))
                        break
                    if plan is not None:
                        plan.fire("chunk", worker=worker_id,
                                  incarnation=incarnation, index=index,
                                  produced=produced)
                    span = None
                    if traced:
                        # Plain dict, not a Span: the pipe carries data,
                        # the parent stitches it into the request Trace.
                        done = _obs_clock.perf()
                        span = {"span_id": f"chunk-{index}",
                                "name": "chunk", "start": chunk_started,
                                "end": done,
                                "tags": {"chunk": index,
                                         "worker": worker_id,
                                         "incarnation": incarnation}}
                        chunk_started = done
                    result_w.send(("chunk", worker_id, req_id, index,
                                   table, span))
                    produced += 1
            elif kind == "database":
                _, _, scale, sizes, batch, seed = task
                result_w.send(("claim", worker_id, req_id, [0]))
                database = model.sample(scale, sizes=sizes, batch=batch,
                                        seed=seed)
                if plan is not None:
                    plan.fire("chunk", worker=worker_id,
                              incarnation=incarnation, index=-1,
                              produced=produced)
                result_w.send(("chunk", worker_id, req_id, 0, database,
                               None))
                produced += 1
            else:
                raise ValueError(f"unknown task kind {kind!r}")
        except Exception as exc:
            result_w.send(("error", worker_id, req_id,
                           f"{type(exc).__name__}: {exc}"))


class _WorkerSlot:
    """Parent-side supervision state for one worker position.

    The *slot* is stable across respawns; the *incarnation* counts the
    processes that have occupied it.  ``claims`` maps request id ->
    chunk indices dispatched to this incarnation and not yet delivered;
    after a death (and once the result pipe is drained) they are
    requeued elsewhere.  All mutable fields are guarded by the pool's
    ``_lock`` except ``process``/``task_w``/``result_r`` handoffs,
    which only the supervisor thread performs.
    """

    __slots__ = ("slot", "process", "task_w", "result_r", "incarnation",
                 "restarts", "boot_failures", "deaths", "ready", "dead",
                 "drained", "retired", "respawn_at", "reclaim_at",
                 "claims", "last_exit")

    def __init__(self, slot: int):
        self.slot = slot
        self.process: Optional[mp.process.BaseProcess] = None
        self.task_w = None
        self.result_r = None
        self.incarnation = 0
        self.restarts = 0
        self.boot_failures = 0
        self.deaths = 0
        self.ready = False
        self.dead = False
        self.drained = False
        self.retired = False
        self.respawn_at: Optional[float] = None
        self.reclaim_at: Optional[float] = None
        self.claims: Dict[int, Set[int]] = {}
        self.last_exit: Optional[int] = None

    def outstanding(self) -> int:
        return sum(len(indices) for indices in self.claims.values())


class _Pending:
    """Parent-side state of one in-flight request."""

    __slots__ = ("cond", "results", "expected", "error", "closed",
                 "kind", "spec", "dispatched", "delivered", "retries",
                 "trace")

    def __getstate__(self):
        raise TypeError(
            "_Pending is not picklable: it holds the result condition "
            "of an in-flight request; only payloads cross processes")

    def __init__(self, expected: int, kind: str = "chunks",
                 spec: tuple = (), trace=None):
        self.cond = make_condition("pool.result")
        self.results: Dict[int, object] = {}
        self.expected = expected
        self.error: Optional[str] = None
        self.closed = False
        self.kind = kind            # "chunks" | "database"
        self.spec = spec            # params to rebuild a task for requeue
        self.dispatched: Set[int] = set()
        self.delivered: Set[int] = set()
        self.retries: Dict[int, int] = {}
        self.trace = trace          # repro.obs.Trace or None

    def task_for(self, req_id: int, indices: List[int]) -> tuple:
        """Rebuild the pipe task covering ``indices`` of this request.

        The rebuilt task keeps the ``traced`` flag, so chunks
        re-executed after a worker death ship spans exactly like the
        first attempt (the parent stitches them as retry spans).
        """
        if self.kind == "chunks":
            n, batch, seed = self.spec
            return ("chunks", req_id, n, batch, seed, sorted(indices),
                    self.trace is not None)
        scale, sizes, batch, seed = self.spec
        return ("database", req_id, scale, sizes, batch, seed)

    def stitch(self, index: int, span: Optional[dict]) -> None:
        """Adopt a worker-shipped chunk span into the request trace."""
        if span is not None and self.trace is not None:
            self.trace.add(span, retry=self.retries.get(index, 0))

    def deliver(self, index: int, payload) -> None:
        with self.cond:
            self.results[index] = payload
            self.delivered.add(index)
            self.cond.notify_all()

    def undelivered(self) -> List[int]:
        with self.cond:
            return sorted(self.dispatched - self.delivered)

    def fail(self, message: str) -> None:
        with self.cond:
            self.error = message
            self.cond.notify_all()

    def abandon(self) -> None:
        with self.cond:
            self.closed = True
            self.cond.notify_all()

    def wait_index(self, index: int, deadline: Optional[float]):
        with self.cond:
            while True:
                if self.error is not None:
                    raise WorkerError(self.error)
                if self.closed:
                    raise PoolClosed("worker pool closed mid-request")
                if index in self.results:
                    # Hand over ownership: a streamed request must not
                    # accumulate every yielded chunk here for its whole
                    # lifetime (that would re-materialize the table the
                    # streaming API exists to avoid).
                    return self.results.pop(index)
                remaining = None
                if deadline is not None:
                    remaining = deadline - _obs_clock.monotonic()
                    if remaining <= 0:
                        raise RequestTimeout(
                            f"request timed out waiting for chunk {index} "
                            f"({len(self.delivered)}/{self.expected} done)")
                self.cond.wait(remaining)


class WorkerPool:
    """Self-healing sampling workers over one saved model.

    Parameters
    ----------
    path:
        Saved model directory (``Synthesizer.save`` or
        ``DatabaseSynthesizer.save`` layout).
    workers:
        Worker process count.  ``0`` runs inline in the calling process
        (no multiprocessing; identical output by the sharded-seed
        contract) — useful for tests and single-core deployments.
    request_timeout:
        Default per-request deadline in seconds (overridable per call).
    respawn:
        Respawn dead workers in place (with exponential backoff).
        ``False`` restores crash-fail supervision: any worker death
        retires its slot.
    max_boot_failures:
        Consecutive boot failures (death before reporting ready) that
        retire a slot instead of respawning again.
    backoff:
        :class:`repro.serve.circuit.RespawnBackoff` schedule; default
        0.25s doubling to a 15s cap.
    chunk_retry_budget:
        How many times one chunk may be requeued after worker deaths
        before its request fails with :class:`WorkerError` (poison-chunk
        isolation).
    inline_fallback:
        When every slot is retired, drain in-flight requests inline in
        the parent (bit-identical, slower) instead of failing them.
        Either way the pool is then *crashed*: new requests raise
        :class:`PoolClosed` and the service layer replaces the pool.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry` for supervision
        counters (dispatches, chunk deliveries/retries, deaths,
        respawns) and the in-flight gauge.  ``None`` (the default)
        records nothing and adds no calls to the hot path.
    event_ring:
        Capacity of the supervision event ring surfaced by
        :meth:`status` (events are stamped via :mod:`repro.obs.clock`).
    """

    def __getstate__(self):
        raise TypeError(
            "WorkerPool is not picklable: it owns worker processes, "
            "pipes, and locks; workers re-load the model from its "
            "saved path instead")

    def __init__(self, path: PathLike, workers: int = 1, *,
                 request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
                 start_timeout: float = DEFAULT_START_TIMEOUT,
                 inline_model=None, on_close=None,
                 respawn: bool = True,
                 max_boot_failures: int = DEFAULT_MAX_BOOT_FAILURES,
                 backoff: Optional[RespawnBackoff] = None,
                 chunk_retry_budget: int = DEFAULT_CHUNK_RETRY_BUDGET,
                 inline_fallback: bool = True,
                 metrics=None, event_ring: int = DEFAULT_EVENT_RING):
        workers = _count("workers", workers, minimum=0)
        event_ring = _count("event_ring", event_ring, minimum=1)
        max_boot_failures = _count("max_boot_failures", max_boot_failures,
                                   minimum=1)
        chunk_retry_budget = _count("chunk_retry_budget",
                                    chunk_retry_budget, minimum=0)
        self.path = pathlib.Path(path)
        self.kind = model_kind(self.path)
        if self.kind is None:
            raise ServingError(f"no saved synthesizer at {self.path}")
        self.workers = workers
        self.request_timeout = request_timeout
        self.respawn = respawn
        self.max_boot_failures = max_boot_failures
        self.backoff = RespawnBackoff() if backoff is None else backoff
        self.chunk_retry_budget = chunk_retry_budget
        self.inline_fallback = inline_fallback
        self._on_close = on_close
        self._closed = False
        self._crashed = False
        self._takeover = False
        self._ids = itertools.count()
        self._lock = make_lock("pool.pending")
        self._pending: Dict[int, _Pending] = {}
        self._cancelled: Set[int] = set()
        self._backlog: List[Tuple[int, Tuple[int, ...]]] = []
        self._inflight = 0
        self._meta: Dict[str, object] = {}
        self._inline_model = None
        self._slots: List[_WorkerSlot] = []
        self._chunk_retries = 0
        self._stale_dropped = 0
        self._inline_recoveries = 0
        self._events: collections.deque = collections.deque(
            maxlen=event_ring)
        self._metrics = metrics
        self._model_label = self.path.name
        if metrics is not None:
            self._m_dispatch = metrics.counter(
                "repro_pool_dispatch_total",
                "Chunk tasks routed to workers/backlog/inline.",
                labelnames=("model",))
            self._m_chunks = metrics.counter(
                "repro_pool_chunks_total",
                "Chunks delivered to requests.",
                labelnames=("model", "source"))
            self._m_retries = metrics.counter(
                "repro_pool_chunk_retries_total",
                "Chunks requeued after worker deaths.",
                labelnames=("model",))
            self._m_deaths = metrics.counter(
                "repro_pool_worker_deaths_total",
                "Unexpected worker process deaths.",
                labelnames=("model",))
            self._m_respawns = metrics.counter(
                "repro_pool_respawns_total",
                "Workers respawned in place after a death.",
                labelnames=("model",))
            self._m_stale = metrics.counter(
                "repro_pool_stale_dropped_total",
                "Cancelled-request tasks skipped by workers.",
                labelnames=("model",))
            self._m_inline = metrics.counter(
                "repro_pool_inline_recoveries_total",
                "Tasks executed inline in the parent as a last resort.",
                labelnames=("model",))
            self._m_inflight = metrics.gauge(
                "repro_pool_inflight",
                "Requests executing or reserved against the pool.",
                labelnames=("model",))
        self._fallback_lock = make_lock("pool.fallback")
        self._fallback_model = None
        if workers == 0:
            # Inline mode: use the caller-provided loaded model (e.g. a
            # ModelStore checkout, whose handle release rides on_close)
            # or load a private copy.
            if inline_model is None:
                inline_model = load_model(self.path)
            self._inline_model = inline_model.spawn_sampler(0)
            self._meta = {
                "method": getattr(self._inline_model, "method", None),
                "default_batch": getattr(self._inline_model,
                                         "default_sample_batch", None)}
            return
        if inline_model is not None:
            raise ServingError(
                "inline_model is only meaningful with workers=0 "
                "(worker processes load their own copies)")
        from ..nn import get_default_dtype

        ctx = _mp_context()
        self._ctx = ctx
        self._dtype_name = np.dtype(get_default_dtype()).name
        # Slot 0 is the write cursor; entries hold recently cancelled
        # request ids (-1 = empty).  Shared with every worker.
        self._cancel_ring = ctx.Array("q", [0] + [-1] * _CANCEL_SLOTS)
        # Parent-internal wake pipes for the two event loops.
        self._swake_r, self._swake_w = ctx.Pipe(duplex=False)
        self._rwake_r, self._rwake_w = ctx.Pipe(duplex=False)
        self._boot_ready: Dict[int, dict] = {}
        self._boot_errors: List[str] = []
        self._boot_cond = make_condition("pool.boot")
        self._booting = True
        for worker_id in range(workers):
            slot = _WorkerSlot(worker_id)
            self._slots.append(slot)
            self._spawn(slot)
        self._receiver = threading.Thread(
            target=self._receive_loop, daemon=True,
            name=f"repro-serve-recv-{self.path.name}")
        self._receiver.start()
        self._supervisor = threading.Thread(
            target=self._supervise_loop, daemon=True,
            name=f"repro-serve-mon-{self.path.name}")
        self._supervisor.start()
        self._await_boot(start_timeout)

    # ------------------------------------------------------------------
    # Startup / shutdown
    # ------------------------------------------------------------------
    def _spawn(self, slot: _WorkerSlot) -> None:
        """Start a new incarnation in ``slot`` with fresh private pipes."""
        task_r, task_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(str(self.path), slot.slot, slot.incarnation,
                  self._dtype_name, task_r, result_w, self._cancel_ring),
            daemon=True,
            name=(f"repro-serve-{self.path.name}-{slot.slot}"
                  f".{slot.incarnation}"))
        process.start()
        # Drop the parent's copies of the child ends; the child keeps
        # its own (EOF semantics depend on the parent not holding the
        # write end of the result pipe open forever).
        task_r.close()
        result_w.close()
        with self._lock:
            slot.process = process
            slot.task_w = task_w
            slot.result_r = result_r
            slot.dead = False
            slot.drained = False
            slot.ready = False
        self._wake_receiver()

    def _await_boot(self, timeout: float) -> None:
        deadline = _obs_clock.monotonic() + timeout
        with self._boot_cond:
            while (not self._boot_errors and not self._closed
                   and len(self._boot_ready) < self.workers):
                remaining = deadline - _obs_clock.monotonic()
                if remaining <= 0:
                    break
                self._boot_cond.wait(remaining)
            errors = list(self._boot_errors)
            ready = len(self._boot_ready)
            if not errors and ready >= self.workers:
                self._meta = dict(self._boot_ready[min(self._boot_ready)])
                self._booting = False
                return
        self.close()
        if errors:
            raise WorkerError("worker failed to start:\n"
                              + "\n".join(errors))
        raise RequestTimeout(
            f"only {ready}/{self.workers} workers came up within "
            f"{timeout:.0f}s")

    def _wake_supervisor(self) -> None:
        try:
            self._swake_w.send_bytes(b"w")
        except (OSError, ValueError):
            pass  # repro-check: disable=RC006 -- teardown race; supervisor exits via _closed

    def _wake_receiver(self) -> None:
        try:
            self._rwake_w.send_bytes(b"w")
        except (OSError, ValueError):
            pass  # repro-check: disable=RC006 -- teardown race; receiver exits via _closed

    def _record_event(self, what: str, **fields) -> None:
        # Both stamps come from obs.clock: "at" (monotonic) orders
        # events within the process; "wall" makes the ring diagnosable
        # against external logs.  Under a ManualClock both are exact.
        event = {"event": what, "at": round(_obs_clock.monotonic(), 3),
                 "wall": round(_obs_clock.wall(), 3)}
        event.update(fields)
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------
    # Supervision (event-driven; replaces the old 0.25s poll loop)
    # ------------------------------------------------------------------
    def _supervise_loop(self) -> None:
        """Event-driven worker supervision.

        Blocks in ``multiprocessing.connection.wait`` on the live
        process sentinels plus a wake pipe; wakes only on a worker
        death, an explicit nudge (close, drained result pipe), or the
        next scheduled respawn/reclaim deadline — an idle pool burns
        no CPU.

        On an unexpected death: wait for the receiver to drain the dead
        incarnation's result pipe (so already-produced chunks are not
        re-executed), requeue its claimed-but-undelivered chunks,
        schedule a respawn with exponential backoff — or retire the
        slot — and, if every slot is retired, either drain in-flight
        requests inline (``inline_fallback``) or fail them; either way
        the pool is then *crashed* and rejects new work.  A worker that
        dies during initial boot fails startup fast instead (no
        respawn), matching load-error behaviour.
        """
        while True:
            with self._lock:
                if self._closed:
                    return
                waitables: List[object] = [self._swake_r]
                for slot in self._slots:
                    if slot.process is not None and not slot.dead:
                        waitables.append(slot.process.sentinel)
            ready = mp_connection.wait(waitables,
                                       timeout=self._next_deadline())
            if self._swake_r in ready:
                try:
                    while self._swake_r.poll():
                        self._swake_r.recv_bytes()
                except (EOFError, OSError):
                    pass  # repro-check: disable=RC006 -- wake pipe closed by close(); loop exits via _closed
            self._note_deaths()
            self._run_reclaims()
            self._run_respawns()
            self._flush_backlog()
            self._maybe_takeover()

    def _next_deadline(self) -> Optional[float]:
        """Seconds until the earliest scheduled respawn/reclaim, if any."""
        with self._lock:
            stamps = [t for slot in self._slots
                      for t in (slot.respawn_at, slot.reclaim_at)
                      if t is not None]
        if not stamps:
            return None
        return max(0.0, min(stamps) - _obs_clock.monotonic())

    def _note_deaths(self) -> None:
        now = _obs_clock.monotonic()
        for slot in self._slots:
            process = slot.process
            if process is None or slot.dead or process.is_alive():
                continue
            process.join(timeout=0)
            detail = f"{process.name} exit={process.exitcode}"
            with self._lock:
                slot.dead = True
                slot.last_exit = process.exitcode
                slot.reclaim_at = now + _RECLAIM_FALLBACK
            # Let the receiver drain whatever the dead worker already
            # sent: chunks in the pipe buffer count as delivered, not
            # as work to redo.
            self._wake_receiver()
            if self._booting and not slot.ready:
                # Fail startup fast: a worker that dies mid-load never
                # reports, so wake _await_boot instead of timing out.
                slot.retired = True
                with self._boot_cond:
                    self._boot_errors.append(
                        f"worker process died during boot ({detail})")
                    self._boot_cond.notify_all()
                continue
            if slot.ready:
                slot.deaths += 1
            else:
                slot.boot_failures += 1
            self._record_event("death", slot=slot.slot,
                               incarnation=slot.incarnation,
                               exitcode=process.exitcode,
                               ready=slot.ready)
            if self._metrics is not None:
                self._m_deaths.inc(model=self._model_label)
            if not self.respawn or \
                    slot.boot_failures >= self.max_boot_failures:
                slot.retired = True
                self._record_event("retired", slot=slot.slot,
                                   boot_failures=slot.boot_failures)
            else:
                failures = slot.deaths + slot.boot_failures
                slot.respawn_at = now + self.backoff.delay(
                    max(0, failures - 1))

    def _run_reclaims(self) -> None:
        now = _obs_clock.monotonic()
        for slot in self._slots:
            with self._lock:
                if not slot.dead or slot.reclaim_at is None:
                    continue
                if not slot.drained and now < slot.reclaim_at:
                    continue  # receiver still draining the dead pipe
                reclaim, slot.claims = slot.claims, {}
                slot.reclaim_at = None
                exitcode = slot.last_exit
            for req_id, indices in reclaim.items():
                self._recover(
                    req_id, sorted(indices),
                    detail=(f"worker {slot.slot} died "
                            f"(exit={exitcode})"))

    def _recover(self, req_id: int, indices: List[int],
                 detail: str) -> None:
        """Requeue claimed-but-undelivered chunks of a dead worker.

        Re-execution is safe because chunk ``i`` is a pure function of
        ``(seed, "chunk", i)`` — a recovered chunk is bit-identical to
        the lost one, and a duplicate (the dead worker's result was
        already in flight) is simply delivered twice with equal bytes.
        """
        with self._lock:
            pending = self._pending.get(req_id)
            if pending is None or req_id in self._cancelled:
                return
        with pending.cond:
            if pending.error is not None or pending.closed:
                return
            todo = [i for i in indices if i not in pending.delivered]
        if not todo:
            return
        over_budget = None
        for index in todo:
            pending.retries[index] = pending.retries.get(index, 0) + 1
            if pending.retries[index] > self.chunk_retry_budget and \
                    over_budget is None:
                over_budget = index
        with self._lock:
            self._chunk_retries += len(todo)
        if self._metrics is not None:
            self._m_retries.inc(len(todo), model=self._model_label)
        if over_budget is not None:
            pending.fail(
                f"chunk {over_budget} exceeded its retry budget of "
                f"{self.chunk_retry_budget} (poison chunk?); last "
                f"failure: {detail}")
            self._cancel(req_id)
            self._record_event("poison_chunk", request=req_id,
                               chunk=over_budget)
            return
        self._record_event("requeue", request=req_id, chunks=todo,
                           detail=detail)
        self._dispatch(req_id, pending, todo)

    def _run_respawns(self) -> None:
        now = _obs_clock.monotonic()
        for slot in self._slots:
            with self._lock:
                due = (not slot.retired and slot.respawn_at is not None
                       and now >= slot.respawn_at and slot.drained
                       and slot.reclaim_at is None)
            if not due:
                continue
            slot.respawn_at = None
            slot.incarnation += 1
            slot.restarts += 1
            try:
                self._spawn(slot)
                self._record_event("respawn", slot=slot.slot,
                                   incarnation=slot.incarnation)
                if self._metrics is not None:
                    self._m_respawns.inc(model=self._model_label)
            except Exception as exc:
                with self._lock:
                    slot.dead = True
                    slot.drained = True
                    slot.boot_failures += 1
                self._record_event("respawn_failed", slot=slot.slot,
                                   detail=f"{type(exc).__name__}: {exc}")
                if slot.boot_failures >= self.max_boot_failures:
                    slot.retired = True
                else:
                    failures = slot.deaths + slot.boot_failures
                    slot.respawn_at = now + self.backoff.delay(
                        max(0, failures - 1))

    def _flush_backlog(self) -> None:
        """Re-dispatch tasks parked while no slot could accept work."""
        while True:
            with self._lock:
                if not self._backlog:
                    return
                if (self._pick_slot_locked() is None
                        and not self._takeover):
                    return
                req_id, indices = self._backlog.pop(0)
                pending = self._pending.get(req_id)
                cancelled = req_id in self._cancelled
            if pending is None or cancelled:
                continue
            self._dispatch(req_id, pending, list(indices))

    def _maybe_takeover(self) -> None:
        with self._lock:
            if self._crashed or self._closed:
                return
            if not all(slot.retired for slot in self._slots):
                return
            self._crashed = True
            self._takeover = self.inline_fallback
            self._backlog.clear()  # covered by the undelivered drain
            pendings = dict(self._pending)
        self._record_event("crashed",
                           inline_fallback=self.inline_fallback)
        if not self.inline_fallback:
            for request in pendings.values():
                request.fail("all worker slots retired and inline "
                             "fallback is disabled")
            return
        # Last-resort drain: finish everything already dispatched but
        # undelivered, inline in the parent.  Undispatched chunks of
        # windowed streams are routed inline by _dispatch from here on.
        for req_id, pending in pendings.items():
            remaining = pending.undelivered()
            if not remaining:
                continue
            self._run_inline_task(pending.task_for(req_id, remaining))

    def _fallback(self):
        # Caller must hold _fallback_lock.  worker_id self.workers is
        # outside the slot range; by the sharded-seed contract the
        # sampler identity never affects chunk content.
        if self._fallback_model is None:
            self._fallback_model = load_model(
                self.path).spawn_sampler(self.workers)
        return self._fallback_model

    def _run_inline_task(self, task: tuple) -> None:
        """Execute one task in the parent, delivering to its pending.

        Serialized on ``_fallback_lock`` (supervisor drain and caller
        threads may race here after a takeover).
        """
        kind, req_id = task[0], task[1]
        with self._lock:
            pending = self._pending.get(req_id)
            cancelled = req_id in self._cancelled
            self._inline_recoveries += 1
        if self._metrics is not None:
            self._m_inline.inc(model=self._model_label)
        if pending is None or cancelled:
            return
        try:
            with self._fallback_lock:
                model = self._fallback()
                if kind == "chunks":
                    _, _, n, batch, seed, indices, traced = task
                    chunk_started = _obs_clock.perf()
                    for index, chunk in model.sample_chunks(
                            n, batch=batch, seed=seed, indices=indices):
                        if self._closed:
                            return
                        if traced:
                            done = _obs_clock.perf()
                            pending.stitch(index, {
                                "span_id": f"chunk-{index}",
                                "name": "chunk", "start": chunk_started,
                                "end": done,
                                "tags": {"chunk": index,
                                         "worker": "inline"}})
                            chunk_started = done
                        if self._metrics is not None:
                            self._m_chunks.inc(model=self._model_label,
                                               source="inline")
                        pending.deliver(index, chunk)
                else:
                    _, _, scale, sizes, batch, seed = task
                    database = model.sample(scale, sizes=sizes,
                                            batch=batch, seed=seed)
                    pending.deliver(0, database)
        except Exception as exc:
            pending.fail(f"inline recovery failed: "
                         f"{type(exc).__name__}: {exc}")

    def _cancel(self, req_id: int) -> None:
        """Mark a request dead so queued work for it is shed everywhere.

        Publishes the id to the shared ring (workers check it at task
        dispatch and between chunks) and scrubs it from every slot's
        claim ledger and the backlog so the supervisor stops recovering
        it.
        """
        ring = getattr(self, "_cancel_ring", None)
        if ring is not None:
            with ring.get_lock():
                cursor = ring[0]
                ring[1 + (cursor % _CANCEL_SLOTS)] = req_id
                ring[0] = cursor + 1
        with self._lock:
            self._cancelled.add(req_id)
            for slot in self._slots:
                slot.claims.pop(req_id, None)
            self._backlog = [(rid, idx) for rid, idx in self._backlog
                             if rid != req_id]

    # ------------------------------------------------------------------
    # Result receiver (event-driven over the per-slot result pipes)
    # ------------------------------------------------------------------
    def _receive_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                readers = {slot.result_r: slot for slot in self._slots
                           if slot.result_r is not None}
            ready = mp_connection.wait(
                list(readers) + [self._rwake_r], timeout=1.0)
            if self._rwake_r in ready:
                try:
                    while self._rwake_r.poll():
                        self._rwake_r.recv_bytes()
                except (EOFError, OSError):
                    pass  # repro-check: disable=RC006 -- wake pipe closed by close(); loop exits via _closed
            for reader, slot in readers.items():
                if slot.dead or reader in ready:
                    self._drain_reader(slot, reader)

    def _drain_reader(self, slot: _WorkerSlot, reader) -> None:
        """Read everything currently buffered on one result pipe.

        For a dead slot this empties the pipe and marks it ``drained``
        (the signal the supervisor waits for before requeueing the
        slot's claims — anything the worker managed to send before
        dying counts as delivered, not as work to redo).
        """
        broken = False
        try:
            while reader.poll():
                self._handle_message(slot, reader.recv())
        except (EOFError, OSError):
            broken = True
        except Exception as exc:
            # A worker killed mid-send leaves a truncated pickle; the
            # remaining pipe contents are unrecoverable, so record the
            # fact and fall through to the drained/reclaim path, which
            # re-executes whatever was lost.
            broken = True
            self._record_event("reader_corrupt", slot=slot.slot,
                               detail=f"{type(exc).__name__}: {exc}")
        if broken or slot.dead:
            with self._lock:
                if slot.result_r is reader:
                    slot.result_r = None
                    slot.drained = True
            try:
                reader.close()
            except OSError:
                pass  # repro-check: disable=RC006 -- double-close on teardown is harmless
            self._wake_supervisor()

    def _handle_message(self, slot: _WorkerSlot, message: tuple) -> None:
        tag = message[0]
        if tag == "ready":
            _, slot_id, meta = message
            with self._lock:
                slot.ready = True
                slot.boot_failures = 0
            with self._boot_cond:
                self._boot_ready[slot_id] = meta
                self._boot_cond.notify_all()
            self._wake_supervisor()  # flush any backlog onto this slot
        elif tag == "boot_error":
            _, slot_id, text = message
            self._record_event("boot_error", slot=slot_id)
            with self._boot_cond:
                self._boot_errors.append(text)
                self._boot_cond.notify_all()
        elif tag == "claim":
            # The worker's ack that it owns these chunks.  The parent
            # staged the same entries at dispatch, so this is normally
            # a no-op merge; it exists so the ledger is confirmed on
            # the same ordered pipe that carries the chunks.
            _, _, req_id, indices = message
            with self._lock:
                if req_id not in self._cancelled:
                    slot.claims.setdefault(req_id, set()).update(indices)
        elif tag == "chunk":
            _, _, req_id, index, payload, span = message
            with self._lock:
                held = slot.claims.get(req_id)
                if held is not None:
                    held.discard(index)
                    if not held:
                        del slot.claims[req_id]
                slot.deaths = 0  # proof of useful work
                pending = self._pending.get(req_id)
            if pending is not None:
                # Stitch before delivering: once the chunk is visible
                # the request thread may finish and read the trace.
                pending.stitch(index, span)
                if self._metrics is not None:
                    self._m_chunks.inc(model=self._model_label,
                                       source="worker")
                pending.deliver(index, payload)
        elif tag == "error":
            _, _, req_id, text = message
            with self._lock:
                slot.claims.pop(req_id, None)
                pending = self._pending.get(req_id)
            if pending is not None:
                pending.fail(text)
            # Shed this request's remaining queued chunks: without
            # this, other workers keep computing chunks nobody will
            # ever read.
            self._cancel(req_id)
        elif tag == "skip":
            _, _, req_id = message
            with self._lock:
                slot.claims.pop(req_id, None)
                self._stale_dropped += 1
            if self._metrics is not None:
                self._m_stale.inc(model=self._model_label)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and fail any pending request."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        for request in pending:
            request.abandon()
        if self._on_close is not None:
            callback, self._on_close = self._on_close, None
            callback()
        if self._inline_model is not None:
            self._inline_model = None
            return
        with self._boot_cond:  # wake any thread still in _await_boot
            self._boot_cond.notify_all()
        self._wake_supervisor()
        self._wake_receiver()
        for slot in self._slots:
            if slot.task_w is not None and not slot.dead:
                try:
                    slot.task_w.send(None)
                except (OSError, ValueError, BrokenPipeError):
                    pass  # repro-check: disable=RC006 -- worker already gone; terminate below covers it
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for thread_name in ("_receiver", "_supervisor"):
            thread = getattr(self, thread_name, None)
            if (thread is not None
                    and thread is not threading.current_thread()):
                thread.join(timeout=5.0)
        for conn in itertools.chain(
                (slot.task_w for slot in self._slots),
                (slot.result_r for slot in self._slots),
                (self._swake_r, self._swake_w,
                 self._rwake_r, self._rwake_w)):
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:
                pass  # repro-check: disable=RC006 -- double-close on teardown is harmless

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; explicit close() is the API
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def crashed(self) -> bool:
        """True once every worker slot is retired (pool needs replacing)."""
        return self._crashed

    @property
    def method(self) -> Optional[str]:
        return self._meta.get("method")  # type: ignore[return-value]

    @property
    def default_batch(self) -> Optional[int]:
        return self._meta.get("default_batch")  # type: ignore[return-value]

    @property
    def _processes(self) -> List[mp.process.BaseProcess]:
        """Live process objects (compat shim for tests/diagnostics)."""
        return [slot.process for slot in self._slots
                if slot.process is not None]

    @property
    def inflight(self) -> int:
        """Requests executing or reserved (used for idle-pool eviction)."""
        with self._lock:
            return self._inflight

    def status(self) -> Dict[str, object]:
        """Supervision snapshot for /healthz and GET /models/{name}."""
        with self._lock:
            slots = [{
                "slot": slot.slot,
                "alive": (slot.process is not None and not slot.dead
                          and slot.process.is_alive()),
                "ready": slot.ready,
                "incarnation": slot.incarnation,
                "restarts": slot.restarts,
                "retired": slot.retired,
                "last_exit": slot.last_exit,
            } for slot in self._slots]
            return {
                "mode": "inline" if self.workers == 0 else "processes",
                "workers": self.workers,
                "alive": sum(1 for s in slots if s["alive"]),
                "restarts": sum(s["restarts"] for s in slots),
                "crashed": self._crashed,
                "closed": self._closed,
                "inflight": self._inflight,
                "chunk_retries": self._chunk_retries,
                "stale_dropped": self._stale_dropped,
                "inline_recoveries": self._inline_recoveries,
                "events": list(self._events),
                "slots": slots,
            }

    def retain(self) -> "WorkerPool":
        """Pin the pool against idle eviction until :meth:`release`.

        The service layer retains a pool *before* handing it to a
        request so LRU eviction can never close it in the gap between
        lookup and first use.  Raises :class:`PoolClosed` if the pool
        already shut down or crashed (the caller then re-resolves).
        """
        with self._lock:
            if self._closed or self._crashed:
                raise PoolClosed(
                    f"pool for {self.path.name} is "
                    f"{'closed' if self._closed else 'crashed'}")
            self._inflight += 1
            inflight = self._inflight
        self._note_inflight(inflight)
        return self

    def release(self) -> None:
        """Undo one :meth:`retain`."""
        with self._lock:
            self._inflight -= 1
            inflight = self._inflight
        self._note_inflight(inflight)

    def _note_inflight(self, inflight: int) -> None:
        if self._metrics is not None:
            self._m_inflight.set(inflight, model=self._model_label)

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _begin(self, expected: int, kind: str, spec: tuple,
               trace=None) -> Tuple[int, _Pending]:
        with self._lock:
            if self._closed or self._crashed:
                raise PoolClosed(
                    f"pool for {self.path.name} is "
                    f"{'closed' if self._closed else 'crashed'}")
            req_id = next(self._ids)
            pending = _Pending(expected, kind, spec, trace=trace)
            self._pending[req_id] = pending
            self._inflight += 1
            inflight = self._inflight
        self._note_inflight(inflight)
        return req_id, pending

    def _end(self, req_id: int) -> None:
        with self._lock:
            pending = self._pending.pop(req_id, None)
            self._inflight -= 1
            inflight = self._inflight
        self._note_inflight(inflight)
        if pending is None:
            return
        with pending.cond:
            unfinished = (pending.error is not None
                          or len(pending.delivered) < pending.expected)
        if unfinished and self._slots:
            # Abandoned mid-flight (error, timeout, dropped stream):
            # shed whatever is still queued for it.
            self._cancel(req_id)
        with self._lock:
            self._cancelled.discard(req_id)

    def _pick_slot_locked(self) -> Optional[_WorkerSlot]:
        """Least-loaded ready slot (caller holds _lock).

        A respawned slot only becomes eligible once it reports ready:
        dispatching into a still-booting pipe would charge the chunk's
        retry budget for every boot failure, misreading a crash-looping
        *worker* as a poison *chunk*.  Work waits in the backlog
        instead; the supervisor flushes it on the ready ack.
        """
        eligible = [slot for slot in self._slots
                    if slot.task_w is not None and slot.ready
                    and not slot.dead and not slot.retired]
        if not eligible:
            return None
        return min(eligible, key=_WorkerSlot.outstanding)

    def _dispatch(self, req_id: int, pending: _Pending,
                  indices: List[int]) -> None:
        """Route chunk indices to a worker, the backlog, or inline."""
        task = pending.task_for(req_id, indices)
        if self._metrics is not None:
            self._m_dispatch.inc(len(indices), model=self._model_label)
        with self._lock:
            pending.dispatched.update(indices)
            if self._takeover:
                target = "inline"
            else:
                slot = self._pick_slot_locked()
                if slot is None:
                    # Every slot is mid-respawn: park the work; the
                    # supervisor re-dispatches as soon as a slot is
                    # back (or the pool crashes and drains inline).
                    self._backlog.append((req_id, tuple(indices)))
                    return
                slot.claims.setdefault(req_id, set()).update(indices)
                conn = slot.task_w
                target = "worker"
        if target == "inline":
            self._run_inline_task(task)
            return
        try:
            conn.send(task)
        except (OSError, ValueError, BrokenPipeError):
            # The slot died between pick and send; its ledger entry
            # stands, so the death path requeues these chunks.
            self._record_event("dispatch_failed", request=req_id)

    def _deadline(self, timeout: Optional[float]) -> Optional[float]:
        timeout = self.request_timeout if timeout is None else timeout
        return None if timeout is None else _obs_clock.monotonic() + timeout

    # ------------------------------------------------------------------
    # Table requests (sharded)
    # ------------------------------------------------------------------
    def _table_plan(self, n: int, batch: Optional[int]
                    ) -> Tuple[int, List[Tuple[int, int, int]]]:
        if self.kind != KIND_TABLE:
            raise ServingError(
                f"model {self.path.name!r} is a database; use "
                "sample_database()")
        if batch is None:
            batch = self._meta.get("default_batch") or 4096
        return batch, chunk_plan(n, batch)

    def sample(self, n: int, batch: Optional[int] = None,
               seed: Optional[int] = None,
               timeout: Optional[float] = None, trace=None) -> Table:
        """Sharded ``sample(n)``, bit-identical to the local call.

        The chunk plan is strided across the workers; reassembly
        concatenates in chunk order, so the result equals
        ``load_model(path).sample(n, batch=batch, seed=seed)`` exactly.
        Unseeded requests get a fresh request seed (reported by the
        service layer) so they shard the same way.

        ``trace`` (a :class:`repro.obs.Trace`) collects one span per
        chunk, timed in the worker that generated it and shipped back
        on the result pipes; chunks re-executed after a worker death
        appear as retry spans.
        """
        chunks = list(self._iter_shards(n, batch, seed, timeout,
                                        windowed=False, trace=trace))
        if len(chunks) == 1:
            return chunks[0]
        schema = chunks[0].schema
        columns = {name: np.concatenate([c.columns[name] for c in chunks])
                   for name in schema.names}
        return Table(schema, columns)

    def sample_iter(self, n: int, batch: Optional[int] = None,
                    seed: Optional[int] = None,
                    timeout: Optional[float] = None,
                    trace=None) -> Iterator[Table]:
        """Stream the sharded request's chunks in order as they land.

        Streamed requests are **flow-controlled**: chunk tasks are
        dispatched in a sliding window ahead of the consumer, so a slow
        reader (e.g. an HTTP client on a thin pipe) bounds the chunks
        buffered in the parent instead of letting the workers race
        ahead and re-materialize the whole table in memory.
        """
        return self._iter_shards(n, batch, seed, timeout, windowed=True,
                                 trace=trace)

    def _iter_shards(self, n: int, batch: Optional[int],
                     seed: Optional[int], timeout: Optional[float],
                     windowed: bool, trace=None) -> Iterator[Table]:
        n = _count("n", n, minimum=1)
        batch, plan = self._table_plan(n, batch)
        seed = fresh_seed() if seed is None else seed
        if self._inline_model is not None:
            with self._lock:
                if self._closed:
                    raise PoolClosed(
                        f"pool for {self.path.name} is closed")
            return self._iter_inline(n, batch, seed, timeout, trace)
        return self._stream_from_workers(n, batch, seed, plan, timeout,
                                         windowed, trace)

    def _iter_inline(self, n, batch, seed, timeout,
                     trace=None) -> Iterator[Table]:
        # Best-effort deadline: generation runs on the caller's thread,
        # so the check lands between chunks (a single chunk cannot be
        # preempted) — but a runaway request still stops at a chunk
        # boundary instead of never.
        deadline = self._deadline(timeout)
        chunk_started = _obs_clock.perf()
        for index, chunk in self._inline_model.sample_chunks(
                n, batch=batch, seed=seed):
            if deadline is not None and _obs_clock.monotonic() > deadline:
                raise RequestTimeout(
                    "inline request passed its deadline mid-stream")
            if trace is not None:
                done = _obs_clock.perf()
                trace.add({"span_id": f"chunk-{index}", "name": "chunk",
                           "start": chunk_started, "end": done,
                           "tags": {"chunk": index, "worker": "inline"}})
                chunk_started = done
            yield chunk

    def _stream_from_workers(self, n, batch, seed, plan, timeout,
                             windowed: bool,
                             trace=None) -> Iterator[Table]:
        deadline = self._deadline(timeout)
        req_id, pending = self._begin(expected=len(plan), kind="chunks",
                                      spec=(n, batch, seed), trace=trace)
        try:
            if not windowed:
                # Bulk consumption (sample()): strided index sets —
                # equal-size chunks mean equal work, so static striding
                # balances without per-chunk dispatch traffic.
                n_tasks = min(self.workers, len(plan)) or 1
                dispatch_scope = (
                    contextlib.nullcontext() if trace is None
                    else trace.span("dispatch", chunks=len(plan),
                                    tasks=n_tasks))
                with dispatch_scope:
                    for shard in range(n_tasks):
                        indices = list(range(shard, len(plan), n_tasks))
                        self._dispatch(req_id, pending, indices)
                for index in range(len(plan)):
                    yield pending.wait_index(index, deadline)
                return
            # Streaming: one task per chunk, dispatched a bounded
            # window ahead of the consumer, so parent-side buffering
            # never exceeds ~window chunks however slow the reader is.
            window = max(2 * self.workers, 4)
            submitted = min(window, len(plan))
            for index in range(submitted):
                self._dispatch(req_id, pending, [plan[index][0]])
            for index in range(len(plan)):
                chunk = pending.wait_index(index, deadline)
                if submitted < len(plan):
                    self._dispatch(req_id, pending,
                                   [plan[submitted][0]])
                    submitted += 1
                yield chunk
        finally:
            self._end(req_id)

    # ------------------------------------------------------------------
    # Database requests (whole-request parallelism)
    # ------------------------------------------------------------------
    def sample_database(self, scale: float = 1.0, *,
                        sizes: Optional[Dict[str, int]] = None,
                        batch: Optional[int] = None,
                        seed: Optional[int] = None,
                        timeout: Optional[float] = None):
        """Run one database draw on a worker; returns a ``Database``."""
        if self.kind != KIND_DATABASE:
            raise ServingError(
                f"model {self.path.name!r} is a single table; use "
                "sample()")
        seed = fresh_seed() if seed is None else seed
        if self._inline_model is not None:
            return self._inline_model.sample(scale, sizes=sizes,
                                             batch=batch, seed=seed)
        deadline = self._deadline(timeout)
        req_id, pending = self._begin(expected=1, kind="database",
                                      spec=(scale, sizes, batch, seed))
        try:
            self._dispatch(req_id, pending, [0])
            return pending.wait_index(0, deadline)
        finally:
            self._end(req_id)
