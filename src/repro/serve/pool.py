"""Multi-process sampling worker pool with deterministic sharding.

A :class:`WorkerPool` owns N worker processes, each holding its **own**
loaded copy of one saved model (single-table synthesizer or database
synthesizer).  Table requests are sharded by the chunk plan of the
sharded-seed contract (:func:`repro.api.chunk_plan`): chunk ``i`` of a
``sample(n, batch, seed)`` request is generated from the substream
``(seed, "chunk", i)`` *wherever it runs*, so the pool's reassembled
output is bit-identical to single-process ``sample(n, batch=batch,
seed=seed)`` — for any worker count, including the inline ``workers=0``
mode.  Database requests are not sharded (a database draw is a
sequential parents-first walk); they run whole on one worker, with
parallelism coming from concurrent requests.

Workers pull chunk tasks from one shared queue (natural load
balancing), stream each finished chunk back immediately (so
``sample_iter`` can forward chunks to an HTTP response while later
chunks are still being generated), and survive request-level errors —
a failed request reports a :class:`WorkerError` to its caller and the
worker moves on.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import pathlib
import queue as queue_module
import threading
import time
import traceback
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..api.base import PathLike, _count, chunk_plan
from ..api.seeding import fresh_seed
from ..check.lockorder import make_condition, make_lock
from ..datasets.schema import Table
from .errors import PoolClosed, RequestTimeout, ServingError, WorkerError
from .store import KIND_DATABASE, KIND_TABLE, load_model, model_kind

#: Handshake budget: covers the worker's model load (arrays from disk).
DEFAULT_START_TIMEOUT = 120.0
#: Per-request budget when the caller does not pass ``timeout=``.
DEFAULT_REQUEST_TIMEOUT = 300.0


def _mp_context():
    """Prefer ``fork`` (cheap, COW model pages); fall back to spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else methods[0])


def _worker_main(path: str, worker_id: int, dtype_name: str,
                 task_q, result_q) -> None:
    """Worker process body: load once, then serve tasks until sentinel.

    Runs in the child.  The engine dtype is pinned to the parent's
    before the load so a ``spawn``-started worker decodes float32
    models with float32 noise exactly like a forked one, and the
    process-global tape pool inherited over ``fork`` is dropped
    (:func:`repro.nn.reset_worker_state`) so copy-on-write pages sized
    for the parent's training workload are not dirtied per worker.
    """
    try:
        from ..nn import reset_worker_state, set_default_dtype

        set_default_dtype(dtype_name)
        reset_worker_state()
        model = load_model(path).spawn_sampler(worker_id)
        meta = {"method": getattr(model, "method", None),
                "default_batch": getattr(model, "default_sample_batch",
                                         None)}
    except BaseException:
        result_q.put(("boot_error", worker_id,
                      traceback.format_exc(limit=16)))
        return
    result_q.put(("ready", worker_id, meta))
    while True:
        task = task_q.get()
        if task is None:
            return
        kind, req_id = task[0], task[1]
        try:
            if kind == "chunks":
                _, _, n, batch, seed, indices = task
                for index, table in model.sample_chunks(
                        n, batch=batch, seed=seed, indices=indices):
                    result_q.put(("chunk", req_id, index, table))
            elif kind == "database":
                _, _, scale, sizes, batch, seed = task
                database = model.sample(scale, sizes=sizes, batch=batch,
                                        seed=seed)
                result_q.put(("chunk", req_id, 0, database))
            else:
                raise ValueError(f"unknown task kind {kind!r}")
        except Exception as exc:
            result_q.put(("error", req_id,
                          f"{type(exc).__name__}: {exc}"))


class _Pending:
    """Parent-side state of one in-flight request."""

    __slots__ = ("cond", "results", "expected", "error", "closed")

    def __getstate__(self):
        raise TypeError(
            "_Pending is not picklable: it holds the result condition "
            "of an in-flight request; only payloads cross processes")

    def __init__(self, expected: int):
        self.cond = make_condition("pool.result")
        self.results: Dict[int, object] = {}
        self.expected = expected
        self.error: Optional[str] = None
        self.closed = False

    def deliver(self, index: int, payload) -> None:
        with self.cond:
            self.results[index] = payload
            self.cond.notify_all()

    def fail(self, message: str) -> None:
        with self.cond:
            self.error = message
            self.cond.notify_all()

    def abandon(self) -> None:
        with self.cond:
            self.closed = True
            self.cond.notify_all()

    def wait_index(self, index: int, deadline: Optional[float]):
        with self.cond:
            while True:
                if self.error is not None:
                    raise WorkerError(self.error)
                if self.closed:
                    raise PoolClosed("worker pool closed mid-request")
                if index in self.results:
                    # Hand over ownership: a streamed request must not
                    # accumulate every yielded chunk here for its whole
                    # lifetime (that would re-materialize the table the
                    # streaming API exists to avoid).
                    return self.results.pop(index)
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise RequestTimeout(
                            f"request timed out waiting for chunk {index} "
                            f"({len(self.results)}/{self.expected} done)")
                self.cond.wait(remaining)


class WorkerPool:
    """Sampling workers over one saved model.

    Parameters
    ----------
    path:
        Saved model directory (``Synthesizer.save`` or
        ``DatabaseSynthesizer.save`` layout).
    workers:
        Worker process count.  ``0`` runs inline in the calling process
        (no multiprocessing; identical output by the sharded-seed
        contract) — useful for tests and single-core deployments.
    request_timeout:
        Default per-request deadline in seconds (overridable per call).
    """

    def __getstate__(self):
        raise TypeError(
            "WorkerPool is not picklable: it owns worker processes, "
            "queues, and locks; workers re-load the model from its "
            "saved path instead")

    def __init__(self, path: PathLike, workers: int = 1, *,
                 request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
                 start_timeout: float = DEFAULT_START_TIMEOUT,
                 inline_model=None, on_close=None):
        workers = _count("workers", workers, minimum=0)
        self.path = pathlib.Path(path)
        self.kind = model_kind(self.path)
        if self.kind is None:
            raise ServingError(f"no saved synthesizer at {self.path}")
        self.workers = workers
        self.request_timeout = request_timeout
        self._on_close = on_close
        self._closed = False
        self._ids = itertools.count()
        self._lock = make_lock("pool.pending")
        self._pending: Dict[int, _Pending] = {}
        self._inflight = 0
        self._meta: Dict[str, object] = {}
        self._inline_model = None
        self._processes: List[mp.Process] = []
        if workers == 0:
            # Inline mode: use the caller-provided loaded model (e.g. a
            # ModelStore checkout, whose handle release rides on_close)
            # or load a private copy.
            if inline_model is None:
                inline_model = load_model(self.path)
            self._inline_model = inline_model.spawn_sampler(0)
            self._meta = {
                "method": getattr(self._inline_model, "method", None),
                "default_batch": getattr(self._inline_model,
                                         "default_sample_batch", None)}
            return
        if inline_model is not None:
            raise ServingError(
                "inline_model is only meaningful with workers=0 "
                "(worker processes load their own copies)")
        from ..nn import get_default_dtype

        ctx = _mp_context()
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._boot_ready: Dict[int, dict] = {}
        self._boot_errors: List[str] = []
        self._boot_cond = make_condition("pool.boot")
        dtype_name = np.dtype(get_default_dtype()).name
        for worker_id in range(workers):
            process = ctx.Process(
                target=_worker_main,
                args=(str(self.path), worker_id, dtype_name,
                      self._task_q, self._result_q),
                daemon=True, name=f"repro-serve-{self.path.name}-{worker_id}")
            process.start()
            self._processes.append(process)
        self._receiver = threading.Thread(
            target=self._receive_loop, daemon=True,
            name=f"repro-serve-recv-{self.path.name}")
        self._receiver.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, daemon=True,
            name=f"repro-serve-mon-{self.path.name}")
        self._monitor.start()
        self._await_boot(start_timeout)

    # ------------------------------------------------------------------
    # Startup / shutdown
    # ------------------------------------------------------------------
    def _await_boot(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        with self._boot_cond:
            while (not self._boot_errors and not self._closed
                   and len(self._boot_ready) < self.workers):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._boot_cond.wait(remaining)
            errors = list(self._boot_errors)
            ready = len(self._boot_ready)
            if not errors and ready >= self.workers:
                self._meta = dict(self._boot_ready[min(self._boot_ready)])
                return
        self.close()
        if errors:
            raise WorkerError("worker failed to start:\n"
                              + "\n".join(errors))
        raise RequestTimeout(
            f"only {ready}/{self.workers} workers came up within "
            f"{timeout:.0f}s")

    def _monitor_loop(self) -> None:
        """Detect worker-process death the queues cannot report.

        A worker killed by the OS (OOM, SIGKILL) sends nothing: without
        this watch its in-flight chunks would strand until the full
        request timeout and the pool would silently run degraded.  On
        an unexpected exit every pending request fails immediately with
        a :class:`WorkerError` and the pool closes — the service layer
        replaces closed pools on the next request.
        """
        while not self._closed:
            dead = [p for p in self._processes if not p.is_alive()]
            if dead and not self._closed:
                detail = ", ".join(f"{p.name} exit={p.exitcode}"
                                   for p in dead)
                message = f"worker process died unexpectedly ({detail})"
                with self._lock:
                    pending = list(self._pending.values())
                for request in pending:
                    request.fail(message)
                with self._boot_cond:
                    # A worker that dies mid-load never reports: wake
                    # _await_boot so startup fails fast, not by timeout.
                    self._boot_errors.append(message)
                    self._boot_cond.notify_all()
                self.close()
                return
            time.sleep(0.25)

    def _receive_loop(self) -> None:
        # Polling get: the parent must NEVER write to the result queue
        # (a worker killed mid-put leaves the queue's write lock held
        # forever, so a parent-side wake-up sentinel could block the
        # parent's feeder thread and hang interpreter exit); the
        # receiver instead times out periodically and checks the
        # closed flag.
        while True:
            try:
                message = self._result_q.get(timeout=0.2)
            except queue_module.Empty:
                if self._closed:
                    return
                continue
            except (EOFError, OSError):
                return
            tag = message[0]
            if tag == "ready":
                with self._boot_cond:
                    self._boot_ready[message[1]] = message[2]
                    self._boot_cond.notify_all()
            elif tag == "boot_error":
                with self._boot_cond:
                    self._boot_errors.append(message[2])
                    self._boot_cond.notify_all()
            elif tag == "chunk":
                _, req_id, index, payload = message
                with self._lock:
                    pending = self._pending.get(req_id)
                if pending is not None:
                    pending.deliver(index, payload)
            elif tag == "error":
                _, req_id, text = message
                with self._lock:
                    pending = self._pending.get(req_id)
                if pending is not None:
                    pending.fail(text)

    def close(self) -> None:
        """Stop the workers and fail any pending request."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        for request in pending:
            request.abandon()
        if self._on_close is not None:
            callback, self._on_close = self._on_close, None
            callback()
        if self._inline_model is not None:
            self._inline_model = None
            return
        with self._boot_cond:  # wake any thread still in _await_boot
            self._boot_cond.notify_all()
        for _ in self._processes:
            try:
                self._task_q.put(None)
            except (ValueError, OSError):
                break
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        receiver = getattr(self, "_receiver", None)
        if receiver is not None and receiver is not threading.current_thread():
            receiver.join(timeout=5.0)
        self._task_q.close()
        self._result_q.close()
        # Detach the feeder without joining it: a worker killed mid-put
        # can leave the write lock held, and multiprocessing's atexit
        # hook would otherwise join the (possibly stuck) feeder forever.
        self._task_q.cancel_join_thread()
        self._result_q.cancel_join_thread()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; explicit close() is the API
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def method(self) -> Optional[str]:
        return self._meta.get("method")  # type: ignore[return-value]

    @property
    def default_batch(self) -> Optional[int]:
        return self._meta.get("default_batch")  # type: ignore[return-value]

    @property
    def inflight(self) -> int:
        """Requests executing or reserved (used for idle-pool eviction)."""
        with self._lock:
            return self._inflight

    def retain(self) -> "WorkerPool":
        """Pin the pool against idle eviction until :meth:`release`.

        The service layer retains a pool *before* handing it to a
        request so LRU eviction can never close it in the gap between
        lookup and first use.  Raises :class:`PoolClosed` if the pool
        already shut down (the caller then re-resolves).
        """
        with self._lock:
            if self._closed:
                raise PoolClosed(f"pool for {self.path.name} is closed")
            self._inflight += 1
        return self

    def release(self) -> None:
        """Undo one :meth:`retain`."""
        with self._lock:
            self._inflight -= 1

    def _begin(self, expected: int) -> Tuple[int, _Pending]:
        with self._lock:
            if self._closed:
                raise PoolClosed(f"pool for {self.path.name} is closed")
            req_id = next(self._ids)
            pending = _Pending(expected)
            self._pending[req_id] = pending
            self._inflight += 1
        return req_id, pending

    def _end(self, req_id: int) -> None:
        with self._lock:
            self._pending.pop(req_id, None)
            self._inflight -= 1

    def _deadline(self, timeout: Optional[float]) -> Optional[float]:
        timeout = self.request_timeout if timeout is None else timeout
        return None if timeout is None else time.monotonic() + timeout

    # ------------------------------------------------------------------
    # Table requests (sharded)
    # ------------------------------------------------------------------
    def _table_plan(self, n: int, batch: Optional[int]
                    ) -> Tuple[int, List[Tuple[int, int, int]]]:
        if self.kind != KIND_TABLE:
            raise ServingError(
                f"model {self.path.name!r} is a database; use "
                "sample_database()")
        if batch is None:
            batch = self._meta.get("default_batch") or 4096
        return batch, chunk_plan(n, batch)

    def sample(self, n: int, batch: Optional[int] = None,
               seed: Optional[int] = None,
               timeout: Optional[float] = None) -> Table:
        """Sharded ``sample(n)``, bit-identical to the local call.

        The chunk plan is strided across the workers; reassembly
        concatenates in chunk order, so the result equals
        ``load_model(path).sample(n, batch=batch, seed=seed)`` exactly.
        Unseeded requests get a fresh request seed (reported by the
        service layer) so they shard the same way.
        """
        chunks = list(self._iter_shards(n, batch, seed, timeout,
                                        windowed=False))
        if len(chunks) == 1:
            return chunks[0]
        schema = chunks[0].schema
        columns = {name: np.concatenate([c.columns[name] for c in chunks])
                   for name in schema.names}
        return Table(schema, columns)

    def sample_iter(self, n: int, batch: Optional[int] = None,
                    seed: Optional[int] = None,
                    timeout: Optional[float] = None) -> Iterator[Table]:
        """Stream the sharded request's chunks in order as they land.

        Streamed requests are **flow-controlled**: chunk tasks are
        dispatched in a sliding window ahead of the consumer, so a slow
        reader (e.g. an HTTP client on a thin pipe) bounds the chunks
        buffered in the parent instead of letting the workers race
        ahead and re-materialize the whole table in memory.
        """
        return self._iter_shards(n, batch, seed, timeout, windowed=True)

    def _iter_shards(self, n: int, batch: Optional[int],
                     seed: Optional[int], timeout: Optional[float],
                     windowed: bool) -> Iterator[Table]:
        n = _count("n", n, minimum=1)
        batch, plan = self._table_plan(n, batch)
        seed = fresh_seed() if seed is None else seed
        if self._inline_model is not None:
            with self._lock:
                if self._closed:
                    raise PoolClosed(
                        f"pool for {self.path.name} is closed")
            return self._iter_inline(n, batch, seed, timeout)
        return self._stream_from_workers(n, batch, seed, plan, timeout,
                                         windowed)

    def _iter_inline(self, n, batch, seed, timeout) -> Iterator[Table]:
        # Best-effort deadline: generation runs on the caller's thread,
        # so the check lands between chunks (a single chunk cannot be
        # preempted) — but a runaway request still stops at a chunk
        # boundary instead of never.
        deadline = self._deadline(timeout)
        for _, chunk in self._inline_model.sample_chunks(
                n, batch=batch, seed=seed):
            if deadline is not None and time.monotonic() > deadline:
                raise RequestTimeout(
                    "inline request passed its deadline mid-stream")
            yield chunk

    def _stream_from_workers(self, n, batch, seed, plan, timeout,
                             windowed: bool) -> Iterator[Table]:
        deadline = self._deadline(timeout)
        req_id, pending = self._begin(expected=len(plan))
        try:
            if not windowed:
                # Bulk consumption (sample()): strided index sets —
                # equal-size chunks mean equal work, so static striding
                # balances without per-chunk queue traffic.
                n_tasks = min(self.workers, len(plan)) or 1
                for shard in range(n_tasks):
                    indices = list(range(shard, len(plan), n_tasks))
                    self._task_q.put(("chunks", req_id, n, batch, seed,
                                      indices))
                for index in range(len(plan)):
                    yield pending.wait_index(index, deadline)
                return
            # Streaming: one task per chunk, dispatched a bounded
            # window ahead of the consumer, so parent-side buffering
            # never exceeds ~window chunks however slow the reader is.
            window = max(2 * self.workers, 4)
            submitted = min(window, len(plan))
            for index in range(submitted):
                self._task_q.put(("chunks", req_id, n, batch, seed,
                                  [plan[index][0]]))
            for index in range(len(plan)):
                chunk = pending.wait_index(index, deadline)
                if submitted < len(plan):
                    self._task_q.put(("chunks", req_id, n, batch, seed,
                                      [plan[submitted][0]]))
                    submitted += 1
                yield chunk
        finally:
            self._end(req_id)

    # ------------------------------------------------------------------
    # Database requests (whole-request parallelism)
    # ------------------------------------------------------------------
    def sample_database(self, scale: float = 1.0, *,
                        sizes: Optional[Dict[str, int]] = None,
                        batch: Optional[int] = None,
                        seed: Optional[int] = None,
                        timeout: Optional[float] = None):
        """Run one database draw on a worker; returns a ``Database``."""
        if self.kind != KIND_DATABASE:
            raise ServingError(
                f"model {self.path.name!r} is a single table; use "
                "sample()")
        seed = fresh_seed() if seed is None else seed
        if self._inline_model is not None:
            return self._inline_model.sample(scale, sizes=sizes,
                                             batch=batch, seed=seed)
        deadline = self._deadline(timeout)
        req_id, pending = self._begin(expected=1)
        try:
            self._task_q.put(("database", req_id, scale, sizes, batch,
                              seed))
            return pending.wait_index(0, deadline)
        finally:
            self._end(req_id)
