"""The synthesis service: store + worker pools + micro-batcher.

:class:`SynthesisService` is the process-level object a deployment
holds: it resolves model names through a :class:`ModelStore`, keeps one
:class:`WorkerPool` per actively-served model (LRU-capped, idle pools
are shut down), routes small unseeded requests through the
:class:`MicroBatcher`, and exposes the sampling entry points the HTTP
front end (or an embedding application) calls.

Request routing:

* ``seed`` given        -> straight to the pool (deterministic path;
  coalescing would change the stream);
* unseeded, small ``n`` -> micro-batcher (coalesced with concurrent
  requests for the same model);
* unseeded, large ``n`` -> pool with a fresh request seed (sharded
  across workers; the assigned seed is reported so the draw can be
  replayed).

Failure containment: each model gets a :class:`CircuitBreaker`.
Repeated pool boot failures or pool crashes open the circuit, after
which requests fail fast with :class:`CircuitOpen` (HTTP 503 +
``Retry-After``) instead of each paying the boot timeout — or, with
``degraded="inline"``, are served by a slower in-process pool while
the worker pool heals.  A half-open probe after the reset timeout
boots a fresh pool; success closes the circuit and retires the
degraded fallback.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

from ..api.base import PathLike, _count
from ..api.seeding import fresh_seed
from ..check.lockorder import make_lock
from ..datasets.schema import Table
from ..obs import clock as _obs_clock
from ..obs.metrics import get_registry
from .batching import MicroBatcher
from .circuit import CircuitBreaker
from .errors import CircuitOpen, ModelNotFound, PoolClosed, ServingError
from .pool import WorkerPool
from .store import ModelStore

#: Unseeded requests at or below this many rows go through the
#: micro-batcher; larger ones shard across the pool directly.
DEFAULT_COALESCE_MAX_ROWS = 4096


class _PoolEntry:
    """Registry slot for one model's pool; ``ready`` gates waiters
    while the creating thread boots the pool outside the lock.

    ``path`` records the saved-model directory the pool was booted on.
    A publish swaps the store's ``ACTIVE`` pointer, so a path mismatch
    is how the service detects that a registered pool serves a stale
    version and must be retired."""

    __slots__ = ("pool", "ready", "error", "path")

    def __init__(self, path=None):
        self.pool: Optional[WorkerPool] = None
        self.ready = threading.Event()
        self.error: Optional[BaseException] = None
        self.path = path


class SynthesisService:
    """Serve ``sample`` requests over a directory of saved models.

    Parameters
    ----------
    root:
        Model-store root (one saved model per subdirectory).
    workers:
        Worker processes per model pool (``0`` = inline, no
        multiprocessing).
    pool_capacity:
        How many models may have live worker pools at once; the LRU
        idle pool is shut down when a new model needs one.
    request_timeout:
        Default per-request deadline (seconds).
    coalesce_max_rows:
        Routing threshold for the micro-batcher (``0`` disables
        coalescing entirely).
    degraded:
        What happens while a model's circuit is open: ``"reject"``
        (default) fails fast with :class:`CircuitOpen`;
        ``"inline"`` serves requests from a slower in-process pool
        (bit-identical output — the sharded-seed contract holds at
        ``workers=0``) until the worker pool heals.
    circuit_factory:
        Callable returning a fresh :class:`CircuitBreaker` per model;
        injectable so tests can use thresholds and a fake clock.
    metrics:
        :class:`repro.obs.MetricsRegistry` the service records into
        (request latency histograms, row/error counters, circuit-state
        gauges, plus the pool and batcher series).  ``None`` (the
        default) uses the process registry from
        :func:`repro.obs.get_registry`, which ``GET /metrics`` renders;
        set ``REPRO_METRICS=0`` to start that registry disabled.
    """

    def __getstate__(self):
        raise TypeError(
            "SynthesisService is not picklable: it holds pool/stats "
            "locks and live worker pools; each process must build its "
            "own service over the shared store root")

    def __init__(self, root: PathLike, *, workers: int = 2,
                 store_capacity: int = 4, pool_capacity: int = 4,
                 request_timeout: float = 60.0,
                 coalesce_max_rows: int = DEFAULT_COALESCE_MAX_ROWS,
                 batch_window: float = 0.005,
                 degraded: str = "reject",
                 circuit_factory=None, metrics=None):
        if degraded not in ("reject", "inline"):
            raise ValueError(
                f"degraded must be 'reject' or 'inline', got {degraded!r}")
        # The store's LRU cache backs inline (workers=0) pools, which
        # borrow their loaded model through a refcounted checkout;
        # worker-process pools load their own copies and only use the
        # store for name resolution and metadata.
        self.store = ModelStore(root, capacity=store_capacity)
        self.workers = _count("workers", workers, minimum=0)
        self.pool_capacity = _count("pool_capacity", pool_capacity,
                                    minimum=1)
        self.request_timeout = request_timeout
        self.coalesce_max_rows = _count("coalesce_max_rows",
                                        coalesce_max_rows, minimum=0)
        self.degraded = degraded
        self._circuit_factory = (CircuitBreaker if circuit_factory is None
                                 else circuit_factory)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breakers_lock = make_lock("service.breakers")
        self._pools: "OrderedDict[str, _PoolEntry]" = OrderedDict()
        # Inline fallback pools serving models whose circuit is open
        # (degraded="inline" only); retired when the circuit closes.
        self._degraded_pools: Dict[str, _PoolEntry] = {}
        # Pools retired by a publish but still serving in-flight
        # requests on the old version; reaped once they drain.
        self._draining: list = []
        self._pools_lock = make_lock("service.pools")
        self._closed = False
        self._stats_lock = make_lock("service.stats")
        self._requests = 0
        self._rows = 0
        self.metrics = get_registry() if metrics is None else metrics
        self._m_requests = self.metrics.counter(
            "repro_serve_requests_total",
            "Requests accepted by the service.",
            labelnames=("model", "endpoint"))
        self._m_latency = self.metrics.histogram(
            "repro_serve_request_seconds",
            "End-to-end request latency, seconds.",
            labelnames=("model", "endpoint"))
        self._m_rows = self.metrics.counter(
            "repro_serve_rows_total",
            "Synthetic rows served.", labelnames=("model",))
        self._m_errors = self.metrics.counter(
            "repro_serve_errors_total",
            "Failed requests by exception type.",
            labelnames=("model", "endpoint", "error"))
        self._m_circuit = self.metrics.gauge(
            "repro_serve_circuit_state",
            "Circuit state per model: 0=closed 1=half_open 2=open.",
            labelnames=("model",))
        self.batcher = MicroBatcher(
            self._batched_sample, timeout=request_timeout,
            max_delay=batch_window, metrics=self.metrics)

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    def _make_pool(self, name: str, path) -> WorkerPool:
        if self.workers == 0:
            handle = self.store.checkout(name)
            try:
                return WorkerPool(path, workers=0,
                                  request_timeout=self.request_timeout,
                                  inline_model=handle.model,
                                  on_close=handle.release,
                                  metrics=self.metrics)
            except Exception:
                handle.release()
                raise
        return WorkerPool(path, workers=self.workers,
                          request_timeout=self.request_timeout,
                          metrics=self.metrics)

    def _pool(self, name: str) -> WorkerPool:
        """The (possibly new) pool for ``name``; LRU-evicts idle pools.

        Booting a pool (forking workers, loading arrays) can take
        seconds, so it happens *outside* the registry lock: one cold
        model must never stall requests for warm models or the health
        probes.  Concurrent requests for the same cold model share one
        boot via the entry's ready event.
        """
        path = self.store.path(name)  # raises ModelNotFound early
        with self._pools_lock:
            if self._closed:
                raise ServingError("service is closed")
            entry = self._pools.get(name)
            crashed = (entry is not None and entry.ready.is_set()
                       and entry.error is None
                       and not entry.pool.closed and entry.pool.crashed)
            usable = entry is not None and not crashed and (
                not entry.ready.is_set()
                or (entry.error is None and not entry.pool.closed))
            if crashed:
                # Every worker slot retired (crash loop, repeated
                # OOM...): drain any inline-fallback stragglers and
                # boot a replacement; the breaker counts the crash so
                # a crash-looping model opens its circuit.
                self._draining.append(entry)
                del self._pools[name]
            if usable and entry.path != path:
                # A publish swapped ACTIVE since this pool booted:
                # retire it to the draining list (in-flight requests
                # finish on the old version) and boot a fresh pool on
                # the new one.
                self._draining.append(entry)
                del self._pools[name]
                usable = False
            if usable:
                self._pools.move_to_end(name)
                is_loader = False
            else:
                entry = _PoolEntry(path)
                self._pools[name] = entry
                is_loader = True
            drained = self._reap_drained_locked()
        for old in drained:
            old.close()
        if crashed:
            breaker = self._breaker(name)
            breaker.record_failure()
            self._note_circuit(name, breaker)
        if is_loader:
            try:
                pool = self._make_pool(name, path)
            except BaseException as exc:
                with self._pools_lock:
                    entry.error = exc
                    if self._pools.get(name) is entry:
                        del self._pools[name]
                entry.ready.set()
                raise
            with self._pools_lock:
                if self._closed:
                    # The service shut down while this pool booted; it
                    # was never registered, so close it here.
                    entry.error = ServingError("service is closed")
                    self._pools.pop(name, None)
                    surplus = []
                else:
                    entry.pool = pool
                    surplus = self._pop_surplus_locked(keep=name)
            if entry.error is not None:
                pool.close()
                entry.ready.set()
                raise entry.error
            entry.ready.set()
            # Closing a pool joins worker processes (seconds): do it
            # after the registry lock is released, for the same reason
            # pool *boot* happens outside it.
            for other in surplus:
                other.close()
            return pool
        entry.ready.wait()
        if entry.error is not None:
            raise ServingError(
                f"starting the pool for {name!r} failed: "
                f"{entry.error}") from entry.error
        return entry.pool

    #: Circuit states as gauge values (alert on > 0).
    _CIRCUIT_LEVELS = {"closed": 0.0, "half_open": 1.0, "open": 2.0}

    def _breaker(self, name: str) -> CircuitBreaker:
        with self._breakers_lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = self._circuit_factory()
                self._m_circuit.set(0.0, model=name)
            return breaker

    def _note_circuit(self, name: str, breaker: CircuitBreaker) -> None:
        self._m_circuit.set(
            self._CIRCUIT_LEVELS.get(breaker.state, -1.0), model=name)

    def _retained_pool(self, name: str) -> WorkerPool:
        """A pool pinned against eviction; callers must ``release()``.

        The single funnel every sampling entry point goes through, so
        the circuit breaker observes every pool acquisition: boot
        failures and crashes count against the model's circuit, a
        rejected acquisition fails fast (or falls back to the degraded
        inline pool), and a successful one closes the circuit again.

        Retaining can race a concurrent LRU eviction closing the pool;
        in that case the registry no longer holds it and a retry
        resolves a fresh one.
        """
        breaker = self._breaker(name)
        if not breaker.allow():
            self._note_circuit(name, breaker)
            if self.degraded == "inline":
                return self._degraded_pool(name).retain()
            raise CircuitOpen(
                f"circuit for model {name!r} is open after repeated "
                "pool failures; retry later",
                retry_after=breaker.retry_after())
        for _ in range(3):
            try:
                pool = self._pool(name)
            except (ModelNotFound, ValueError, TypeError):
                # Client-shaped errors say nothing about pool health.
                raise
            except BaseException:
                breaker.record_failure()
                self._note_circuit(name, breaker)
                raise
            try:
                retained = pool.retain()
            except PoolClosed:
                continue
            breaker.record_success()
            self._note_circuit(name, breaker)
            self._retire_degraded(name)
            return retained
        raise ServingError(
            f"could not retain a pool for {name!r} (evicted repeatedly); "
            "raise pool_capacity or reduce the number of hot models")

    def _degraded_pool(self, name: str) -> WorkerPool:
        """The inline (``workers=0``) fallback pool for an open circuit.

        Loads the model in-process through the store's refcounted
        checkout; output is bit-identical to the worker pool's by the
        sharded-seed contract, just slower.  Closed via the draining
        list once the circuit closes (:meth:`_retire_degraded`).
        """
        path = self.store.path(name)
        with self._pools_lock:
            if self._closed:
                raise ServingError("service is closed")
            entry = self._degraded_pools.get(name)
            usable = entry is not None and (
                not entry.ready.is_set()
                or (entry.error is None and not entry.pool.closed))
            if usable and entry.path != path:
                self._draining.append(entry)
                del self._degraded_pools[name]
                usable = False
            if usable:
                is_loader = False
            else:
                entry = _PoolEntry(path)
                self._degraded_pools[name] = entry
                is_loader = True
        if not is_loader:
            entry.ready.wait()
            if entry.error is not None:
                raise ServingError(
                    f"degraded pool for {name!r} failed: "
                    f"{entry.error}") from entry.error
            return entry.pool
        try:
            handle = self.store.checkout(name)
            try:
                pool = WorkerPool(path, workers=0,
                                  request_timeout=self.request_timeout,
                                  inline_model=handle.model,
                                  on_close=handle.release,
                                  metrics=self.metrics)
            except BaseException:
                handle.release()
                raise
        except BaseException as exc:
            with self._pools_lock:
                entry.error = exc
                if self._degraded_pools.get(name) is entry:
                    del self._degraded_pools[name]
            entry.ready.set()
            raise
        with self._pools_lock:
            if self._closed:
                entry.error = ServingError("service is closed")
                self._degraded_pools.pop(name, None)
            else:
                entry.pool = pool
        if entry.error is not None:
            pool.close()
            entry.ready.set()
            raise entry.error
        entry.ready.set()
        return pool

    def _retire_degraded(self, name: str) -> None:
        """Drop the degraded fallback once the worker pool is healthy."""
        with self._pools_lock:
            entry = self._degraded_pools.pop(name, None)
            if entry is None:
                return
            self._draining.append(entry)
            drained = self._reap_drained_locked()
        for old in drained:
            old.close()

    def _count_request(self, rows: int) -> None:
        with self._stats_lock:
            self._requests += 1
            self._rows += rows

    def _pop_surplus_locked(self, keep: str) -> list:
        """Deregister surplus pools, oldest first, but never one with
        requests in flight or still booting — they fall out later.
        Returns the pools for the caller to close outside the lock."""
        surplus = len(self._pools) - self.pool_capacity
        popped = []
        if surplus <= 0:
            return popped
        for candidate in list(self._pools):
            if surplus <= 0:
                break
            entry = self._pools[candidate]
            if candidate != keep and entry.ready.is_set() \
                    and entry.error is None and entry.pool.inflight == 0:
                del self._pools[candidate]
                popped.append(entry.pool)
                surplus -= 1
        return popped

    def _reap_drained_locked(self) -> list:
        """Pop retired pools that have finished draining.

        Returns the pools for the caller to close outside the lock
        (closing joins worker processes).  Pools still booting or with
        requests in flight stay on the draining list; they are checked
        again on the next registry operation.
        """
        ready, keep = [], []
        for entry in self._draining:
            if not entry.ready.is_set():
                keep.append(entry)
            elif entry.error is not None or entry.pool is None:
                continue
            elif entry.pool.closed:
                continue
            elif entry.pool.inflight == 0:
                ready.append(entry.pool)
            else:
                keep.append(entry)
        self._draining = keep
        return ready

    def publish(self, name: str, source) -> str:
        """Release a new version of ``name`` and hot-swap its pool.

        ``source`` is a fitted synthesizer (anything with ``save``) or
        a directory containing a saved model.  Returns the new version
        string.  The swap is seamless: requests in flight when the
        publish lands finish on the old version's pool — a seeded
        streaming response stays bit-identical end to end — while every
        request arriving afterwards is served from a pool booted on the
        new version.  The old pool is closed once it drains.
        """
        version = self.store.publish(name, source)
        # Boot the new pool eagerly (this also retires the stale one)
        # so the first request after a refresh skips the fork latency.
        self._pool(name)
        return version

    def active_pools(self) -> Dict[str, int]:
        """``{model name: in-flight requests}`` for live pools."""
        with self._pools_lock:
            return {name: entry.pool.inflight
                    for name, entry in self._pools.items()
                    if entry.ready.is_set() and entry.error is None}

    # ------------------------------------------------------------------
    # Sampling entry points
    # ------------------------------------------------------------------
    def _batched_sample(self, name: str, n: int, seed: Optional[int],
                        trace=None) -> Table:
        """Backend the micro-batcher executes coalesced passes on."""
        pool = self._retained_pool(name)
        try:
            return pool.sample(n, seed=seed, trace=trace)
        finally:
            pool.release()

    def sample(self, name: str, n: int, batch: Optional[int] = None,
               seed: Optional[int] = None,
               timeout: Optional[float] = None,
               coalesce: Optional[bool] = None, trace=None
               ) -> Tuple[Table, Optional[int]]:
        """Serve one table request; returns ``(table, seed_used)``.

        ``seed_used`` is the request's reproducibility token: echo of
        the client seed, the fresh seed assigned to an uncoalesced
        unseeded request, or ``None`` for a coalesced request (its rows
        came out of a shared pass and have no standalone stream).

        ``trace`` (a :class:`repro.obs.Trace`) rides the request
        through the batcher and pool; on return it holds the stitched
        per-chunk span breakdown and is finished.
        """
        n = _count("n", n, minimum=1)
        if batch is not None:
            _count("batch", batch, minimum=1)
        self._count_request(n)
        self._m_requests.inc(model=name, endpoint="sample")
        started = _obs_clock.perf()
        try:
            if coalesce is None:
                coalesce = (seed is None and batch is None
                            and 0 < n <= self.coalesce_max_rows)
            if coalesce and seed is None and batch is None:
                result = (self.batcher.submit(name, n, timeout=timeout,
                                              trace=trace), None)
            else:
                if seed is None:
                    seed = fresh_seed()
                pool = self._retained_pool(name)
                try:
                    table = pool.sample(n, batch=batch, seed=seed,
                                        timeout=timeout, trace=trace)
                finally:
                    pool.release()
                result = (table, seed)
        except BaseException as exc:
            self._m_errors.inc(model=name, endpoint="sample",
                               error=type(exc).__name__)
            raise
        self._m_latency.observe(_obs_clock.perf() - started,
                                model=name, endpoint="sample")
        self._m_rows.inc(n, model=name)
        if trace is not None:
            trace.finish()
        return result

    def sample_iter(self, name: str, n: int,
                    batch: Optional[int] = None,
                    seed: Optional[int] = None,
                    timeout: Optional[float] = None
                    ) -> Tuple[Iterator[Table], int]:
        """Streaming variant: ``(chunk iterator, seed_used)``.

        Chunks arrive in order while later ones are still generating —
        the HTTP layer forwards them as a chunked response.  The pool
        stays retained until the iterator is exhausted or closed.
        """
        n = _count("n", n, minimum=1)
        self._count_request(n)
        self._m_requests.inc(model=name, endpoint="sample_iter")
        started = _obs_clock.perf()
        if seed is None:
            seed = fresh_seed()
        try:
            pool = self._retained_pool(name)
        except BaseException as exc:
            self._m_errors.inc(model=name, endpoint="sample_iter",
                               error=type(exc).__name__)
            raise

        def released_stream():
            try:
                yield from pool.sample_iter(n, batch=batch, seed=seed,
                                            timeout=timeout)
            except BaseException as exc:
                self._m_errors.inc(model=name, endpoint="sample_iter",
                                   error=type(exc).__name__)
                raise
            else:
                # Latency covers the full stream, not just acquisition.
                self._m_latency.observe(_obs_clock.perf() - started,
                                        model=name,
                                        endpoint="sample_iter")
                self._m_rows.inc(n, model=name)
            finally:
                pool.release()

        return released_stream(), seed

    def sample_database(self, name: str, scale: float = 1.0, *,
                        sizes: Optional[Dict[str, int]] = None,
                        seed: Optional[int] = None,
                        timeout: Optional[float] = None):
        """Serve one database request; returns ``(database, seed_used)``."""
        self._count_request(0)
        self._m_requests.inc(model=name, endpoint="database")
        started = _obs_clock.perf()
        if seed is None:
            seed = fresh_seed()
        try:
            pool = self._retained_pool(name)
            try:
                database = pool.sample_database(
                    scale, sizes=sizes, seed=seed, timeout=timeout)
            finally:
                pool.release()
        except BaseException as exc:
            self._m_errors.inc(model=name, endpoint="database",
                               error=type(exc).__name__)
            raise
        self._m_latency.observe(_obs_clock.perf() - started,
                                model=name, endpoint="database")
        return database, seed

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def models(self) -> list:
        """Catalogue of served models plus live-pool status."""
        with self._pools_lock:
            live = {name: entry.pool
                    for name, entry in self._pools.items()
                    if entry.ready.is_set() and entry.error is None
                    and not entry.pool.closed}
        entries = []
        for info in self.store.list_models():
            pool = live.get(info.name)
            entries.append({
                "name": info.name, "kind": info.kind,
                "method": info.method, "version": info.version,
                "pool": None if pool is None else {
                    "workers": pool.workers,
                    "inflight": pool.inflight,
                    "default_batch": pool.default_batch,
                },
                "circuit": self._circuit_state(info.name),
            })
        return entries

    def _circuit_state(self, name: str) -> Optional[str]:
        with self._breakers_lock:
            breaker = self._breakers.get(name)
        return None if breaker is None else breaker.state

    def model_info(self, name: str) -> Dict:
        """Detail view of one model: versions, active pool, arrays.

        ``arrays`` comes from the store's lazy manifest — shapes and
        dtypes are read from the saved ``.npy`` headers without
        faulting in any parameter data.
        """
        info = self.store.info(name)
        with self._pools_lock:
            entry = self._pools.get(name)
            pool = None
            if entry is not None and entry.ready.is_set() \
                    and entry.error is None and not entry.pool.closed:
                pool = {"workers": entry.pool.workers,
                        "inflight": entry.pool.inflight,
                        "default_batch": entry.pool.default_batch,
                        "supervision": entry.pool.status()}
            degraded = name in self._degraded_pools
            draining = len(self._draining)
        with self._breakers_lock:
            breaker = self._breakers.get(name)
        return {
            "name": info.name, "kind": info.kind, "method": info.method,
            "version": info.version,
            "versions": self.store.versions(name),
            "pool": pool, "draining": draining,
            "circuit": None if breaker is None else breaker.status(),
            "degraded": degraded,
            "arrays": self.store.metadata(name),
        }

    def healthz(self) -> Dict:
        with self._pools_lock:
            pools = {name: entry.pool.status()
                     for name, entry in self._pools.items()
                     if entry.ready.is_set() and entry.error is None
                     and not entry.pool.closed}
            degraded = sorted(self._degraded_pools)
            drained = self._reap_drained_locked()
            draining = len(self._draining)
        with self._breakers_lock:
            circuits = {name: breaker.status()
                        for name, breaker in self._breakers.items()}
        for old in drained:
            old.close()
        return {
            "status": "closed" if self._closed else "ok",
            "models": len(self.store.list_models()),
            "pools": pools,
            "circuits": circuits,
            "degraded": degraded,
            "draining": draining,
            "requests": self._requests,
            "rows": self._rows,
            "batcher": dict(self.batcher.stats),
        }

    def close(self) -> None:
        with self._pools_lock:
            if self._closed:
                return
            self._closed = True
            entries = (list(self._pools.values())
                       + list(self._degraded_pools.values())
                       + self._draining)
            self._pools.clear()
            self._degraded_pools.clear()
            self._draining = []
        self.batcher.close()
        for entry in entries:
            if entry.ready.is_set() and entry.error is None \
                    and entry.pool is not None:
                entry.pool.close()

    def __enter__(self) -> "SynthesisService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
