"""Failure-containment primitives: respawn backoff and circuit breaker.

Both are pure policy objects — no threads, no I/O — so the supervisor
loops that consume them stay testable with a fake clock.

:class:`RespawnBackoff` spaces worker respawn attempts exponentially so
a model that crashes at boot cannot hot-loop fork+load (model loading
is the expensive step in this system; see PAPER.md).

:class:`CircuitBreaker` protects the *service* layer: when a model's
pool keeps failing to boot or crashes repeatedly, the breaker opens and
requests fail fast with a ``Retry-After`` hint instead of each paying
the full boot timeout.  After the reset timeout a single half-open
probe is admitted; success closes the circuit, failure re-opens it with
a doubled timeout (capped).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..check.lockorder import make_lock
from ..obs import clock as _obs_clock

__all__ = ["RespawnBackoff", "CircuitBreaker"]


class RespawnBackoff:
    """Exponential delay schedule for worker respawns.

    ``delay(failures)`` is the pause before the next attempt after
    ``failures`` consecutive failures: ``base * 2**failures`` capped at
    ``cap``.  Stateless — the caller owns the failure counter, which it
    resets when a respawned worker reports ready.
    """

    __slots__ = ("base", "cap")

    def __init__(self, base: float = 0.25, cap: float = 15.0):
        if base <= 0:
            raise ValueError(f"base must be positive, got {base!r}")
        if cap < base:
            raise ValueError(
                f"cap must be >= base, got cap={cap!r} base={base!r}")
        self.base = float(base)
        self.cap = float(cap)

    def delay(self, failures: int) -> float:
        if failures < 0:
            raise ValueError(f"failures must be >= 0, got {failures!r}")
        return min(self.cap, self.base * (2.0 ** failures))


class CircuitBreaker:
    """Per-model three-state breaker: closed → open → half-open.

    * **closed** — requests flow; ``failure_threshold`` consecutive
      failures open the circuit.
    * **open** — :meth:`allow` returns ``False`` until ``reset_timeout``
      elapses (the caller converts that into a fast 503 with
      :meth:`retry_after`).
    * **half-open** — one probe request is admitted.  Success closes the
      circuit and resets the timeout; failure re-opens it with the
      timeout doubled, capped at ``max_timeout``.  A probe that neither
      succeeds nor fails within ``reset_timeout`` (caller died, request
      hung) is considered lost and a new probe is admitted.

    ``clock`` is injectable for fake-clock tests; it must be a
    monotonic-time callable (wall clock would make open intervals jump
    under NTP steps — RC001 applies here too).
    """

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout: float = 5.0, max_timeout: float = 60.0,
                 clock: Callable[[], float] = _obs_clock.monotonic):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}")
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be positive, got {reset_timeout!r}")
        if max_timeout < reset_timeout:
            raise ValueError(
                f"max_timeout must be >= reset_timeout, got "
                f"max_timeout={max_timeout!r} reset_timeout={reset_timeout!r}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.max_timeout = float(max_timeout)
        self._clock = clock
        self._lock = make_lock("service.circuit")
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._timeout = float(reset_timeout)
        self._probe_at: Optional[float] = None
        self._open_count = 0

    def __getstate__(self):
        raise TypeError("CircuitBreaker is not picklable: it holds a "
                        "process-local lock and clock state")

    def allow(self) -> bool:
        """Admit or reject a request; transitions open → half-open."""
        now = self._clock()
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open":
                if now - self._opened_at < self._timeout:
                    return False
                self._state = "half_open"
                self._probe_at = now
                return True
            # half_open: one probe in flight.  If it has been out longer
            # than a full reset window, assume it was lost and re-probe.
            if self._probe_at is not None and \
                    now - self._probe_at < self.reset_timeout:
                return False
            self._probe_at = now
            return True

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._timeout = self.reset_timeout
            self._probe_at = None

    def record_failure(self) -> None:
        now = self._clock()
        with self._lock:
            if self._state == "half_open":
                # Failed probe: back to open with a doubled window.
                self._timeout = min(self.max_timeout, self._timeout * 2.0)
                self._state = "open"
                self._opened_at = now
                self._probe_at = None
                self._open_count += 1
                return
            self._failures += 1
            if self._state == "closed" and \
                    self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = now
                self._open_count += 1

    def retry_after(self) -> float:
        """Seconds until the circuit would admit a probe (0 if it would now)."""
        now = self._clock()
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(0.0, self._timeout - (now - self._opened_at))

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def status(self) -> Dict[str, object]:
        now = self._clock()
        with self._lock:
            remaining = (max(0.0, self._timeout - (now - self._opened_at))
                         if self._state == "open" else 0.0)
            return {
                "state": self._state,
                "failures": self._failures,
                "timeout": self._timeout,
                "retry_after": round(remaining, 3),
                "opens": self._open_count,
            }
