"""Deterministic fault injection for the serving stack.

Chaos testing a *deterministic* system should itself be deterministic:
a fault plan describes exactly which worker dies on which chunk, which
requests get an injected exception, and where latency is added — so a
chaos test that kills a worker mid-request can still assert the
recovered output is **byte-identical** to an uninterrupted run.

Fault injection is env-gated like ``REPRO_SANITIZE``: set
``REPRO_FAULTS`` to a JSON plan and every worker process spawned by
:class:`repro.serve.WorkerPool` arms it at boot (the variable is
inherited across ``fork``/``spawn``).  Unset, the hook compiles to a
``plan is None`` check and the serving path is untouched.

Plan format::

    {"seed": 0,
     "rules": [
       {"on": "chunk", "worker": 0, "after": 2, "action": "kill"},
       {"on": "chunk", "chunk_index": 3, "action": "kill"},
       {"on": "task",  "action": "delay", "seconds": 0.05},
       {"on": "chunk", "action": "raise", "message": "injected",
        "probability": 0.25},
       {"on": "boot",  "incarnations": [0, 1], "action": "kill"}
     ]}

Events fired by the worker body (:func:`repro.serve.pool._worker_main`):

``boot``
    After the model loaded, before the worker reports ready.
``task``
    On receipt of each task (``count`` = tasks seen by this process).
``chunk``
    Immediately before each chunk result is sent (``index`` = the chunk
    index about to be sent, ``-1`` for a whole-database draw;
    ``produced`` = chunks this process already delivered).

Rule match fields (all optional; absent = match any):

``worker``          the worker slot id;
``incarnations``    list of incarnation numbers (0 = original process,
                    1 = first respawn, ...) — lets a test kill the
                    first incarnation and let the respawn live;
``chunk_index``     fires on the named chunk *before* it is delivered
                    (models a poison chunk: every worker that touches
                    it dies);
``after``           fires when the worker has already delivered exactly
                    this many chunks (models "kill worker k after
                    chunk j");
``probability``     a seeded coin per evaluation, derived from the plan
                    seed via :func:`repro.api.seeding.derive_seed` —
                    random-looking but bit-reproducible;
``times``           maximum firings per worker process.

Actions: ``kill`` (``os._exit`` with :data:`FAULT_EXIT_CODE` — the OS
sees a hard death, exactly like an OOM kill), ``raise`` (raises
:class:`FaultInjected` inside the task body, exercising the worker
error path), ``delay`` (sleeps ``seconds``, widening race windows so
ordering-dependent tests become deterministic).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

from ..api.seeding import derive_seed
from .errors import ServingError

__all__ = [
    "FAULT_EXIT_CODE", "FaultInjected", "FaultRule", "FaultPlan",
    "plan_from_env", "faults_enabled",
]

#: Exit code used by ``kill`` actions so a supervisor (or a human
#: reading ``status()``) can tell an injected death from a real one.
FAULT_EXIT_CODE = 43

_ENV_VAR = "REPRO_FAULTS"
_EVENTS = ("boot", "task", "chunk")
_ACTIONS = ("kill", "raise", "delay")
#: Derived-seed draws are uniform on [0, 2**63); compare against this
#: to turn ``probability`` into a deterministic coin.
_PROB_BOUND = float(2 ** 63)


class FaultInjected(ServingError):
    """An exception planted by a fault plan's ``raise`` action.

    Travels the same path as a real worker-side failure: the worker
    reports the request as errored and keeps serving.
    """


class FaultRule:
    """One compiled plan rule; see the module docstring for fields."""

    __slots__ = ("index", "on", "action", "worker", "incarnations",
                 "chunk_index", "after", "probability", "times",
                 "seconds", "message", "_fired", "_evaluations")

    def __init__(self, index: int, spec: Dict):
        if not isinstance(spec, dict):
            raise ServingError(
                f"fault rule #{index} must be an object, got {spec!r}")
        unknown = set(spec) - {"on", "action", "worker", "incarnations",
                               "chunk_index", "after", "probability",
                               "times", "seconds", "message"}
        if unknown:
            raise ServingError(
                f"fault rule #{index} has unknown field(s) "
                f"{sorted(unknown)}")
        self.index = index
        self.on = spec.get("on", "chunk")
        if self.on not in _EVENTS:
            raise ServingError(
                f"fault rule #{index}: 'on' must be one of {_EVENTS}, "
                f"got {self.on!r}")
        self.action = spec.get("action")
        if self.action not in _ACTIONS:
            raise ServingError(
                f"fault rule #{index}: 'action' must be one of "
                f"{_ACTIONS}, got {self.action!r}")
        self.worker = spec.get("worker")
        incarnations = spec.get("incarnations")
        self.incarnations = (None if incarnations is None
                             else {int(i) for i in incarnations})
        self.chunk_index = spec.get("chunk_index")
        self.after = spec.get("after")
        self.probability = spec.get("probability")
        if self.probability is not None and \
                not 0.0 <= float(self.probability) <= 1.0:
            raise ServingError(
                f"fault rule #{index}: 'probability' must be in [0, 1], "
                f"got {self.probability!r}")
        self.times = spec.get("times")
        self.seconds = float(spec.get("seconds", 0.01))
        self.message = spec.get("message",
                                f"fault rule #{index} ({self.on})")
        self._fired = 0
        self._evaluations = 0

    def matches(self, seed: int, event: str, worker: int,
                incarnation: int, index: Optional[int],
                produced: Optional[int], count: Optional[int]) -> bool:
        if event != self.on:
            return False
        if self.worker is not None and worker != self.worker:
            return False
        if self.incarnations is not None and \
                incarnation not in self.incarnations:
            return False
        if self.chunk_index is not None and index != self.chunk_index:
            return False
        if self.after is not None and produced != self.after:
            return False
        if self.times is not None and self._fired >= self.times:
            return False
        if self.probability is not None:
            self._evaluations += 1
            draw = derive_seed(seed, "fault", self.index, worker,
                               incarnation, self._evaluations)
            if draw / _PROB_BOUND >= float(self.probability):
                return False
        self._fired += 1
        return True

    def execute(self) -> None:
        if self.action == "kill":
            # A hard exit: no cleanup, no queue flush — the parent sees
            # the same signal an OOM kill would produce.
            os._exit(FAULT_EXIT_CODE)
        if self.action == "raise":
            raise FaultInjected(self.message)
        time.sleep(self.seconds)


class FaultPlan:
    """A parsed ``REPRO_FAULTS`` plan: an ordered list of rules.

    Per-process state (fire counters, probability streams) lives on the
    rules, so each worker process arms a fresh copy at boot and the
    plan's behaviour depends only on that worker's own event history.
    """

    def __init__(self, rules: List[FaultRule], seed: int = 0):
        self.rules = rules
        self.seed = seed

    @classmethod
    def from_spec(cls, spec: Dict) -> "FaultPlan":
        if not isinstance(spec, dict) or "rules" not in spec:
            raise ServingError(
                "REPRO_FAULTS must be a JSON object with a 'rules' list")
        rules = [FaultRule(i, rule)
                 for i, rule in enumerate(spec["rules"])]
        return cls(rules, seed=int(spec.get("seed", 0)))

    def fire(self, event: str, *, worker: int, incarnation: int,
             index: Optional[int] = None, produced: Optional[int] = None,
             count: Optional[int] = None) -> None:
        """Evaluate every rule against one event; execute the matches."""
        for rule in self.rules:
            if rule.matches(self.seed, event, worker, incarnation,
                            index, produced, count):
                rule.execute()


def faults_enabled() -> bool:
    """True when ``REPRO_FAULTS`` holds a plan (gate, not a parse)."""
    return os.environ.get(_ENV_VAR, "").strip() not in ("", "0")


def plan_from_env() -> Optional[FaultPlan]:
    """The armed :class:`FaultPlan`, or ``None`` when the gate is off.

    Called once per worker process at boot; a malformed plan raises
    :class:`ServingError` there, surfacing as a worker boot error
    rather than a silently fault-free run.
    """
    raw = os.environ.get(_ENV_VAR, "").strip()
    if raw in ("", "0"):
        return None
    try:
        spec = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ServingError(f"REPRO_FAULTS is not valid JSON: {exc}")
    return FaultPlan.from_spec(spec)
