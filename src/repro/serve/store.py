"""Model store: persisted synthesizers by name, LRU-cached, checkout-safe.

A store root is a directory of saved models, one subdirectory per
model name::

    models/
      adult-gan/          # Synthesizer.save(...)   -> synthesizer.json
      shop-db/            # DatabaseSynthesizer.save -> database.json

:class:`ModelStore` resolves names to paths, reads each model's
metadata without loading arrays, and lends out loaded models through
reference-counted :class:`ModelHandle`\\ s: checkout is thread-safe,
concurrent checkouts of the same name share one load, and LRU eviction
only ever drops models with no handle outstanding — an in-flight
request can never have its model evicted from under it.
"""

from __future__ import annotations

import json
import pathlib
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from ..api.base import _META_FILE, PathLike, load_synthesizer
from .errors import ModelNotFound, ServingError

#: Metadata file of a saved DatabaseSynthesizer directory (kept in sync
#: with repro.relational.synthesizer; imported lazily to avoid pulling
#: the relational stack into table-only services).
_DB_META_FILE = "database.json"

#: Model names are path components; keep them boring so a crafted name
#: can never escape the store root.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

KIND_TABLE = "table"
KIND_DATABASE = "database"


@dataclass(frozen=True)
class ModelInfo:
    """One store entry's metadata (no arrays loaded)."""

    name: str
    path: pathlib.Path
    kind: str          # "table" | "database"
    method: str        # registered family ("gan", ..., "relational")


def model_kind(path: PathLike) -> Optional[str]:
    """The persistence layout found at ``path`` (``None`` if neither)."""
    path = pathlib.Path(path)
    if (path / _DB_META_FILE).exists():
        return KIND_DATABASE
    if (path / _META_FILE).exists():
        return KIND_TABLE
    return None


def load_model(path: PathLike):
    """Load a saved model of either layout.

    Returns a :class:`repro.api.Synthesizer` for single-table saves and
    a :class:`repro.relational.DatabaseSynthesizer` for database saves.
    Worker processes call this on their own copy of the path, so it is
    deliberately a module function rather than a store method.
    """
    kind = model_kind(path)
    if kind == KIND_DATABASE:
        from ..relational.synthesizer import DatabaseSynthesizer

        return DatabaseSynthesizer.load(path)
    if kind == KIND_TABLE:
        return load_synthesizer(path)
    raise ModelNotFound(f"no saved synthesizer at {path}")


def read_model_info(name: str, path: PathLike) -> ModelInfo:
    """Read a saved model's metadata without loading its arrays."""
    path = pathlib.Path(path)
    kind = model_kind(path)
    if kind is None:
        raise ModelNotFound(f"no saved synthesizer at {path}")
    meta_file = _DB_META_FILE if kind == KIND_DATABASE else _META_FILE
    document = json.loads((path / meta_file).read_text())
    return ModelInfo(name=name, path=path, kind=kind,
                     method=str(document.get("method", "unknown")))


class ModelHandle:
    """A checked-out model; release via ``with`` or :meth:`release`."""

    def __init__(self, store: "ModelStore", name: str, model):
        self._store = store
        self.name = name
        self.model = model
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._store._release(self.name)

    def __enter__(self) -> "ModelHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _Entry:
    __slots__ = ("model", "refs", "ready", "error")

    def __init__(self):
        self.model = None
        self.refs = 0
        self.ready = threading.Event()
        self.error: Optional[BaseException] = None


class ModelStore:
    """Name-addressed cache of loaded synthesizers.

    Parameters
    ----------
    root:
        Directory holding one saved model per subdirectory.
    capacity:
        Resident-model budget.  The ``capacity+1``-th distinct checkout
        evicts the least-recently-used model *with no outstanding
        handles*; busy models are skipped, so the cache can transiently
        exceed ``capacity`` under concurrent traffic rather than break
        an in-flight request.
    """

    def __init__(self, root: PathLike, capacity: int = 4):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.root = pathlib.Path(root)
        self.capacity = capacity
        self._lock = threading.Lock()
        self._cache: "OrderedDict[str, _Entry]" = OrderedDict()
        self._info_cache: dict = {}

    # ------------------------------------------------------------------
    # Catalogue
    # ------------------------------------------------------------------
    def path(self, name: str) -> pathlib.Path:
        """Resolve ``name`` to its saved-model directory."""
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ModelNotFound(f"invalid model name {name!r}")
        path = self.root / name
        if model_kind(path) is None:
            raise ModelNotFound(
                f"no model named {name!r} under {self.root}")
        return path

    def info(self, name: str) -> ModelInfo:
        """Metadata for one model, cached after the first read.

        Saved models are immutable directories, so the kind/method
        never change — caching keeps per-request routing (the HTTP
        layer branches table-vs-database on every ``/sample``) off the
        disk.
        """
        with self._lock:
            cached = self._info_cache.get(name)
        if cached is not None:
            return cached
        info = read_model_info(name, self.path(name))
        with self._lock:
            self._info_cache[name] = info
        return info

    def list_models(self) -> List[ModelInfo]:
        """Metadata for every saved model under the root (sorted)."""
        if not self.root.is_dir():
            return []
        infos = []
        for child in sorted(self.root.iterdir()):
            if child.is_dir() and model_kind(child) is not None:
                infos.append(read_model_info(child.name, child))
        return infos

    def cached_models(self) -> List[str]:
        """Names currently resident, least- to most-recently used."""
        with self._lock:
            return [name for name, entry in self._cache.items()
                    if entry.ready.is_set() and entry.error is None]

    # ------------------------------------------------------------------
    # Checkout
    # ------------------------------------------------------------------
    def checkout(self, name: str) -> ModelHandle:
        """Borrow the loaded model called ``name``.

        Thread-safe: concurrent checkouts share one load (late arrivals
        block until the loader finishes), and the handle's reference
        count pins the model against LRU eviction until released.
        """
        path = self.path(name)
        with self._lock:
            entry = self._cache.get(name)
            is_loader = entry is None
            if is_loader:
                entry = _Entry()
                self._cache[name] = entry
            else:
                self._cache.move_to_end(name)
            # Count the reference *before* releasing the lock so the
            # entry is never evictable while this checkout is in flight.
            entry.refs += 1
        if is_loader:
            try:
                model = load_model(path)
            except Exception as exc:  # surface to all waiters, then drop
                with self._lock:
                    entry.error = exc
                    entry.refs -= 1
                    self._cache.pop(name, None)
                entry.ready.set()
                raise
            with self._lock:
                entry.model = model
                self._evict_idle_locked(keep=name)
            entry.ready.set()
        else:
            entry.ready.wait()
            if entry.error is not None:
                with self._lock:
                    entry.refs -= 1
                raise ServingError(
                    f"loading model {name!r} failed: {entry.error}"
                ) from entry.error
        return ModelHandle(self, name, entry.model)

    def _release(self, name: str) -> None:
        with self._lock:
            entry = self._cache.get(name)
            if entry is not None:
                entry.refs -= 1
                self._evict_idle_locked()

    def _evict_idle_locked(self, keep: Optional[str] = None) -> None:
        over = len(self._cache) - self.capacity
        if over <= 0:
            return
        for name in list(self._cache):
            if over <= 0:
                break
            entry = self._cache[name]
            if name != keep and entry.refs == 0 and entry.ready.is_set():
                del self._cache[name]
                over -= 1

    def evict(self, name: Optional[str] = None) -> None:
        """Drop a resident model (or all idle ones) from the cache.

        Models with outstanding handles are never dropped; they fall
        out on release.
        """
        with self._lock:
            names = [name] if name is not None else list(self._cache)
            for key in names:
                entry = self._cache.get(key)
                if entry is not None and entry.refs == 0 \
                        and entry.ready.is_set():
                    del self._cache[key]
