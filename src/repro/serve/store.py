"""Model store: persisted synthesizers by name, versioned, LRU-cached.

A store root is a directory of saved models, one subdirectory per
model name.  A model directory is either a bare save (legacy layout)
or a *versioned* directory of immutable releases with an ``ACTIVE``
pointer file naming the one being served::

    models/
      adult-gan/          # legacy: Synthesizer.save(...) directly
      adult-pb/
        v0001/            # one immutable release per publish
        v0002/
        ACTIVE            # contains "v0002"

:class:`ModelStore` resolves names through the ``ACTIVE`` pointer,
reads metadata without loading arrays, and lends out loaded models
through reference-counted :class:`ModelHandle`\\ s: checkout is
thread-safe, concurrent checkouts of the same name share one load, and
LRU eviction only ever drops models with no handle outstanding — an
in-flight request can never have its model evicted from under it.

:meth:`ModelStore.publish` is the hot-refresh primitive: it writes a
new version directory, swaps ``ACTIVE`` atomically (``os.replace``),
and detaches the cached old version.  Handles checked out before the
swap keep draining on the old model object — their reference counts
live on the detached cache entry, not the name — while every checkout
after the swap loads the new version.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import shutil
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..api.base import _ARRAYS_FILE, _META_FILE, PathLike, load_synthesizer
from ..check.lockorder import make_lock
from .errors import ModelNotFound, ServingError

#: Metadata file of a saved DatabaseSynthesizer directory (kept in sync
#: with repro.relational.synthesizer; imported lazily to avoid pulling
#: the relational stack into table-only services).
_DB_META_FILE = "database.json"

#: Model names are path components; keep them boring so a crafted name
#: can never escape the store root.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Version directories created by :meth:`ModelStore.publish`.
_VERSION_RE = re.compile(r"^v\d{4,}$")
_ACTIVE_FILE = "ACTIVE"

KIND_TABLE = "table"
KIND_DATABASE = "database"


@dataclass(frozen=True)
class ModelInfo:
    """One store entry's metadata (no arrays loaded)."""

    name: str
    path: pathlib.Path
    kind: str          # "table" | "database"
    method: str        # registered family ("gan", ..., "relational")
    version: Optional[str] = None   # active version; None for legacy saves


def model_kind(path: PathLike) -> Optional[str]:
    """The persistence layout found at ``path`` (``None`` if neither)."""
    path = pathlib.Path(path)
    if (path / _DB_META_FILE).exists():
        return KIND_DATABASE
    if (path / _META_FILE).exists():
        return KIND_TABLE
    return None


def load_model(path: PathLike):
    """Load a saved model of either layout.

    Returns a :class:`repro.api.Synthesizer` for single-table saves and
    a :class:`repro.relational.DatabaseSynthesizer` for database saves.
    Worker processes call this on their own copy of the path, so it is
    deliberately a module function rather than a store method.
    """
    kind = model_kind(path)
    if kind == KIND_DATABASE:
        from ..relational.synthesizer import DatabaseSynthesizer

        return DatabaseSynthesizer.load(path)
    if kind == KIND_TABLE:
        return load_synthesizer(path)
    raise ModelNotFound(f"no saved synthesizer at {path}")


def read_model_info(name: str, path: PathLike,
                    version: Optional[str] = None) -> ModelInfo:
    """Read a saved model's metadata without loading its arrays."""
    path = pathlib.Path(path)
    kind = model_kind(path)
    if kind is None:
        raise ModelNotFound(f"no saved synthesizer at {path}")
    meta_file = _DB_META_FILE if kind == KIND_DATABASE else _META_FILE
    document = json.loads((path / meta_file).read_text())
    return ModelInfo(name=name, path=path, kind=kind,
                     method=str(document.get("method", "unknown")),
                     version=version)


class ModelHandle:
    """A checked-out model; release via ``with`` or :meth:`release`."""

    def __init__(self, store: "ModelStore", name: str, model, entry):
        self._store = store
        self.name = name
        self.model = model
        self._entry = entry
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            # The handle releases the entry it checked out — which may
            # have been detached from the cache by a publish since.
            # Keying the release by name alone would decrement whatever
            # *newer* version now sits under the name, corrupting both
            # counts.
            self._store._release(self.name, self._entry)

    def __enter__(self) -> "ModelHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _Entry:
    __slots__ = ("model", "refs", "ready", "error")

    def __init__(self):
        self.model = None
        self.refs = 0
        self.ready = threading.Event()
        self.error: Optional[BaseException] = None


class ModelStore:
    """Name-addressed cache of loaded synthesizers.

    Parameters
    ----------
    root:
        Directory holding one saved model per subdirectory.
    capacity:
        Resident-model budget.  The ``capacity+1``-th distinct checkout
        evicts the least-recently-used model *with no outstanding
        handles*; busy models are skipped, so the cache can transiently
        exceed ``capacity`` under concurrent traffic rather than break
        an in-flight request.
    """

    def __init__(self, root: PathLike, capacity: int = 4):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.root = pathlib.Path(root)
        self.capacity = capacity
        self._lock = make_lock("store.cache")
        self._cache: "OrderedDict[str, _Entry]" = OrderedDict()
        self._info_cache: dict = {}

    def __getstate__(self):
        raise TypeError(
            "ModelStore is not picklable: it holds a cache lock and "
            "checkout refcounts that cannot cross a fork/pickle "
            "boundary; each process must open its own store")

    # ------------------------------------------------------------------
    # Catalogue
    # ------------------------------------------------------------------
    def _check_name(self, name: str) -> str:
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ModelNotFound(f"invalid model name {name!r}")
        return name

    def _resolve(self, name: str):
        """``(saved-model path, active version)`` for ``name``.

        A versioned directory resolves through its ``ACTIVE`` pointer;
        a bare save resolves to the model directory itself with version
        ``None``.
        """
        self._check_name(name)
        model_dir = self.root / name
        active = model_dir / _ACTIVE_FILE
        if active.is_file():
            version = active.read_text().strip()
            path = model_dir / version
            if not _VERSION_RE.match(version) or model_kind(path) is None:
                raise ServingError(
                    f"model {name!r} has a dangling ACTIVE pointer "
                    f"{version!r}")
            return path, version
        if model_kind(model_dir) is not None:
            return model_dir, None
        raise ModelNotFound(f"no model named {name!r} under {self.root}")

    def path(self, name: str) -> pathlib.Path:
        """Resolve ``name`` to its active saved-model directory."""
        return self._resolve(name)[0]

    def active_version(self, name: str) -> Optional[str]:
        """The version currently served (``None`` for legacy saves)."""
        return self._resolve(name)[1]

    def versions(self, name: str) -> List[str]:
        """All published versions of ``name``, oldest first."""
        self._check_name(name)
        model_dir = self.root / name
        if not model_dir.is_dir():
            raise ModelNotFound(
                f"no model named {name!r} under {self.root}")
        return sorted(child.name for child in model_dir.iterdir()
                      if child.is_dir() and _VERSION_RE.match(child.name)
                      and model_kind(child) is not None)

    def info(self, name: str) -> ModelInfo:
        """Metadata for one model, cached until the next publish.

        A version directory is immutable once published, so the
        kind/method/version never change under a cached entry —
        caching keeps per-request routing (the HTTP layer branches
        table-vs-database on every ``/sample``) off the disk.
        :meth:`publish` invalidates the entry when it swaps ``ACTIVE``.
        """
        with self._lock:
            cached = self._info_cache.get(name)
        if cached is not None:
            return cached
        path, version = self._resolve(name)
        info = read_model_info(name, path, version=version)
        with self._lock:
            self._info_cache[name] = info
        return info

    def list_models(self) -> List[ModelInfo]:
        """Metadata for every saved model under the root (sorted)."""
        if not self.root.is_dir():
            return []
        infos = []
        for child in sorted(self.root.iterdir()):
            if not child.is_dir():
                continue
            try:
                path, version = self._resolve(child.name)
            except (ModelNotFound, ServingError):
                continue
            infos.append(read_model_info(child.name, path, version=version))
        return infos

    def metadata(self, name: str) -> Dict[str, Dict[str, object]]:
        """Array shapes/dtypes of the active version, without data I/O.

        Streams only ``.npy`` headers out of the saved arrays (see
        :func:`repro.nn.serialization.state_manifest`), so listing a
        multi-gigabyte model version faults in no array pages.
        """
        from ..nn.serialization import state_manifest

        path = self.path(name)
        arrays = path / _ARRAYS_FILE
        if not arrays.exists():
            return {}
        return state_manifest(arrays)

    def cached_models(self) -> List[str]:
        """Names currently resident, least- to most-recently used."""
        with self._lock:
            return [name for name, entry in self._cache.items()
                    if entry.ready.is_set() and entry.error is None]

    # ------------------------------------------------------------------
    # Publish (hot refresh)
    # ------------------------------------------------------------------
    def publish(self, name: str, source) -> str:
        """Release a new version of ``name`` and make it active.

        ``source`` is either a directory containing a saved model or a
        live object with a ``save(path)`` method (a fitted
        synthesizer).  The new version directory is written first; only
        then is the ``ACTIVE`` pointer replaced atomically
        (``os.replace``), so a crash mid-publish leaves the old version
        serving.  Returns the new version string.

        In-flight checkouts of the old version are unaffected: the old
        cache entry is detached, its outstanding handles drain on their
        own reference counts, and the object is garbage-collected when
        the last one releases.
        """
        self._check_name(name)
        model_dir = self.root / name
        model_dir.mkdir(parents=True, exist_ok=True)
        with self._lock:
            existing = [int(child.name[1:]) for child in model_dir.iterdir()
                        if child.is_dir() and _VERSION_RE.match(child.name)]
            version = f"v{max(existing, default=0) + 1:04d}"
            target = model_dir / version
            # Claim the directory under the lock so concurrent
            # publishers of the same name pick distinct versions.
            target.mkdir()
        try:
            if hasattr(source, "save"):
                source.save(target)
            else:
                source_dir = pathlib.Path(source)
                if model_kind(source_dir) is None:
                    raise ServingError(
                        f"{source_dir} does not contain a saved model")
                shutil.copytree(source_dir, target, dirs_exist_ok=True)
            if model_kind(target) is None:
                raise ServingError(
                    f"publishing {name!r} produced no saved model in "
                    f"{target}")
        except Exception:
            shutil.rmtree(target, ignore_errors=True)
            raise
        tmp = model_dir / f".{_ACTIVE_FILE}.tmp"
        tmp.write_text(version)
        os.replace(tmp, model_dir / _ACTIVE_FILE)
        with self._lock:
            self._info_cache.pop(name, None)
            # Detach the old version's entry: outstanding handles keep
            # it (and their refcounts) alive; new checkouts re-load.
            self._cache.pop(name, None)
        return version

    # ------------------------------------------------------------------
    # Checkout
    # ------------------------------------------------------------------
    def checkout(self, name: str) -> ModelHandle:
        """Borrow the loaded model called ``name``.

        Thread-safe: concurrent checkouts share one load (late arrivals
        block until the loader finishes), and the handle's reference
        count pins the model against LRU eviction until released.
        """
        path = self.path(name)
        with self._lock:
            entry = self._cache.get(name)
            is_loader = entry is None
            if is_loader:
                entry = _Entry()
                self._cache[name] = entry
            else:
                self._cache.move_to_end(name)
            # Count the reference *before* releasing the lock so the
            # entry is never evictable while this checkout is in flight.
            entry.refs += 1
        if is_loader:
            try:
                model = load_model(path)
            except Exception as exc:  # surface to all waiters, then drop
                with self._lock:
                    entry.error = exc
                    entry.refs -= 1
                    if self._cache.get(name) is entry:
                        self._cache.pop(name)
                entry.ready.set()
                raise
            with self._lock:
                entry.model = model
                self._evict_idle_locked(keep=name)
            entry.ready.set()
        else:
            entry.ready.wait()
            if entry.error is not None:
                with self._lock:
                    entry.refs -= 1
                raise ServingError(
                    f"loading model {name!r} failed: {entry.error}"
                ) from entry.error
        return ModelHandle(self, name, entry.model, entry)

    def _release(self, name: str, entry: _Entry) -> None:
        with self._lock:
            entry.refs -= 1
            # Detached entries (replaced by a publish) are not in the
            # cache anymore; they simply garbage-collect when the last
            # handle lets go.
            if self._cache.get(name) is entry:
                self._evict_idle_locked()

    def _evict_idle_locked(self, keep: Optional[str] = None) -> None:
        over = len(self._cache) - self.capacity
        if over <= 0:
            return
        for name in list(self._cache):
            if over <= 0:
                break
            entry = self._cache[name]
            if name != keep and entry.refs == 0 and entry.ready.is_set():
                del self._cache[name]
                over -= 1

    def evict(self, name: Optional[str] = None) -> None:
        """Drop a resident model (or all idle ones) from the cache.

        Models with outstanding handles are never dropped; they fall
        out on release.
        """
        with self._lock:
            names = [name] if name is not None else list(self._cache)
            for key in names:
                entry = self._cache.get(key)
                if entry is not None and entry.refs == 0 \
                        and entry.ready.is_set():
                    del self._cache[key]
