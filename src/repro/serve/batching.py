"""Micro-batching scheduler: coalesce small requests into one pass.

Many concurrent clients asking for a few hundred rows each from the
same model is the worst case for per-request overhead: every request
pays the queue hop, session setup, and (per chunk) the python dispatch
around one generator GEMM.  The :class:`MicroBatcher` sits in front of
the worker pools and coalesces **unseeded** requests targeting the same
model into one generator pass (one combined ``sample`` of the summed
row counts), then splits the output back per request in arrival order.

Seeded requests are never coalesced — a request that pins its seed is
asking for an exact stream, which a shared pass cannot provide — and
flow through individually.

Flow control is explicit:

* the request queue is **bounded** — a full queue rejects new requests
  immediately with :class:`BackpressureError` (shed at the edge, don't
  let latency grow without bound);
* every request carries a deadline — waiting past it raises
  :class:`RequestTimeout` for the submitter, and the scheduler drops
  requests that expired while queued instead of running dead work.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Optional

from ..api.base import _count
from ..check.lockorder import make_condition
from ..datasets.schema import Table
from ..obs import clock as _obs_clock
from .errors import BackpressureError, PoolClosed, RequestTimeout

#: sampler(model_name, n, seed) -> Table; provided by the service layer.
#: When a request carries a trace the batcher calls it with an extra
#: ``trace=`` keyword, so service-layer samplers accept one.
Sampler = Callable[[str, int, Optional[int]], Table]

#: Requests-per-pass buckets for the coalesce-size histogram.
_COALESCE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def slice_rows(table: Table, start: int, stop: int) -> Table:
    """Row-range copy of a table (used to split a coalesced pass).

    Copies rather than views: a view would pin the whole coalesced
    pass's arrays alive for as long as any single request's slice is
    held, so one 512-row caller could retain the full 131072-row pass.
    """
    return Table(table.schema,
                 {name: table.columns[name][start:stop].copy()
                  for name in table.schema.names})


class _Request:
    __slots__ = ("model", "n", "seed", "deadline", "event", "result",
                 "error", "abandoned", "trace")

    def __init__(self, model: str, n: int, seed: Optional[int],
                 deadline: float, trace=None):
        self.model = model
        self.n = n
        self.seed = seed
        self.deadline = deadline
        self.event = threading.Event()
        self.result: Optional[Table] = None
        self.error: Optional[BaseException] = None
        self.abandoned = False
        self.trace = trace

    def finish(self, result: Optional[Table],
               error: Optional[BaseException] = None) -> None:
        self.result = result
        self.error = error
        self.event.set()


class MicroBatcher:
    """Bounded-queue request coalescer over a sampler callable.

    Parameters
    ----------
    sampler:
        ``(model_name, n, seed) -> Table``; the service layer passes the
        worker-pool entry point here.
    max_queue:
        Queue bound; submissions beyond it raise
        :class:`BackpressureError` immediately.
    max_delay:
        How long the scheduler holds the first request of a batch open
        for followers (seconds).  The latency cost of coalescing.
    max_coalesce_rows:
        Row budget per combined pass; a batch closes early when filled.
    timeout:
        Default per-request deadline (seconds).
    executor_threads:
        Concurrent batch executions.  Passes run on an executor so a
        long pass for one model never head-of-line blocks another
        model's requests behind the scheduler.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`.  ``None`` (the
        default) records nothing and pays nothing — the hot path
        carries no metric calls at all.
    """

    def __getstate__(self):
        raise TypeError(
            "MicroBatcher is not picklable: it holds its queue "
            "condition, scheduler thread, and executor; build one per "
            "process")

    def __init__(self, sampler: Sampler, *, max_queue: int = 256,
                 max_delay: float = 0.005,
                 max_coalesce_rows: int = 131072,
                 timeout: float = 30.0, executor_threads: int = 4,
                 metrics=None):
        self._sampler = sampler
        self._metrics = metrics
        if metrics is not None:
            self._m_depth = metrics.gauge(
                "repro_batcher_queue_depth",
                "Requests currently queued in the micro-batcher.")
            self._m_coalesce = metrics.histogram(
                "repro_batcher_coalesce_size",
                "Requests coalesced into each executed pass.",
                buckets=_COALESCE_BUCKETS)
            self._m_requests = metrics.counter(
                "repro_batcher_requests_total",
                "Batcher requests by outcome.", labelnames=("outcome",))
        self.max_queue = _count("max_queue", max_queue, minimum=1)
        self.max_delay = float(max_delay)
        self.max_coalesce_rows = _count("max_coalesce_rows",
                                        max_coalesce_rows, minimum=1)
        self.timeout = float(timeout)
        self._max_concurrent = _count("executor_threads",
                                      executor_threads, minimum=1)
        self._executor = ThreadPoolExecutor(
            max_workers=self._max_concurrent,
            thread_name_prefix="repro-serve-batch")
        self._running = 0
        self._queue: deque = deque()
        self._cond = make_condition("batcher.queue")
        self._closed = False
        self.stats: Dict[str, int] = {
            "submitted": 0, "rejected": 0, "timeouts": 0,
            "coalesced_batches": 0, "coalesced_requests": 0,
            "solo_requests": 0, "rows_served": 0,
        }
        self._scheduler = threading.Thread(
            target=self._run, daemon=True, name="repro-serve-batcher")
        self._scheduler.start()

    def _count_outcome(self, outcome: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._m_requests.inc(amount, outcome=outcome)

    def _note_depth(self) -> None:
        # Callers hold self._cond.
        if self._metrics is not None:
            self._m_depth.set(len(self._queue))

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def submit(self, model: str, n: int, seed: Optional[int] = None,
               timeout: Optional[float] = None, trace=None) -> Table:
        """Enqueue one request and block until its rows are ready.

        Raises :class:`BackpressureError` immediately when the queue is
        full and :class:`RequestTimeout` when the deadline passes
        first; a timed-out request's late result is discarded.

        ``trace`` (a :class:`repro.obs.Trace`) rides along to the
        sampler so a traced request's spans cover the coalesced pass
        that actually served it.
        """
        n = _count("n", n, minimum=1)
        timeout = self.timeout if timeout is None else float(timeout)
        request = _Request(model, n, seed,
                           _obs_clock.monotonic() + timeout, trace=trace)
        with self._cond:
            if self._closed:
                raise PoolClosed("micro-batcher is closed")
            if len(self._queue) >= self.max_queue:
                self.stats["rejected"] += 1
                self._count_outcome("rejected")
                raise BackpressureError(
                    f"request queue is full ({self.max_queue} pending); "
                    "retry with backoff")
            self._queue.append(request)
            self.stats["submitted"] += 1
            self._note_depth()
            self._cond.notify_all()
        if not request.event.wait(timeout):
            request.abandoned = True
            with self._cond:
                self.stats["timeouts"] += 1
            self._count_outcome("timeout")
            raise RequestTimeout(
                f"request for {n} rows of {model!r} missed its "
                f"{timeout:.3g}s deadline")
        if request.error is not None:
            raise request.error
        return request.result

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            drained = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        for request in drained:
            request.finish(None, PoolClosed("micro-batcher closed"))
        self._scheduler.join(timeout=5.0)
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Scheduler side
    # ------------------------------------------------------------------
    def _next_request(self) -> Optional[_Request]:
        with self._cond:
            while not self._queue and not self._closed:
                self._cond.wait()
            if self._closed and not self._queue:
                return None
            head = self._queue.popleft()
            self._note_depth()
            return head

    def _gather_followers(self, head: _Request) -> list:
        """Hold the batch open up to ``max_delay`` for coalescible
        followers: unseeded requests for the same model, within the
        row budget.  Waits on the submission condition (woken by every
        ``submit``) rather than polling."""
        group = [head]
        total = head.n
        deadline = _obs_clock.monotonic() + self.max_delay
        with self._cond:
            while total < self.max_coalesce_rows and not self._closed:
                follower = None
                for candidate in self._queue:
                    if candidate.model == head.model \
                            and candidate.seed is None \
                            and total + candidate.n \
                            <= self.max_coalesce_rows:
                        follower = candidate
                        break
                if follower is not None:
                    self._queue.remove(follower)
                    self._note_depth()
                    group.append(follower)
                    total += follower.n
                    continue
                remaining = deadline - _obs_clock.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
        return group

    def _run(self) -> None:
        while True:
            head = self._next_request()
            if head is None:
                return
            now = _obs_clock.monotonic()
            if head.abandoned or now >= head.deadline:
                head.finish(None, RequestTimeout("expired while queued"))
                self._count_outcome("expired")
                continue
            group = ([head] if head.seed is not None
                     else self._gather_followers(head))
            # Execution happens off-thread so one model's slow pass
            # cannot starve another model's queued requests — but only
            # up to executor_threads passes at once: past that the
            # scheduler stalls here, the bounded queue fills, and
            # submit() starts shedding load.  Dispatching into an
            # unbounded executor queue would silently disable
            # backpressure.
            with self._cond:
                while self._running >= self._max_concurrent \
                        and not self._closed:
                    self._cond.wait(0.05)
                if self._closed:
                    head_group = group
                    for request in head_group:
                        request.finish(None,
                                       PoolClosed("micro-batcher closed"))
                    return
                self._running += 1
            self._executor.submit(self._run_pass, group)

    def _run_pass(self, group: list) -> None:
        try:
            self._execute(group)
        finally:
            with self._cond:
                self._running -= 1
                self._cond.notify_all()

    def _execute(self, group: list) -> None:
        live = [r for r in group if not r.abandoned
                and _obs_clock.monotonic() < r.deadline]
        expired = len(group) - len(live)
        for request in group:
            if request not in live:
                request.finish(None, RequestTimeout("expired while queued"))
        if expired:
            self._count_outcome("expired", expired)
        if not live:
            return
        total = sum(r.n for r in live)
        seed = live[0].seed if len(live) == 1 else None
        # Any live request's trace covers the pass (coalesced groups
        # are unseeded, so at most the head is traced in practice).
        trace = next((r.trace for r in live if r.trace is not None), None)
        if self._metrics is not None:
            self._m_coalesce.observe(len(live))
        try:
            if trace is None:
                table = self._sampler(live[0].model, total, seed)
            else:
                with trace.span("batch", model=live[0].model,
                                requests=len(live), rows=total):
                    table = self._sampler(live[0].model, total, seed,
                                          trace=trace)
        except BaseException as exc:
            for request in live:
                request.finish(None, exc)
            self._count_outcome("error", len(live))
            return
        with self._cond:
            self.stats["rows_served"] += total
            if len(live) > 1:
                self.stats["coalesced_batches"] += 1
                self.stats["coalesced_requests"] += len(live)
            else:
                self.stats["solo_requests"] += 1
        offset = 0
        for request in live:
            request.finish(slice_rows(table, offset, offset + request.n))
            offset += request.n
        self._count_outcome("ok", len(live))
