"""``python -m repro.serve MODELS_DIR [--port 8000] [--workers 4]``.

Serves every saved model under ``MODELS_DIR`` over HTTP until
interrupted.  See :mod:`repro.serve.http` for the endpoint reference.
"""

from __future__ import annotations

import argparse

from .http import DEFAULT_STREAM_THRESHOLD, SynthesisServer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve saved synthesizers over HTTP.")
    parser.add_argument("root", help="model-store directory "
                                     "(one saved model per subdirectory)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes per model pool "
                             "(0 = inline, no multiprocessing)")
    parser.add_argument("--stream-threshold", type=int,
                        default=DEFAULT_STREAM_THRESHOLD,
                        help="CSV responses with n >= this stream chunked")
    parser.add_argument("--degraded", choices=("reject", "inline"),
                        default="reject",
                        help="behaviour while a model's circuit is "
                             "open: 'reject' fails fast with 503, "
                             "'inline' serves slower in-process "
                             "(bit-identical) until the pool heals")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request")
    args = parser.parse_args(argv)

    server = SynthesisServer(args.root, host=args.host, port=args.port,
                             workers=args.workers,
                             stream_threshold=args.stream_threshold,
                             verbose=args.verbose,
                             degraded=args.degraded)
    print(f"serving models from {args.root!r} at {server.url} "
          f"({args.workers} workers/model; Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
