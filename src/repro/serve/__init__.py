"""repro.serve — multi-worker synthesis serving over saved models.

The consumer-facing layer of the reproduction: load persisted
synthesizers by name, shard ``sample`` requests across worker
processes with bit-identical reassembly, coalesce small concurrent
requests, and expose it all over a dependency-free HTTP API.

Layers (composable bottom-up)::

    ModelStore        name -> loaded model, versioned, LRU + refcounted
    WorkerPool        one model, N processes, sharded-seed sampling
    MicroBatcher      coalesce small unseeded requests, backpressure
    SynthesisService  store + pools + batcher, request routing
    SynthesisServer   ThreadingHTTPServer front end

Hot refresh: ``service.publish(name, synthesizer_or_dir)`` writes an
immutable new version directory, swaps the model's ``ACTIVE`` pointer
atomically, and boots a fresh pool on the new version — requests in
flight on the old version drain untouched (seeded streams stay
bit-identical end to end), and the old pool is closed once idle.

Quick start::

    from repro.serve import SynthesisServer, WorkerPool

    # direct, deterministic, parallel:
    with WorkerPool("models/adult-gan", workers=4) as pool:
        table = pool.sample(1_000_000, seed=7)   # == local sample(...)

    # or the whole service over HTTP:
    with SynthesisServer("models/", workers=4).start() as server:
        print(server.url)   # POST /models/adult-gan/sample

Or from a shell: ``python -m repro.serve models/ --port 8000``.

The determinism contract: ``pool.sample(n, batch=b, seed=s)`` is
bit-identical to ``Synthesizer.sample(n, batch=b, seed=s)`` for any
worker count — chunk ``i`` always derives its RNG from the substream
``(s, "chunk", i)`` (see :mod:`repro.api.seeding`), so where a chunk
runs never changes what it contains.
"""

from .batching import MicroBatcher
from .circuit import CircuitBreaker, RespawnBackoff
from .errors import (
    BackpressureError, CircuitOpen, ModelNotFound, PoolClosed,
    RequestTimeout, ServingError, WorkerError,
)
from .faults import FAULT_EXIT_CODE, FaultInjected, FaultPlan
from .http import SynthesisServer
from .pool import WorkerPool
from .service import SynthesisService
from .store import ModelHandle, ModelInfo, ModelStore, load_model

__all__ = [
    "ModelStore", "ModelHandle", "ModelInfo", "load_model",
    "WorkerPool", "MicroBatcher", "SynthesisService", "SynthesisServer",
    "CircuitBreaker", "RespawnBackoff",
    "FaultPlan", "FaultInjected", "FAULT_EXIT_CODE",
    "ServingError", "ModelNotFound", "BackpressureError",
    "RequestTimeout", "WorkerError", "PoolClosed", "CircuitOpen",
]
