"""Wire encodings for served tables: JSON columns and streaming CSV.

Tables travel internally as category *codes* plus schema; on the wire
clients want decoded values (category labels, rounded integrals).
These helpers are pure functions over :class:`~repro.datasets.schema`
objects so both the HTTP front end and offline exporters share one
encoding.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, Iterator, List

from ..datasets.schema import Attribute, Schema, Table


def _decoded_column(table: Table, attribute: Attribute) -> List:
    values = table.column(attribute.name)
    if attribute.is_categorical:
        categories = attribute.categories
        return [categories[int(code)] for code in values]
    if attribute.integral:
        return [int(round(float(v))) for v in values]
    return [float(v) for v in values]


def columns_payload(table: Table) -> Dict[str, List]:
    """JSON-ready ``{column: values}`` with categories decoded."""
    return {attribute.name: _decoded_column(table, attribute)
            for attribute in table.schema}


def schema_payload(schema: Schema) -> Dict:
    """JSON-ready column descriptions (kind, categories, label)."""
    return {
        "label": schema.label_name,
        "columns": [
            {"name": a.name, "kind": a.kind,
             **({"categories": list(a.categories)}
                if a.is_categorical else {"integral": a.integral})}
            for a in schema
        ],
    }


def csv_header(schema: Schema) -> str:
    buffer = io.StringIO()
    csv.writer(buffer).writerow(schema.names)
    return buffer.getvalue()


def csv_rows(table: Table) -> str:
    """One CSV fragment (no header) for a table chunk."""
    columns = [_decoded_column(table, attribute)
               for attribute in table.schema]
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    for row in zip(*columns):
        writer.writerow(row)
    return buffer.getvalue()


def csv_stream(chunks: Iterable[Table], schema: Schema) -> Iterator[str]:
    """Header followed by per-chunk row fragments — feed a chunked
    HTTP response without materializing the full table."""
    yield csv_header(schema)
    for chunk in chunks:
        yield csv_rows(chunk)


def database_payload(database) -> Dict:
    """JSON-ready multi-table payload for a served database draw."""
    return {
        "tables": {name: {"n": len(database[name]),
                          "columns": columns_payload(database[name])}
                   for name in database.table_names},
        "foreign_keys": [fk.to_dict() for fk in database.foreign_keys],
    }
