"""Pretty-print metrics: ``python -m repro.obs [source]``.

Sources, tried in order of what the argument looks like:

* no argument — the current process's default registry (mostly useful
  under ``REPRO_PROFILE=1``, where the engine profile is appended);
* ``http(s)://...`` — scrape a ``/metrics`` endpoint;
* ``-`` — read exposition text from stdin;
* anything else — a file containing exposition text.
"""

from __future__ import annotations

import argparse
import sys
import urllib.request

from .export import parse_prometheus, render_json, render_prometheus
from .metrics import get_registry
from .profile import profile_report, profiling_enabled


def _read_source(source: str) -> str:
    if source == "-":
        return sys.stdin.read()
    if source.startswith("http://") or source.startswith("https://"):
        with urllib.request.urlopen(source, timeout=10.0) as response:
            return response.read().decode("utf-8")
    with open(source, "r", encoding="utf-8") as handle:
        return handle.read()


def _pretty(text: str) -> str:
    samples = parse_prometheus(text)
    if not samples:
        return "(no samples)"
    width = max(len(name) for name in samples)
    lines = []
    for name in sorted(samples):
        for labels, value in samples[name]:
            label_text = ",".join(
                f"{k}={v}" for k, v in sorted(labels.items()))
            lines.append(f"{name:<{width}}  "
                         f"{{{label_text}}}  {value:g}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Pretty-print repro metrics from the process "
                    "registry, a /metrics URL, a file, or stdin (-).")
    parser.add_argument("source", nargs="?", default=None,
                        help="URL, file path, or '-' for stdin; omit "
                             "for the in-process registry")
    parser.add_argument("--json", action="store_true",
                        help="emit the registry snapshot as JSON "
                             "(in-process source only)")
    args = parser.parse_args(argv)

    if args.source is None:
        registry = get_registry()
        if args.json:
            print(render_json(registry.snapshot()))
        else:
            print(_pretty(render_prometheus(registry.snapshot())))
        if profiling_enabled():
            print()
            print(profile_report())
        return 0

    if args.json:
        print("--json applies to the in-process registry only",
              file=sys.stderr)
        return 2
    print(_pretty(_read_source(args.source)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
