"""Thread-safe metrics registry: counters, gauges, histograms.

Dependency-free instrumentation for the serving / streaming stack.  A
:class:`MetricsRegistry` owns a flat namespace of named instruments;
each instrument carries a fixed tuple of label names and holds one
series per observed label-value combination:

    registry = MetricsRegistry()
    chunks = registry.counter(
        "repro_pool_chunks_total", "Chunks delivered to requests.",
        labelnames=("model", "source"))
    chunks.inc(1, model="adult-gan", source="worker")

Design constraints, in order:

* **Near-zero cost when disabled.**  Every mutator's first statement is
  a plain attribute test against the registry's ``enabled`` flag — no
  lock, no dict lookup, no allocation.  Hot paths that want *literal*
  zero cost (the worker pool, the micro-batcher) instead take
  ``metrics=None`` and skip the call entirely.
* **Exact under concurrency.**  Mutations take the registry lock, so N
  threads incrementing a counter M times yield exactly N*M.
* **Mergeable snapshots.**  :meth:`MetricsRegistry.snapshot` returns a
  plain-dict copy; :meth:`MetricsRegistry.merge` folds one registry's
  snapshot into another (counters and histogram bins add, gauges take
  the incoming value) for cross-process aggregation.

Histograms use fixed exponential buckets (default 0.5 ms doubling to
~16 s — request-latency shaped) and render Prometheus-style cumulative
``le`` buckets via :mod:`repro.obs.export`.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Tuple

from ..check.lockorder import make_lock

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_BUCKETS", "get_registry",
]

#: 0.5 ms doubling through ~16.4 s: 16 bounds + the implicit +Inf.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    0.0005 * (2.0 ** i) for i in range(16))

LabelKey = Tuple[str, ...]


class _Instrument:
    """Shared plumbing: name, help text, label schema, series table."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 help_text: str, labelnames: Tuple[str, ...]):
        self._registry = registry
        self.name = name
        self.help = help_text
        self.labelnames = labelnames

    def _key(self, labels: Dict[str, str]) -> LabelKey:
        if len(labels) != len(self.labelnames) or \
                any(name not in labels for name in self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{list(self.labelnames)}, got {sorted(labels)}")
        return tuple(str(labels[name]) for name in self.labelnames)


class Counter(_Instrument):
    """Monotonically increasing count (events, rows, retries)."""

    kind = "counter"

    def __init__(self, registry, name, help_text, labelnames):
        super().__init__(registry, name, help_text, labelnames)
        self._series: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        if amount < 0:
            raise ValueError(
                f"amount must be >= 0, got {amount!r}: counters only "
                f"go up (use a Gauge for signed values)")
        key = self._key(labels)
        with registry._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._registry._lock:
            return self._series.get(self._key(labels), 0.0)


class Gauge(_Instrument):
    """A value that goes up and down (queue depth, circuit state)."""

    kind = "gauge"

    def __init__(self, registry, name, help_text, labelnames):
        super().__init__(registry, name, help_text, labelnames)
        self._series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        key = self._key(labels)
        with registry._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        key = self._key(labels)
        with registry._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        with self._registry._lock:
            return self._series.get(self._key(labels), 0.0)


class Histogram(_Instrument):
    """Distribution over fixed buckets (latencies, batch sizes).

    Buckets are *upper bounds*; an observation lands in the first
    bucket whose bound is >= the value, or the implicit overflow
    (``+Inf``) bin past the last bound.  Per-bin counts are stored
    non-cumulative and cumulated at export time.
    """

    kind = "histogram"

    def __init__(self, registry, name, help_text, labelnames,
                 buckets: Tuple[float, ...]):
        super().__init__(registry, name, help_text, labelnames)
        self.buckets = buckets
        self._series: Dict[LabelKey, Dict[str, object]] = {}

    def observe(self, value: float, **labels: str) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        key = self._key(labels)
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with registry._lock:
            cell = self._series.get(key)
            if cell is None:
                cell = self._series[key] = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0, "count": 0}
            cell["counts"][index] += 1
            cell["sum"] += value
            cell["count"] += 1

    def count(self, **labels: str) -> int:
        with self._registry._lock:
            cell = self._series.get(self._key(labels))
            return 0 if cell is None else int(cell["count"])


class MetricsRegistry:
    """A namespace of instruments plus the lock they all mutate under.

    Getter-or-creator semantics: asking for an existing name returns
    the existing instrument, provided the kind and label schema match
    (a mismatch raises ``ValueError`` — two call sites disagreeing on
    a metric's shape is a bug, not a merge).
    """

    def __getstate__(self):
        raise TypeError(
            "MetricsRegistry is not picklable: it holds the process's "
            "series lock; ship snapshot() dicts across processes and "
            "merge() them instead")

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._lock = make_lock("obs.registry")
        self._instruments: Dict[str, _Instrument] = {}

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- instrument construction --------------------------------------
    def _get_or_create(self, cls, name: str, help_text: str,
                       labelnames: Iterable[str], **extra) -> _Instrument:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or \
                        existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric name {name!r} already registered as "
                        f"{existing.kind} with labels "
                        f"{list(existing.labelnames)}")
                return existing
            instrument = cls(self, name, help_text, labelnames, **extra)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        bounds = (DEFAULT_BUCKETS if buckets is None
                  else tuple(float(b) for b in buckets))
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"buckets must be a non-empty strictly increasing "
                f"sequence, got {list(bounds)!r}")
        instrument = self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=bounds)
        if instrument.buckets != bounds:
            raise ValueError(
                f"metric name {name!r} already registered with buckets "
                f"{list(instrument.buckets)}")
        return instrument

    # -- snapshot / merge ---------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A deep plain-dict copy of every series (JSON-shapeable by
        :func:`repro.obs.export.render_json`)."""
        out: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for name, inst in self._instruments.items():
                entry: Dict[str, object] = {
                    "type": inst.kind, "help": inst.help,
                    "labelnames": inst.labelnames,
                }
                if isinstance(inst, Histogram):
                    entry["buckets"] = inst.buckets
                    entry["series"] = {
                        key: {"counts": list(cell["counts"]),
                              "sum": cell["sum"], "count": cell["count"]}
                        for key, cell in inst._series.items()}
                else:
                    entry["series"] = dict(inst._series)
                out[name] = entry
        return out

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram bins add; gauges take the incoming value
        (last write wins — a gauge is a level, not a flow).  Metrics
        absent here are created from the snapshot's metadata.
        """
        for name, entry in snapshot.items():
            kind = entry["type"]
            labelnames = tuple(entry["labelnames"])
            if kind == "counter":
                inst = self.counter(name, entry.get("help", ""), labelnames)
                with self._lock:
                    for key, value in entry["series"].items():
                        key = tuple(key)
                        inst._series[key] = \
                            inst._series.get(key, 0.0) + value
            elif kind == "gauge":
                inst = self.gauge(name, entry.get("help", ""), labelnames)
                with self._lock:
                    for key, value in entry["series"].items():
                        inst._series[tuple(key)] = float(value)
            elif kind == "histogram":
                inst = self.histogram(name, entry.get("help", ""),
                                      labelnames,
                                      buckets=entry["buckets"])
                with self._lock:
                    for key, cell in entry["series"].items():
                        key = tuple(key)
                        mine = inst._series.get(key)
                        if mine is None:
                            mine = inst._series[key] = {
                                "counts": [0] * (len(inst.buckets) + 1),
                                "sum": 0.0, "count": 0}
                        for i, c in enumerate(cell["counts"]):
                            mine["counts"][i] += c
                        mine["sum"] += cell["sum"]
                        mine["count"] += cell["count"]
            else:
                raise ValueError(
                    f"snapshot entry {name!r} has unknown type {kind!r}")


#: Process-global default registry: the service layer records into it
#: unless handed an explicit one, and ``GET /metrics`` renders it.
#: ``REPRO_METRICS=0`` in the environment starts it disabled.
_default_registry: Optional[MetricsRegistry] = None


def get_registry() -> MetricsRegistry:
    """The process-global registry (created on first use)."""
    global _default_registry
    if _default_registry is None:
        enabled = os.environ.get("REPRO_METRICS", "1") != "0"
        _default_registry = MetricsRegistry(enabled=enabled)
    return _default_registry
