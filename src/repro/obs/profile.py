"""Opt-in engine profiling: per-tape-op timings + ArrayPool hit rates.

Off by default and literally free when off: the engine's hooks are
class attributes (``Tensor._profiler`` / ``ArrayPool._profiler``) that
hold ``None`` until :func:`enable_profiling` installs a collector —
the hot path pays one attribute test, the same pattern the sanitizer
tracker uses.  Set ``REPRO_PROFILE=1`` in the environment to enable at
import, or call :func:`enable_profiling` directly.

What is measured:

* **Backward time per op** — exact: the tape walk times each node's
  backward closure around its call.
* **Forward time per op** — approximate by construction: ops are plain
  functions, so the collector attributes the gap between consecutive
  tape-node creations to the op just created (its forward compute is
  what ran in that gap).  Gaps longer than
  :data:`_FORWARD_GAP_CUTOFF` (Python-side stalls between steps) are
  dropped rather than attributed.
* **ArrayPool traffic** — take hits/misses and puts, per process.

Summaries come from :func:`profile_report` (text table) or
:func:`profile_snapshot` (plain dict, for tests).
"""

from __future__ import annotations

from typing import Dict, Optional

from . import clock as _clock

__all__ = [
    "enable_profiling", "disable_profiling", "profiling_enabled",
    "reset_profile", "profile_report", "profile_snapshot",
]

#: Inter-op gaps above this are dead time between steps, not forward
#: compute; attributing them would swamp the per-op numbers.
_FORWARD_GAP_CUTOFF = 0.050


def _op_name(backward_fn) -> str:
    """The tape op behind a backward closure: ``matmul.<locals>.backward``
    → ``matmul``, ``Tensor.__add__.<locals>.backward`` → ``__add__``."""
    qualname = getattr(backward_fn, "__qualname__", "?")
    return qualname.split(".<locals>.")[0].split(".")[-1]


class _Profiler:
    """The collector the engine hooks call into.

    Plain dict updates without a lock: the engine is single-threaded
    per model and profiling is a diagnostic — a rare lost count under
    concurrent models is acceptable, a lock on every tape op is not.
    """

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.forward_seconds: Dict[str, float] = {}
        self.forward_calls: Dict[str, int] = {}
        self.backward_seconds: Dict[str, float] = {}
        self.backward_calls: Dict[str, int] = {}
        self.pool_hits = 0
        self.pool_misses = 0
        self.pool_puts = 0
        self._last_make: Optional[float] = None

    # -- engine hooks (hot path) --------------------------------------
    def on_make(self, backward_fn) -> None:
        now = _clock.perf()
        last = self._last_make
        self._last_make = now
        if last is None:
            return
        gap = now - last
        if gap > _FORWARD_GAP_CUTOFF:
            return
        op = _op_name(backward_fn)
        self.forward_seconds[op] = self.forward_seconds.get(op, 0.0) + gap
        self.forward_calls[op] = self.forward_calls.get(op, 0) + 1

    def backward_start(self) -> float:
        return _clock.perf()

    def backward_end(self, started: float, backward_fn) -> None:
        op = _op_name(backward_fn)
        took = _clock.perf() - started
        self.backward_seconds[op] = \
            self.backward_seconds.get(op, 0.0) + took
        self.backward_calls[op] = self.backward_calls.get(op, 0) + 1

    def on_pool(self, hit: bool) -> None:
        if hit:
            self.pool_hits += 1
        else:
            self.pool_misses += 1

    def on_put(self) -> None:
        self.pool_puts += 1


_profiler: Optional[_Profiler] = None


def _engine_classes():
    # Imported lazily: repro.obs must not drag the numpy engine in for
    # callers that only want metrics or the /metrics endpoint.
    from ..nn.tensor import ArrayPool, Tensor
    return Tensor, ArrayPool


def enable_profiling() -> None:
    """Install the collector on the engine's class-attribute hooks."""
    global _profiler
    if _profiler is None:
        _profiler = _Profiler()
    Tensor, ArrayPool = _engine_classes()
    Tensor._profiler = _profiler
    ArrayPool._profiler = _profiler


def disable_profiling() -> None:
    """Remove the hooks; collected data stays readable."""
    Tensor, ArrayPool = _engine_classes()
    Tensor._profiler = None
    ArrayPool._profiler = None


def profiling_enabled() -> bool:
    if _profiler is None:
        return False
    Tensor, _ = _engine_classes()
    return Tensor._profiler is _profiler


def reset_profile() -> None:
    if _profiler is not None:
        _profiler.reset()


def profile_snapshot() -> Dict[str, object]:
    """The collected numbers as a plain dict (empty if never enabled)."""
    if _profiler is None:
        return {"ops": {}, "pool": {"hits": 0, "misses": 0, "puts": 0}}
    ops: Dict[str, Dict[str, float]] = {}
    names = (set(_profiler.forward_seconds) |
             set(_profiler.backward_seconds))
    for op in names:
        ops[op] = {
            "forward_seconds": _profiler.forward_seconds.get(op, 0.0),
            "forward_calls": _profiler.forward_calls.get(op, 0),
            "backward_seconds": _profiler.backward_seconds.get(op, 0.0),
            "backward_calls": _profiler.backward_calls.get(op, 0),
        }
    return {
        "ops": ops,
        "pool": {"hits": _profiler.pool_hits,
                 "misses": _profiler.pool_misses,
                 "puts": _profiler.pool_puts},
    }


def profile_report() -> str:
    """Per-op timing table plus pool hit rate, sorted by total time."""
    snap = profile_snapshot()
    ops = snap["ops"]
    lines = [f"{'op':<16} {'fwd ms':>10} {'fwd n':>8} "
             f"{'bwd ms':>10} {'bwd n':>8}"]
    total = {"f": 0.0, "b": 0.0}
    for op in sorted(ops, key=lambda o: -(ops[o]["forward_seconds"] +
                                          ops[o]["backward_seconds"])):
        cell = ops[op]
        total["f"] += cell["forward_seconds"]
        total["b"] += cell["backward_seconds"]
        lines.append(
            f"{op:<16} {cell['forward_seconds'] * 1000:>10.2f} "
            f"{cell['forward_calls']:>8d} "
            f"{cell['backward_seconds'] * 1000:>10.2f} "
            f"{cell['backward_calls']:>8d}")
    lines.append(
        f"{'total':<16} {total['f'] * 1000:>10.2f} {'':>8} "
        f"{total['b'] * 1000:>10.2f} {'':>8}")
    pool = snap["pool"]
    takes = pool["hits"] + pool["misses"]
    rate = (100.0 * pool["hits"] / takes) if takes else 0.0
    lines.append(
        f"ArrayPool: {pool['hits']} hits / {pool['misses']} misses "
        f"({rate:.1f}% hit rate), {pool['puts']} puts")
    return "\n".join(lines)
