"""Lightweight spans with explicit context propagation.

No thread-locals, no global collector: a :class:`Trace` is an ordinary
object the caller threads through the code path it wants to watch
(``service.sample(..., trace=t)`` → ``MicroBatcher.submit`` →
``WorkerPool.sample`` → worker processes).  Spans are plain dicts at
the transport layer, so workers can time their chunk loop with zero
knowledge of this module's classes and ship ``span.to_dict()`` back
over the per-slot result pipes; the parent stitches them into the
request trace as they arrive.

Worker death is part of the model, not an error case: when a chunk is
re-dispatched after a kill, the re-executed chunk's span is adopted
with a ``retry`` tag and a ``#r<n>`` span-id suffix, so a recovered
request shows *retry spans*, not gaps — and the chunk coverage of the
trace (which chunk indices completed) is identical with and without
the kill.

Timestamps come from :func:`repro.obs.clock.perf`; under a
:class:`~repro.obs.clock.ManualClock` whole traces are exact values.
"""

from __future__ import annotations

import itertools
import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from ..check.lockorder import make_lock
from . import clock as _clock

__all__ = ["Span", "Trace"]

_ids = itertools.count(1)


class Span:
    """One timed region: identity, parentage, and tags.

    ``start``/``end`` are :func:`repro.obs.clock.perf` readings in the
    process that ran the span; durations are meaningful everywhere,
    absolute values only within one process.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "tags")

    def __init__(self, span_id: str, name: str, start: float,
                 end: Optional[float] = None,
                 parent_id: Optional[str] = None,
                 tags: Optional[Dict[str, object]] = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = float(start)
        self.end = None if end is None else float(end)
        self.tags: Dict[str, object] = dict(tags or {})

    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.span_id!r} is still open")
        return self.end - self.start

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id, "parent_id": self.parent_id,
            "name": self.name, "start": self.start, "end": self.end,
            "tags": dict(self.tags),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Span":
        return cls(
            span_id=str(payload["span_id"]), name=str(payload["name"]),
            start=payload["start"], end=payload.get("end"),
            parent_id=payload.get("parent_id"),
            tags=payload.get("tags"),
        )

    def __repr__(self) -> str:
        took = "open" if self.end is None else f"{self.duration():.6f}s"
        return f"Span({self.span_id!r}, name={self.name!r}, {took})"


class Trace:
    """A request's span tree, collected parent-side.

    The trace owns a ``root`` span covering the whole request; child
    spans attach to it either via the :meth:`span` context manager
    (parent-process work: queueing, dispatch) or via :meth:`add`
    (worker-shipped dicts).  Thread-safe: pool reader threads and the
    request thread stitch concurrently.
    """

    def __getstate__(self):
        raise TypeError(
            "Trace is not picklable: it holds a stitching lock; ship "
            "plain span dicts (Span.to_dict) across processes instead")

    def __init__(self, name: str = "request",
                 tags: Optional[Dict[str, object]] = None):
        # No wall clock in the id: pid + process-local counter is unique
        # enough for stitching and keeps traces deterministic under test.
        self.trace_id = f"trace-{os.getpid()}-{next(_ids)}"
        self._lock = make_lock("obs.trace")
        self.root = Span("root", name, _clock.perf(), tags=tags)
        self._spans: List[Span] = []
        self._seen: Dict[str, int] = {}

    # -- collection ----------------------------------------------------
    @contextmanager
    def span(self, name: str, span_id: Optional[str] = None,
             **tags: object) -> Iterator[Span]:
        """Time a parent-process region as a child of root."""
        sp = Span(span_id or f"{name}-{next(_ids)}", name,
                  _clock.perf(), parent_id="root", tags=tags)
        try:
            yield sp
        finally:
            sp.end = _clock.perf()
            with self._lock:
                self._spans.append(sp)

    def add(self, payload: Dict[str, object], retry: int = 0) -> Span:
        """Stitch a worker-shipped span dict into the trace.

        ``retry`` is how many times this unit of work had been requeued
        when the span arrived; retried executions get a ``retry`` tag
        and a ``#r<n>`` id suffix so they read as retry spans rather
        than silently replacing the first attempt.  A genuine id
        collision (same id, same retry count — e.g. a stale duplicate
        from a killed worker) gets ``#dup<n>`` instead of being lost.
        """
        sp = Span.from_dict(payload)
        if sp.parent_id is None:
            sp.parent_id = "root"
        if retry:
            sp.tags["retry"] = retry
            sp.span_id = f"{sp.span_id}#r{retry}"
        with self._lock:
            n = self._seen.get(sp.span_id, 0)
            self._seen[sp.span_id] = n + 1
            if n:
                sp.span_id = f"{sp.span_id}#dup{n}"
            self._spans.append(sp)
        return sp

    def finish(self) -> None:
        if self.root.end is None:
            self.root.end = _clock.perf()

    # -- views ---------------------------------------------------------
    def spans(self) -> List[Span]:
        """All collected child spans, in a deterministic order
        (by start time, then span id)."""
        with self._lock:
            return sorted(self._spans,
                          key=lambda s: (s.start, s.span_id))

    def chunk_coverage(self) -> Dict[int, int]:
        """``{chunk index: completed executions}`` over chunk spans —
        the recovery invariant: identical with and without a mid-request
        worker kill (retries add executions, never remove indices)."""
        coverage: Dict[int, int] = {}
        for sp in self.spans():
            if "chunk" in sp.tags:
                index = int(sp.tags["chunk"])
                coverage[index] = coverage.get(index, 0) + 1
        return coverage

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "root": self.root.to_dict(),
            "spans": [sp.to_dict() for sp in self.spans()],
        }

    def report(self) -> str:
        """A human-readable breakdown of where the request's time went."""
        self.finish()
        total = self.root.duration()
        lines = [f"trace {self.trace_id}: {self.root.name} "
                 f"{total * 1000:.2f} ms"]
        for sp in self.spans():
            took = sp.duration() * 1000 if sp.end is not None else 0.0
            offset = (sp.start - self.root.start) * 1000
            tags = " ".join(f"{k}={v}" for k, v in sorted(sp.tags.items()))
            lines.append(
                f"  +{offset:8.2f} ms  {took:8.2f} ms  "
                f"{sp.name:<12} {sp.span_id}"
                + (f"  [{tags}]" if tags else ""))
        return "\n".join(lines)
