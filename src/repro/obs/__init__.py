"""``repro.obs`` — dependency-free observability for the whole stack.

Four small pieces, wired through serve / stream / nn:

* :mod:`repro.obs.metrics` — thread-safe :class:`MetricsRegistry` with
  labeled counters, gauges, and fixed-bucket histograms; snapshot and
  cross-process merge; near-zero cost when disabled.
* :mod:`repro.obs.clock` — the single sanctioned clock (RC001/RC007):
  ``monotonic()`` for deadlines, ``perf()`` for durations, ``wall()``
  for human-facing timestamps; injectable for deterministic tests.
* :mod:`repro.obs.trace` — explicit-propagation request spans: a traced
  pooled ``sample`` stitches per-chunk worker spans shipped over the
  result pipes, surviving worker death (retries become retry spans).
* :mod:`repro.obs.export` — Prometheus text exposition + JSON dump of
  a registry snapshot (what ``GET /metrics`` serves).

Plus opt-in engine profiling (:mod:`repro.obs.profile`,
``REPRO_PROFILE=1``): per-tape-op forward/backward time and ArrayPool
hit rates via ``profile_report()``.

``python -m repro.obs`` pretty-prints the process registry, a metrics
URL, or a scraped exposition file.
"""

from . import clock
from .clock import Clock, ManualClock, SystemClock, set_clock, use_clock
from .export import (PROMETHEUS_CONTENT_TYPE, parse_prometheus,
                     render_json, render_prometheus)
from .metrics import (DEFAULT_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, get_registry)
from .profile import (disable_profiling, enable_profiling, profile_report,
                      profile_snapshot, profiling_enabled, reset_profile)
from .trace import Span, Trace

__all__ = [
    "clock", "Clock", "SystemClock", "ManualClock", "set_clock",
    "use_clock",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "DEFAULT_BUCKETS", "get_registry",
    "Span", "Trace",
    "render_prometheus", "render_json", "parse_prometheus",
    "PROMETHEUS_CONTENT_TYPE",
    "enable_profiling", "disable_profiling", "profiling_enabled",
    "reset_profile", "profile_report", "profile_snapshot",
]
