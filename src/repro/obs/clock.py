"""The single sanctioned clock for the whole library.

RC001 bans wall-clock reads in library code (results must not depend on
when they run) and RC007 routes every monotonic / perf-counter read
through this module.  Centralizing time behind one injectable object
buys two things:

* **Deterministic tests.**  Install a :class:`ManualClock` with
  :func:`use_clock` and supervision timestamps, latency histograms,
  and trace spans become exact values instead of sleeps and slop.
* **One audited wall-clock site.**  The only ``time.time()`` call in
  the library lives here, explicitly marked; everything that *needs*
  an epoch stamp (event rings, export timestamps) says so by calling
  :func:`wall`, which the lint can see.

Three reads, matching the stdlib trio:

``monotonic()``  scheduling / deadlines (never jumps backwards)
``perf()``       fine-grained durations (highest resolution)
``wall()``       epoch seconds for human-facing timestamps only
"""

from __future__ import annotations

import time
from typing import Iterator, Optional

from contextlib import contextmanager

__all__ = [
    "Clock", "SystemClock", "ManualClock",
    "get_clock", "set_clock", "use_clock",
    "monotonic", "perf", "wall",
]


class Clock:
    """Interface: three float-returning reads."""

    def monotonic(self) -> float:
        raise NotImplementedError

    def perf(self) -> float:
        raise NotImplementedError

    def wall(self) -> float:
        raise NotImplementedError


class SystemClock(Clock):
    """The real clocks (default)."""

    def monotonic(self) -> float:
        return time.monotonic()

    def perf(self) -> float:
        return time.perf_counter()

    def wall(self) -> float:
        # The library's one sanctioned wall-clock read: callers reach
        # it only through repro.obs.clock.wall(), for timestamps that
        # are *labels* (event rings, export headers), never inputs.
        return time.time()  # repro-check: disable=RC001


class ManualClock(Clock):
    """A settable clock for tests: time moves only via :meth:`advance`.

    ``monotonic`` and ``perf`` share one counter starting at ``start``;
    ``wall`` reports ``epoch + elapsed`` so wall timestamps advance in
    lockstep with the monotonic reads.
    """

    def __init__(self, start: float = 0.0, epoch: float = 1_700_000_000.0):
        self._now = float(start)
        self._start = float(start)
        self._epoch = float(epoch)

    def monotonic(self) -> float:
        return self._now

    def perf(self) -> float:
        return self._now

    def wall(self) -> float:
        return self._epoch + (self._now - self._start)

    def advance(self, seconds: float) -> "ManualClock":
        if seconds < 0:
            raise ValueError(
                f"seconds must be >= 0, got {seconds!r}: a monotonic "
                f"clock cannot move backwards")
        self._now += seconds
        return self


_SYSTEM = SystemClock()
_active: Clock = _SYSTEM


def get_clock() -> Clock:
    """The currently installed clock (a :class:`SystemClock` unless a
    test swapped one in)."""
    return _active


def set_clock(clock: Optional[Clock]) -> None:
    """Install ``clock`` process-wide; ``None`` restores the system clock."""
    global _active
    _active = _SYSTEM if clock is None else clock


@contextmanager
def use_clock(clock: Clock) -> Iterator[Clock]:
    """Scoped :func:`set_clock`: restores the previous clock on exit."""
    global _active
    previous = _active
    _active = clock
    try:
        yield clock
    finally:
        _active = previous


def monotonic() -> float:
    """Monotonic seconds from the active clock (deadlines, scheduling)."""
    return _active.monotonic()


def perf() -> float:
    """High-resolution seconds from the active clock (durations)."""
    return _active.perf()


def wall() -> float:
    """Epoch seconds from the active clock (human-facing timestamps)."""
    return _active.wall()
