"""Render / parse registry snapshots: Prometheus text format + JSON.

:func:`render_prometheus` produces the text exposition format version
0.0.4 (``# HELP`` / ``# TYPE`` headers, escaped label values,
cumulative ``le`` histogram buckets ending in ``+Inf``, ``_sum`` and
``_count`` series) from a :meth:`MetricsRegistry.snapshot` dict —
``GET /metrics`` serves exactly this.  :func:`render_json` is the same
snapshot as a JSON document for tooling that prefers structure, and
:func:`parse_prometheus` reads the text format back into samples (used
by the pretty-printer, the CI smoke check, and the round-trip tests).
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Tuple

__all__ = ["render_prometheus", "render_json", "parse_prometheus",
           "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(float(value))


def _labels_text(labelnames, key, extra: str = "") -> str:
    parts = [f'{name}="{_escape_label(value)}"'
             for name, value in zip(labelnames, key)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: Dict[str, Dict[str, object]]) -> str:
    """Prometheus text-exposition rendering of a registry snapshot.

    Metric names and label keys are emitted sorted, so two snapshots
    with equal contents render byte-identically.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["type"]
        labelnames = tuple(entry["labelnames"])
        lines.append(f"# HELP {name} {_escape_help(entry.get('help', ''))}")
        lines.append(f"# TYPE {name} {kind}")
        series = entry["series"]
        if kind in ("counter", "gauge"):
            for key in sorted(series):
                lines.append(f"{name}{_labels_text(labelnames, key)} "
                             f"{_fmt(series[key])}")
            continue
        buckets = tuple(entry["buckets"])
        for key in sorted(series):
            cell = series[key]
            cumulative = 0
            for bound, count in zip(buckets, cell["counts"]):
                cumulative += count
                le = _labels_text(labelnames, key,
                                  f'le="{_fmt(float(bound))}"')
                lines.append(f"{name}_bucket{le} {cumulative}")
            inf = _labels_text(labelnames, key, 'le="+Inf"')
            lines.append(f"{name}_bucket{inf} {cell['count']}")
            plain = _labels_text(labelnames, key)
            lines.append(f"{name}_sum{plain} {_fmt(cell['sum'])}")
            lines.append(f"{name}_count{plain} {cell['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(snapshot: Dict[str, Dict[str, object]]) -> str:
    """The snapshot as a JSON document (tuple label keys become
    ``{"labels": {...}, ...}`` sample objects)."""
    document = {}
    for name in sorted(snapshot):
        entry = snapshot[name]
        labelnames = tuple(entry["labelnames"])
        samples = []
        for key in sorted(entry["series"]):
            cell = entry["series"][key]
            sample = {"labels": dict(zip(labelnames, key))}
            if entry["type"] == "histogram":
                sample.update({"counts": list(cell["counts"]),
                               "sum": cell["sum"],
                               "count": cell["count"]})
            else:
                sample["value"] = cell
            samples.append(sample)
        document[name] = {
            "type": entry["type"], "help": entry.get("help", ""),
            "labelnames": list(labelnames), "samples": samples,
        }
        if entry["type"] == "histogram":
            document[name]["buckets"] = list(entry["buckets"])
    return json.dumps(document, indent=2, sort_keys=True)


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        if text[i] in ", ":
            i += 1
            continue
        eq = text.index("=", i)
        key = text[i:eq].strip()
        if text[eq + 1] != "\"":
            raise ValueError(
                f"label value for {key!r} is not quoted in {text!r}")
        j = eq + 2
        out = []
        while text[j] != "\"":
            if text[j] == "\\":
                nxt = text[j + 1]
                out.append({"\\": "\\", "\"": "\"", "n": "\n"}.get(nxt, nxt))
                j += 2
            else:
                out.append(text[j])
                j += 1
        labels[key] = "".join(out)
        i = j + 1
    return labels


def parse_prometheus(text: str
                     ) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse exposition text into ``{series name: [(labels, value)]}``.

    Histogram child series keep their expanded names (``*_bucket``,
    ``*_sum``, ``*_count``); comment/``TYPE``/``HELP`` lines are
    skipped.  Good enough for round-trip tests and scrape smoke checks,
    not a validating parser.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, value_text = rest.rsplit("}", 1)
            labels = _parse_labels(label_text)
        else:
            name, value_text = line.split(None, 1)
            labels = {}
        value_text = value_text.strip()
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        samples.setdefault(name.strip(), []).append((labels, value))
    return samples
