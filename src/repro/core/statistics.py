"""Statistical fidelity diagnostics for synthetic tables.

Beyond the paper's task-based utility metrics, these measure how well a
synthetic table preserves the *statistical* structure of the original —
the angle the paper's future-work §8(2) (attribute correlations)
highlights:

* per-attribute marginal distance (total variation for categorical,
  binned TV for numerical);
* pairwise-correlation difference on numerical attributes;
* categorical association difference (Cramér's V).
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, Tuple

import numpy as np

from ..datasets.schema import Table
from ..errors import SchemaError


class DegenerateColumnWarning(UserWarning):
    """A numerical column has zero variance, so its correlations are
    undefined; the report treats them as 0.0 (uncorrelated) and says so
    instead of silently coercing NaNs."""


def _check_schemas(real: Table, synthetic: Table) -> None:
    if real.schema.names != synthetic.schema.names:
        raise SchemaError("tables must share a schema")


def marginal_distances(real: Table, synthetic: Table,
                       n_bins: int = 20) -> Dict[str, float]:
    """Total-variation distance per attribute (numerics binned on the
    real table's range)."""
    _check_schemas(real, synthetic)
    out: Dict[str, float] = {}
    for attr in real.schema:
        real_col = real.column(attr.name)
        synth_col = synthetic.column(attr.name)
        if attr.is_categorical:
            k = attr.domain_size
            p = np.bincount(real_col, minlength=k) / max(len(real_col), 1)
            q = np.bincount(synth_col, minlength=k) / max(len(synth_col), 1)
        else:
            low, high = float(real_col.min()), float(real_col.max())
            if high <= low:
                high = low + 1.0
            edges = np.linspace(low, high, n_bins + 1)
            p, _ = np.histogram(real_col, bins=edges)
            q, _ = np.histogram(np.clip(synth_col, low, high), bins=edges)
            p = p / max(p.sum(), 1)
            q = q / max(q.sum(), 1)
        out[attr.name] = 0.5 * float(np.abs(p - q).sum())
    return out


def correlation_difference(real: Table, synthetic: Table) -> float:
    """Mean |corr_real - corr_synth| over numerical attribute pairs.

    Returns 0.0 when the schema has fewer than two numerical attributes.

    Degenerate case: a zero-variance column has no defined Pearson
    correlation with anything (``np.corrcoef`` yields NaN rows).  Those
    entries are *defined* here as 0.0 — a constant column carries no
    linear association — and a :class:`DegenerateColumnWarning` names
    the offending columns, so a synthesizer that collapses a column to
    a constant is visible in the report instead of silently scoring as
    a perfect-correlation match.  These NaNs live in the report layer
    (plain ndarrays, never on the autograd tape), so the runtime NaN
    sanitizer deliberately does not fire on them.
    """
    _check_schemas(real, synthetic)
    names = real.schema.numerical_names()
    if len(names) < 2:
        return 0.0

    def corr(table: Table, label: str) -> np.ndarray:
        mat = np.vstack([table.column(n) for n in names])
        degenerate = [name for name, row in zip(names, mat)
                      if np.ptp(row) == 0.0]
        if degenerate:
            warnings.warn(
                f"zero-variance column(s) {degenerate} in the {label} "
                f"table: their correlations are undefined and reported "
                f"as 0.0", DegenerateColumnWarning, stacklevel=3)
        with np.errstate(invalid="ignore"):
            c = np.corrcoef(mat)
        # Only the degenerate rows/columns can be NaN; define them as 0.
        return np.nan_to_num(c)

    diff = np.abs(corr(real, "real") - corr(synthetic, "synthetic"))
    upper = diff[np.triu_indices(len(names), k=1)]
    return float(upper.mean())


def cramers_v(x: np.ndarray, y: np.ndarray, x_domain: int,
              y_domain: int) -> float:
    """Cramér's V association between two categorical columns."""
    n = len(x)
    if n == 0 or x_domain < 2 or y_domain < 2:
        return 0.0
    contingency = np.zeros((x_domain, y_domain))
    np.add.at(contingency, (x, y), 1.0)
    row = contingency.sum(axis=1, keepdims=True)
    col = contingency.sum(axis=0, keepdims=True)
    expected = row @ col / n
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.nansum(np.where(expected > 0,
                                  (contingency - expected) ** 2 / expected,
                                  0.0))
    denom = n * (min(x_domain, y_domain) - 1)
    return float(np.sqrt(chi2 / denom)) if denom > 0 else 0.0


def association_difference(real: Table, synthetic: Table) -> float:
    """Mean |V_real - V_synth| over categorical attribute pairs."""
    _check_schemas(real, synthetic)
    names = real.schema.categorical_names()
    if len(names) < 2:
        return 0.0
    diffs = []
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            a, b = names[i], names[j]
            da = real.schema[a].domain_size
            db = real.schema[b].domain_size
            v_real = cramers_v(real.column(a), real.column(b), da, db)
            v_synth = cramers_v(synthetic.column(a), synthetic.column(b),
                                da, db)
            diffs.append(abs(v_real - v_synth))
    return float(np.mean(diffs))


def fidelity_summary(real: Table, synthetic: Table) -> Dict[str, float]:
    """One-call statistical fidelity report."""
    marginals = marginal_distances(real, synthetic)
    return {
        "mean_marginal_tv": float(np.mean(list(marginals.values()))),
        "max_marginal_tv": float(np.max(list(marginals.values()))),
        "correlation_diff": correlation_difference(real, synthetic),
        "association_diff": association_difference(real, synthetic),
    }
