"""Design space, evaluation framework, and experiment runner.

``design_space`` has no intra-package dependencies and is imported
eagerly; the evaluation/pipeline/experiment layers import the GAN
package (which itself needs ``design_space``), so they load lazily to
keep the import graph acyclic.
"""

from .design_space import (
    DesignConfig, iter_design_space, transformation_grid,
    GENERATORS, TRAININGS,
)

__all__ = [
    "DesignConfig", "iter_design_space", "transformation_grid",
    "GENERATORS", "TRAININGS",
    "ClassificationUtility", "PrivacyReport", "aqp_utility",
    "classifier_f1", "classification_utilities", "classification_utility",
    "clustering_utility", "privacy_report",
    "SynthesisRun", "run_gan_synthesis", "snapshot_f1_curve",
    "SearchResult", "hyperparameter_candidates", "random_search",
    "ExperimentContext", "get_context",
    "marginal_distances", "correlation_difference",
    "association_difference", "fidelity_summary",
]

_LAZY = {
    "ClassificationUtility": ("repro.core.evaluation", "ClassificationUtility"),
    "PrivacyReport": ("repro.core.evaluation", "PrivacyReport"),
    "aqp_utility": ("repro.core.evaluation", "aqp_utility"),
    "classifier_f1": ("repro.core.evaluation", "classifier_f1"),
    "classification_utilities": ("repro.core.evaluation",
                                 "classification_utilities"),
    "classification_utility": ("repro.core.evaluation",
                               "classification_utility"),
    "clustering_utility": ("repro.core.evaluation", "clustering_utility"),
    "privacy_report": ("repro.core.evaluation", "privacy_report"),
    "SynthesisRun": ("repro.core.pipeline", "SynthesisRun"),
    "run_gan_synthesis": ("repro.core.pipeline", "run_gan_synthesis"),
    "snapshot_f1_curve": ("repro.core.pipeline", "snapshot_f1_curve"),
    "snapshot_fidelity_curve": ("repro.core.pipeline",
                                "snapshot_fidelity_curve"),
    "SearchResult": ("repro.core.model_selection", "SearchResult"),
    "hyperparameter_candidates": ("repro.core.model_selection",
                                  "hyperparameter_candidates"),
    "random_search": ("repro.core.model_selection", "random_search"),
    "ExperimentContext": ("repro.core.experiment", "ExperimentContext"),
    "get_context": ("repro.core.experiment", "get_context"),
    "marginal_distances": ("repro.core.statistics", "marginal_distances"),
    "correlation_difference": ("repro.core.statistics",
                               "correlation_difference"),
    "association_difference": ("repro.core.statistics",
                               "association_difference"),
    "fidelity_summary": ("repro.core.statistics", "fidelity_summary"),
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        value = getattr(importlib.import_module(module_name), attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
