"""Evaluation framework (paper §6.2).

Utility protocols:

* classification — train classifier ``f`` on the real training table and
  ``f'`` on the synthetic table, evaluate both on the same test set, and
  report ``Diff = |F1(f) - F1(f')|`` (positive-label F1 for binary,
  rare-label F1 for multi-class);
* clustering — K-Means on real and synthetic tables (label excluded from
  features, used as gold standard), ``DiffCST = |NMI - NMI'|``;
* AQP — ``DiffAQP`` via :mod:`repro.aqp`;
* privacy — hitting rate and DCR via :mod:`repro.privacy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..aqp import diff_aqp, generate_workload
from ..datasets.schema import Table
from ..ml import (
    CLASSIFIERS, FeatureEncoder, KMeans, make_classifier,
    normalized_mutual_info, paper_f1,
)
from ..privacy import distance_to_closest_record, hitting_rate


@dataclass(frozen=True)
class ClassificationUtility:
    """F1 of real-trained vs synthetic-trained classifier on the test set."""

    classifier: str
    f1_real: float
    f1_synthetic: float

    @property
    def diff(self) -> float:
        return abs(self.f1_real - self.f1_synthetic)


def classifier_f1(train: Table, test: Table, classifier: str = "DT10",
                  seed: int = 0) -> float:
    """Train on ``train``, report the paper's F1 on ``test``.

    A degenerate training table (single class) scores 0 — the classifier
    can never predict the metric's target label.
    """
    n_labels = test.schema.label.domain_size
    encoder = FeatureEncoder().fit(train)
    X_train, y_train = encoder.transform(train)
    X_test, y_test = encoder.transform(test)
    if len(np.unique(y_train)) < 2:
        return 0.0
    model = make_classifier(classifier, rng=np.random.default_rng(seed))
    model.fit(X_train, y_train)
    return paper_f1(y_test, model.predict(X_test), n_labels)


def classification_utility(synthetic: Table, real_train: Table, test: Table,
                           classifier: str = "DT10",
                           seed: int = 0) -> ClassificationUtility:
    """The paper's Diff(T, T') for one classifier."""
    return ClassificationUtility(
        classifier=classifier,
        f1_real=classifier_f1(real_train, test, classifier, seed),
        f1_synthetic=classifier_f1(synthetic, test, classifier, seed))


def classification_utilities(synthetic: Table, real_train: Table,
                             test: Table,
                             classifiers: Sequence[str] = CLASSIFIERS,
                             seed: int = 0
                             ) -> Dict[str, ClassificationUtility]:
    """Diff(T, T') for every evaluator classifier (one table column)."""
    return {name: classification_utility(synthetic, real_train, test,
                                         name, seed)
            for name in classifiers}


def _clustering_nmi(table: Table, n_clusters: int, seed: int) -> float:
    encoder = FeatureEncoder().fit(table)
    X, y = encoder.transform(table)
    km = KMeans(n_clusters=n_clusters,
                rng=np.random.default_rng(seed)).fit(X)
    return normalized_mutual_info(y, km.labels_)


def clustering_utility(synthetic: Table, real_train: Table,
                       seed: int = 0) -> float:
    """DiffCST: |NMI on real - NMI on synthetic| with K = #labels."""
    n_clusters = real_train.schema.label.domain_size
    nmi_real = _clustering_nmi(real_train, n_clusters, seed)
    nmi_synth = _clustering_nmi(synthetic, n_clusters, seed)
    return abs(nmi_real - nmi_synth)


def aqp_utility(synthetic: Table, real_train: Table, n_queries: int = 200,
                sample_fraction: float = 0.01, n_sample_draws: int = 5,
                seed: int = 0) -> float:
    """DiffAQP over a generated workload (paper default: 1000 queries)."""
    queries = generate_workload(real_train, n_queries=n_queries, seed=seed)
    return diff_aqp(queries, synthetic, real_train,
                    sample_fraction=sample_fraction,
                    n_sample_draws=n_sample_draws, seed=seed)


@dataclass(frozen=True)
class PrivacyReport:
    hitting_rate: float
    dcr: float


def privacy_report(synthetic: Table, real_train: Table,
                   hit_samples: int = 2000, dcr_samples: int = 1000,
                   seed: int = 0) -> PrivacyReport:
    """Hitting rate + DCR with the paper's similarity thresholds."""
    return PrivacyReport(
        hitting_rate=hitting_rate(real_train, synthetic,
                                  n_samples=hit_samples, seed=seed),
        dcr=distance_to_closest_record(real_train, synthetic,
                                       n_samples=dcr_samples, seed=seed))
