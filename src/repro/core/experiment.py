"""Shared experiment runner used by the benchmark harnesses.

An :class:`ExperimentContext` pins a dataset (stand-in), its 4:1:1 split,
and the training budget; helpers synthesize with any of the three method
families (GAN design points, VAE, PrivBayes) and compute the paper's
utility rows.  Benchmark scale is tunable via environment variables:

* ``REPRO_BENCH_RECORDS`` — records per dataset (default 1200)
* ``REPRO_BENCH_EPOCHS`` — training epochs (default 5)
* ``REPRO_BENCH_ITERS`` — iterations per epoch (default 25)

Larger values sharpen the reproduction at proportional CPU cost.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .. import datasets
from ..api import SynthesisResult, make_synthesizer
from ..datasets.schema import Table
from .design_space import DesignConfig
from .evaluation import classification_utilities
from .pipeline import SynthesisRun, run_gan_synthesis


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


DEFAULT_RECORDS = _env_int("REPRO_BENCH_RECORDS", 1200)
DEFAULT_EPOCHS = _env_int("REPRO_BENCH_EPOCHS", 5)
DEFAULT_ITERS = _env_int("REPRO_BENCH_ITERS", 25)


@dataclass
class ExperimentContext:
    """One dataset + split + training budget."""

    dataset: str
    n_records: int = DEFAULT_RECORDS
    epochs: int = DEFAULT_EPOCHS
    iterations_per_epoch: int = DEFAULT_ITERS
    seed: int = 0
    dataset_kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        table = datasets.load(self.dataset, n_records=self.n_records,
                              seed=self.seed, **self.dataset_kwargs)
        self.train, self.valid, self.test = datasets.split(
            table, seed=self.seed)

    # -- synthesis ------------------------------------------------------
    def synthesize(self, method: str, valid: bool = True,
                   **kwargs) -> SynthesisResult:
        """Run any registered family through :func:`repro.synthesize`.

        The context's training table, validation table (when ``valid``),
        seed, and training budget (``epochs`` / ``iterations_per_epoch``,
        where the family accepts them) are supplied automatically;
        ``kwargs`` go to the facade (and through it to the family
        constructor).
        """
        import inspect

        from ..api.facade import synthesize
        from ..api.registry import resolve

        params = inspect.signature(resolve(method).__init__).parameters
        for key, value in (("epochs", self.epochs),
                           ("iterations_per_epoch",
                            self.iterations_per_epoch)):
            if key in params:
                kwargs.setdefault(key, value)
        return synthesize(self.train, method=method,
                          valid=self.valid if valid else None,
                          seed=kwargs.pop("seed", self.seed), **kwargs)

    def gan(self, config: Optional[DesignConfig] = None,
            size_ratio: float = 1.0, seed_offset: int = 0) -> SynthesisRun:
        config = config if config is not None else DesignConfig()
        return run_gan_synthesis(
            config, self.train, self.valid, epochs=self.epochs,
            iterations_per_epoch=self.iterations_per_epoch,
            size_ratio=size_ratio, seed=self.seed + seed_offset)

    def vae(self, **kwargs) -> Table:
        synth = make_synthesizer(
            "vae", epochs=max(self.epochs, 8),
            iterations_per_epoch=max(self.iterations_per_epoch, 40),
            seed=self.seed, **kwargs)
        return synth.fit_sample(self.train)

    def privbayes(self, epsilon: Optional[float], **kwargs) -> Table:
        synth = make_synthesizer("privbayes", epsilon=epsilon,
                                 seed=self.seed, **kwargs)
        return synth.fit_sample(self.train)

    # -- evaluation -----------------------------------------------------
    def diff_row(self, synthetic: Table,
                 classifiers: Sequence[str] = ("DT10", "DT30", "RF10",
                                               "RF20", "AB", "LR")
                 ) -> Dict[str, float]:
        """Per-classifier F1 differences — one row of a paper table."""
        utilities = classification_utilities(
            synthetic, self.train, self.test, classifiers, seed=self.seed)
        return {name: utilities[name].diff for name in classifiers}


@lru_cache(maxsize=32)
def get_context(dataset: str, n_records: int = DEFAULT_RECORDS,
                epochs: int = DEFAULT_EPOCHS,
                iterations_per_epoch: int = DEFAULT_ITERS,
                seed: int = 0,
                dataset_kwargs: Tuple = ()) -> ExperimentContext:
    """Cached contexts so benchmarks sharing a dataset reuse the split."""
    return ExperimentContext(dataset, n_records=n_records, epochs=epochs,
                             iterations_per_epoch=iterations_per_epoch,
                             seed=seed, dataset_kwargs=dict(dataset_kwargs))
