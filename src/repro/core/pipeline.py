"""Legacy GAN pipeline entry points (deprecation shims over ``repro.api``).

Paper §6.2: training is divided into 10 epochs; after each epoch the
generator snapshot synthesizes a table, a classifier trained on it is
scored on the *validation* set, and the best snapshot produces the final
synthetic table.  That loop now lives, method-generically, in
:func:`repro.api.synthesize`; this module keeps the original GAN-only
spellings working:

* :func:`run_gan_synthesis` — thin wrapper over the facade returning the
  legacy :class:`SynthesisRun`.  The facade also fixes the old
  resampling waste: the winning snapshot's scoring table is reused as
  (part of) the final output instead of being regenerated.
* :func:`snapshot_f1_curve` / :func:`snapshot_fidelity_curve` — the two
  selection criteria as plain score lists.

New code should prefer ``repro.synthesize(...)`` /
``repro.make_synthesizer(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..datasets.schema import Table
from ..gan.synthesizer import GANSynthesizer
from .design_space import DesignConfig
from .evaluation import classifier_f1


@dataclass
class SynthesisRun:
    """Everything produced by one synthesis pipeline execution."""

    synthesizer: GANSynthesizer
    synthetic: Table
    best_epoch: int
    epoch_f1: List[float] = field(default_factory=list)

    @property
    def final_f1(self) -> float:
        return self.epoch_f1[self.best_epoch] if self.epoch_f1 else 0.0


def snapshot_f1_curve(synthesizer: GANSynthesizer, valid: Table,
                      classifier: str = "DT10",
                      sample_size: Optional[int] = None,
                      seed: int = 0) -> List[float]:
    """Validation F1 of a classifier trained on each epoch's snapshot."""
    from ..api.selection import score_snapshots

    def criterion(table: Table) -> float:
        return classifier_f1(table, valid, classifier, seed)

    return score_snapshots(synthesizer, valid, sample_size=sample_size,
                           criterion=criterion,
                           criterion_name=f"f1:{classifier}").scores


def snapshot_fidelity_curve(synthesizer: GANSynthesizer, valid: Table,
                            sample_size: Optional[int] = None
                            ) -> List[float]:
    """Per-snapshot statistical fidelity against the validation table.

    Scores are ``-mean marginal TV`` (higher is better, aligned with the
    F1 curve convention).  This is the selection criterion for unlabeled
    tables (e.g. the Bing AQP workload), where classifier-based
    selection is undefined.
    """
    from ..api.selection import score_snapshots
    from .statistics import marginal_distances

    def criterion(table: Table) -> float:
        distances = marginal_distances(valid, table)
        return -float(np.mean(list(distances.values())))

    return score_snapshots(synthesizer, valid, sample_size=sample_size,
                           criterion=criterion,
                           criterion_name="fidelity").scores


def run_gan_synthesis(config: DesignConfig, train: Table, valid: Table,
                      epochs: int = 10, iterations_per_epoch: int = 40,
                      selection_classifier: str = "DT10",
                      size_ratio: float = 1.0,
                      seed: int = 0) -> SynthesisRun:
    """Fit, select the best epoch on validation, emit the synthetic table.

    ``size_ratio`` scales ``|T'|`` relative to ``|T_train|`` (Table 4's
    experiment knob).

    .. deprecated:: use :func:`repro.synthesize` with ``method="gan"``;
       this wrapper adapts its :class:`~repro.api.SynthesisResult` into
       the legacy :class:`SynthesisRun`.
    """
    from ..api.facade import synthesize

    result = synthesize(train, method="gan", config=config, valid=valid,
                        epochs=epochs,
                        iterations_per_epoch=iterations_per_epoch,
                        selection_classifier=selection_classifier,
                        size_ratio=size_ratio, seed=seed)
    return SynthesisRun(synthesizer=result.synthesizer,
                        synthetic=result.table,
                        best_epoch=result.best_epoch,
                        epoch_f1=list(result.selection_curve))
