"""End-to-end synthesis pipeline with validation-based model selection.

Paper §6.2: training is divided into 10 epochs; after each epoch the
generator snapshot synthesizes a table, a classifier trained on it is
scored on the *validation* set, and the best snapshot produces the final
synthetic table.  :func:`run_gan_synthesis` implements exactly that and
also exposes the per-epoch F1 curve (the series plotted in Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..datasets.schema import Table
from ..gan.synthesizer import GANSynthesizer
from .design_space import DesignConfig
from .evaluation import classifier_f1


@dataclass
class SynthesisRun:
    """Everything produced by one synthesis pipeline execution."""

    synthesizer: GANSynthesizer
    synthetic: Table
    best_epoch: int
    epoch_f1: List[float] = field(default_factory=list)

    @property
    def final_f1(self) -> float:
        return self.epoch_f1[self.best_epoch] if self.epoch_f1 else 0.0


def snapshot_f1_curve(synthesizer: GANSynthesizer, valid: Table,
                      classifier: str = "DT10",
                      sample_size: Optional[int] = None,
                      seed: int = 0) -> List[float]:
    """Validation F1 of a classifier trained on each epoch's snapshot."""
    if sample_size is None:
        sample_size = min(2000, max(500, len(valid) * 2))
    scores = []
    for index in range(len(synthesizer.snapshots)):
        synthesizer.use_snapshot(index)
        snapshot_table = synthesizer.sample(sample_size)
        scores.append(classifier_f1(snapshot_table, valid, classifier, seed))
    return scores


def snapshot_fidelity_curve(synthesizer: GANSynthesizer, valid: Table,
                            sample_size: Optional[int] = None
                            ) -> List[float]:
    """Per-snapshot statistical fidelity against the validation table.

    Scores are ``-mean marginal TV`` (higher is better, aligned with the
    F1 curve convention).  This is the selection criterion for unlabeled
    tables (e.g. the Bing AQP workload), where classifier-based
    selection is undefined.
    """
    from .statistics import marginal_distances

    if sample_size is None:
        sample_size = min(2000, max(500, len(valid) * 2))
    scores = []
    for index in range(len(synthesizer.snapshots)):
        synthesizer.use_snapshot(index)
        snapshot_table = synthesizer.sample(sample_size)
        distances = marginal_distances(valid, snapshot_table)
        scores.append(-float(np.mean(list(distances.values()))))
    return scores


def run_gan_synthesis(config: DesignConfig, train: Table, valid: Table,
                      epochs: int = 10, iterations_per_epoch: int = 40,
                      selection_classifier: str = "DT10",
                      size_ratio: float = 1.0,
                      seed: int = 0) -> SynthesisRun:
    """Fit, select the best epoch on validation, emit the synthetic table.

    ``size_ratio`` scales ``|T'|`` relative to ``|T_train|`` (Table 4's
    experiment knob).
    """
    synthesizer = GANSynthesizer(config, epochs=epochs,
                                 iterations_per_epoch=iterations_per_epoch,
                                 seed=seed)
    synthesizer.fit(train)
    if train.schema.label is not None:
        curve = snapshot_f1_curve(synthesizer, valid, selection_classifier,
                                  seed=seed)
    else:
        # Unlabeled tables (AQP workloads): select on marginal fidelity.
        curve = snapshot_fidelity_curve(synthesizer, valid)
    best_epoch = int(np.argmax(curve))
    synthesizer.use_snapshot(best_epoch)
    synthetic = synthesizer.sample(max(1, int(round(len(train) * size_ratio))))
    return SynthesisRun(synthesizer=synthesizer, synthetic=synthetic,
                        best_epoch=best_epoch, epoch_f1=curve)
