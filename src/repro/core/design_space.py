"""The design space of GAN-based relational data synthesis (paper Fig. 3).

A :class:`DesignConfig` pins one point in the space:

* data transformation — categorical encoding (ordinal / one-hot),
  numerical normalization (simple / GMM), sample form (vector / matrix);
* neural networks — generator and discriminator families (MLP / LSTM /
  CNN), optionally a *simplified* discriminator (§5.2);
* training algorithm — VTrain / WTrain / CTrain / DPTrain (Table 1);
* conditional GAN — label condition on/off, random vs label-aware
  sampling (§5.3).

:meth:`DesignConfig.validate` rejects combinations the paper identifies
as incompatible (e.g. matrix-form CNN input cannot carry one-hot or GMM
blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Tuple

from ..errors import ConfigError

GENERATORS = ("mlp", "lstm", "cnn")
DISCRIMINATORS = ("mlp", "lstm", "cnn")
CATEGORICAL_ENCODINGS = ("ordinal", "onehot")
NUMERICAL_NORMALIZATIONS = ("simple", "gmm")
TRAININGS = ("vtrain", "wtrain", "ctrain", "dptrain")
SAMPLINGS = ("random", "label-aware")


@dataclass(frozen=True)
class DesignConfig:
    """One point in the paper's design space.

    The default configuration is the paper's recommended setting:
    LSTM-quality data transformation (one-hot + GMM) with the robust MLP
    generator and vanilla training.
    """

    generator: str = "mlp"
    discriminator: Optional[str] = None  # None -> mlp (cnn for cnn G)
    categorical_encoding: str = "onehot"
    numerical_normalization: str = "gmm"
    training: str = "vtrain"
    conditional: bool = False
    sampling: Optional[str] = None       # None -> derived from training
    simplified_discriminator: bool = False

    # Model hyper-parameters (subject to hyper-parameter search, §6.4).
    z_dim: int = 32
    hidden_dim: int = 128
    n_layers: int = 2
    lstm_hidden: int = 64
    lstm_output_dim: int = 32
    gmm_components: int = 5
    # Training hyper-parameters.
    batch_size: int = 64
    lr_g: float = 1e-3
    lr_d: float = 1e-3
    d_steps: int = 1          # WGAN-style inner discriminator iterations
    weight_clip: float = 0.01  # WGAN clipping parameter c_p
    kl_weight: float = 1.0     # VTrain warm-up weight
    # DPGAN knobs.
    dp_noise_multiplier: float = 1.0
    dp_grad_bound: float = 1.0

    # ------------------------------------------------------------------
    def __post_init__(self):
        self.validate()

    @property
    def effective_discriminator(self) -> str:
        if self.discriminator is not None:
            return self.discriminator
        return "cnn" if self.generator == "cnn" else "mlp"

    @property
    def effective_sampling(self) -> str:
        if self.sampling is not None:
            return self.sampling
        return "label-aware" if self.training == "ctrain" else "random"

    @property
    def matrix_form(self) -> bool:
        """CNN pipelines use matrix-form samples; all others vector form."""
        return self.generator == "cnn"

    def validate(self) -> None:
        if self.generator not in GENERATORS:
            raise ConfigError(f"unknown generator {self.generator!r}")
        if (self.discriminator is not None
                and self.discriminator not in DISCRIMINATORS):
            raise ConfigError(f"unknown discriminator {self.discriminator!r}")
        if self.categorical_encoding not in CATEGORICAL_ENCODINGS:
            raise ConfigError(
                f"unknown categorical encoding {self.categorical_encoding!r}")
        if self.numerical_normalization not in NUMERICAL_NORMALIZATIONS:
            raise ConfigError(
                f"unknown normalization {self.numerical_normalization!r}")
        if self.training not in TRAININGS:
            raise ConfigError(f"unknown training algorithm {self.training!r}")
        if self.sampling is not None and self.sampling not in SAMPLINGS:
            raise ConfigError(f"unknown sampling {self.sampling!r}")
        if self.generator == "cnn":
            # Matrix form requires one value per attribute (paper §4):
            # one-hot and GMM blocks would be split across matrix cells.
            if self.categorical_encoding == "onehot":
                raise ConfigError(
                    "matrix-form (CNN) samples cannot use one-hot encoding")
            if self.numerical_normalization == "gmm":
                raise ConfigError(
                    "matrix-form (CNN) samples cannot use GMM normalization")
            if self.effective_discriminator != "cnn":
                raise ConfigError("CNN generator requires CNN discriminator")
            if self.conditional or self.training == "ctrain":
                raise ConfigError(
                    "the CNN pipeline does not support conditional GAN")
        if self.effective_discriminator == "cnn" and self.generator != "cnn":
            raise ConfigError("CNN discriminator requires CNN generator")
        if self.training == "ctrain" and self.sampling == "random":
            # CTrain *is* label-aware sampling; this combination is CGAN-V
            # and must be requested as training="vtrain", conditional=True.
            raise ConfigError(
                "ctrain implies label-aware sampling; use vtrain + "
                "conditional=True for CGAN with random sampling")
        if self.z_dim <= 0 or self.hidden_dim <= 0 or self.batch_size <= 0:
            raise ConfigError("dimensions and batch size must be positive")

    @property
    def is_conditional(self) -> bool:
        return self.conditional or self.training == "ctrain"

    def with_(self, **kwargs) -> "DesignConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """Short key like ``lstm/gn+ht/vtrain`` used in reports.

        Includes every axis that changes model behaviour, so it can key
        result caches.
        """
        enc = {"ordinal": "od", "onehot": "ht"}[self.categorical_encoding]
        norm = {"simple": "sn", "gmm": "gn"}[self.numerical_normalization]
        cond = "+cond" if self.is_conditional else ""
        simp = "+simpD" if self.simplified_discriminator else ""
        disc = (f"+D:{self.effective_discriminator}"
                if self.effective_discriminator != self.generator
                and self.effective_discriminator != "mlp" else "")
        return (f"{self.generator}/{norm}+{enc}/{self.training}"
                f"{cond}{simp}{disc}")


def transformation_grid() -> Tuple[Tuple[str, str], ...]:
    """The four vector-form transformation combinations of Table 3."""
    return (("simple", "ordinal"), ("simple", "onehot"),
            ("gmm", "ordinal"), ("gmm", "onehot"))


def iter_design_space(include_cnn: bool = True) -> Iterator[DesignConfig]:
    """Enumerate the paper's primary design axes (Figure 3).

    Yields every valid (generator, transformation) combination with
    vanilla training, which is the grid explored in Table 3.
    """
    for generator in ("mlp", "lstm"):
        for norm, enc in transformation_grid():
            yield DesignConfig(generator=generator,
                               categorical_encoding=enc,
                               numerical_normalization=norm)
    if include_cnn:
        yield DesignConfig(generator="cnn", categorical_encoding="ordinal",
                           numerical_normalization="simple")
