"""Hyper-parameter search (paper §6.4).

The paper follows Lucic et al.: draw candidate hyper-parameter settings,
train each, score on the validation set, keep the best.
:func:`hyperparameter_candidates` draws settings from the ranges the
GAN literature uses (learning rates, widths, batch sizes);
:func:`random_search` runs the loop.  The per-candidate epoch curves are
exactly the Figure 4 robustness series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..datasets.schema import Table
from .design_space import DesignConfig
from .pipeline import SynthesisRun, run_gan_synthesis

_LEARNING_RATES = (5e-4, 1e-3, 2e-3, 5e-3)
_HIDDEN_DIMS = (64, 128, 256)
_BATCH_SIZES = (32, 64, 128)
_Z_DIMS = (16, 32, 64)


def hyperparameter_candidates(base: DesignConfig, n: int = 6,
                              rng: Optional[np.random.Generator] = None,
                              seed: int = 0) -> List[DesignConfig]:
    """Draw ``n`` random hyper-parameter settings around ``base``."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    candidates = []
    for _ in range(n):
        lr = float(_LEARNING_RATES[rng.integers(0, len(_LEARNING_RATES))])
        candidates.append(base.with_(
            lr_g=lr,
            lr_d=float(_LEARNING_RATES[
                rng.integers(0, len(_LEARNING_RATES))]),
            hidden_dim=int(_HIDDEN_DIMS[rng.integers(0, len(_HIDDEN_DIMS))]),
            batch_size=int(_BATCH_SIZES[rng.integers(0, len(_BATCH_SIZES))]),
            z_dim=int(_Z_DIMS[rng.integers(0, len(_Z_DIMS))]),
        ))
    return candidates


@dataclass
class SearchResult:
    """Outcome of a random hyper-parameter search."""

    best_config: DesignConfig
    best_run: SynthesisRun
    curves: List[List[float]] = field(default_factory=list)
    configs: List[DesignConfig] = field(default_factory=list)

    @property
    def best_f1(self) -> float:
        return self.best_run.final_f1


def random_search(base: DesignConfig, train: Table, valid: Table,
                  n_trials: int = 4, epochs: int = 10,
                  iterations_per_epoch: int = 40,
                  selection_classifier: str = "DT10",
                  seed: int = 0) -> SearchResult:
    """Train each candidate, keep the best validation score."""
    candidates = hyperparameter_candidates(base, n=n_trials, seed=seed)
    best: Optional[SynthesisRun] = None
    best_config = base
    curves: List[List[float]] = []
    for i, config in enumerate(candidates):
        run = run_gan_synthesis(
            config, train, valid, epochs=epochs,
            iterations_per_epoch=iterations_per_epoch,
            selection_classifier=selection_classifier, seed=seed + i)
        curves.append(run.epoch_f1)
        if best is None or run.final_f1 > best.final_f1:
            best = run
            best_config = config
    return SearchResult(best_config=best_config, best_run=best,
                        curves=curves, configs=candidates)
