"""Out-of-core ingestion: chunk sources for ``fit_stream``.

A *chunk source* yields :class:`~repro.datasets.schema.Table` chunks of
a (possibly larger-than-RAM) dataset.  ``Synthesizer.fit_stream``
accepts anything :func:`as_chunk_source` understands:

* a :class:`Table` — sliced into ``chunk_rows``-sized chunks (the
  convenience case; equivalence tests lean on it);
* a CSV path — read incrementally with the stdlib ``csv`` module, one
  chunk materialized at a time (the out-of-core case).  The schema is
  inferred in a streaming pre-pass unless supplied;
* a zero-argument callable returning an iterable of chunks — the
  re-iterable generic source (families that want a range pre-pass, like
  PrivBayes' discretizer, can traverse it twice);
* any iterable of ``Table`` chunks — single-shot (no pre-pass).

Re-iterable sources (``.reiterable``) let count-exact families run a
cheap statistics pre-pass (global numeric ranges) before ingesting, so
``fit_stream`` over k chunks reproduces the one-shot ``fit`` exactly;
one-shot iterables skip the pre-pass and fix bins on the first chunk.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Callable, Dict, Iterable, Iterator, Optional, Sequence

import numpy as np

from ..datasets.schema import (
    Attribute, CATEGORICAL, NUMERICAL, Schema, Table,
)
from ..errors import StreamError

#: Default rows per chunk when the caller does not pass ``chunk_rows``.
DEFAULT_CHUNK_ROWS = 4096


class ChunkSource:
    """Iterable-of-chunks protocol ``fit_stream`` consumes."""

    #: True when :meth:`chunks` can be called more than once and yields
    #: the same chunk sequence each time (enables statistics pre-passes).
    reiterable: bool = False

    def chunks(self) -> Iterator[Table]:
        raise NotImplementedError


class TableChunkSource(ChunkSource):
    """Slice an in-memory table into fixed-size chunks (re-iterable)."""

    reiterable = True

    def __init__(self, table: Table, chunk_rows: int):
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        if len(table) == 0:
            raise StreamError("cannot stream an empty table")
        self.table = table
        self.chunk_rows = int(chunk_rows)

    def chunks(self) -> Iterator[Table]:
        n = len(self.table)
        for start in range(0, n, self.chunk_rows):
            stop = min(start + self.chunk_rows, n)
            yield self.table.take(np.arange(start, stop))


class IteratorChunkSource(ChunkSource):
    """Wrap a one-shot iterable of table chunks (not re-iterable)."""

    reiterable = False

    def __init__(self, iterable: Iterable[Table]):
        self._iterator = iter(iterable)
        self._consumed = False

    def chunks(self) -> Iterator[Table]:
        if self._consumed:
            raise StreamError(
                "this chunk source is single-shot and was already "
                "consumed; pass a callable returning a fresh iterable "
                "for a re-iterable source")
        self._consumed = True
        for chunk in self._iterator:
            if not isinstance(chunk, Table):
                raise StreamError(
                    f"chunk sources must yield Table chunks, got "
                    f"{type(chunk).__name__}")
            yield chunk


class CallableChunkSource(ChunkSource):
    """A zero-argument factory of chunk iterables (re-iterable)."""

    reiterable = True

    def __init__(self, factory: Callable[[], Iterable[Table]]):
        self._factory = factory

    def chunks(self) -> Iterator[Table]:
        for chunk in self._factory():
            if not isinstance(chunk, Table):
                raise StreamError(
                    f"chunk sources must yield Table chunks, got "
                    f"{type(chunk).__name__}")
            yield chunk


# ----------------------------------------------------------------------
# CSV ingestion
# ----------------------------------------------------------------------
def _read_header(path: pathlib.Path) -> Sequence[str]:
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        try:
            return next(reader)
        except StopIteration:
            raise StreamError(f"{path} is empty")


def infer_csv_schema(path, label: Optional[str] = None,
                     integral_tolerance: float = 0.0) -> Schema:
    """Infer a table schema from a CSV file in one streaming pass.

    A column is numerical when every value parses as a float (integral
    when all values are whole numbers); otherwise it is categorical
    with the sorted distinct labels as its vocabulary.  Only per-column
    summaries (a set of labels / two flags) are held in memory, so the
    pass is out-of-core like the ingestion itself.
    """
    path = pathlib.Path(path)
    header = _read_header(path)
    numeric = {name: True for name in header}
    integral = {name: True for name in header}
    labels: Dict[str, set] = {name: set() for name in header}
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        next(reader)
        for row in reader:
            if not row:
                continue
            if len(row) != len(header):
                raise StreamError(
                    f"{path}: row with {len(row)} fields, header has "
                    f"{len(header)}")
            for name, value in zip(header, row):
                if numeric[name]:
                    try:
                        parsed = float(value)
                        if integral[name] and parsed != int(parsed):
                            integral[name] = False
                        continue
                    except ValueError:
                        numeric[name] = False
                labels[name].add(value)
    attributes = []
    for name in header:
        if numeric[name]:
            attributes.append(Attribute(name, NUMERICAL,
                                        integral=integral[name]))
        else:
            if not labels[name]:
                raise StreamError(f"{path}: column {name!r} has no rows")
            attributes.append(Attribute(name, CATEGORICAL,
                                        categories=tuple(sorted(labels[name]))))
    return Schema(tuple(attributes), label_name=label)


class CsvChunkSource(ChunkSource):
    """Stream a CSV file as table chunks without materializing it.

    ``schema`` is inferred (one extra pass over the file) when not
    given.  Values outside an explicitly supplied categorical
    vocabulary raise :class:`StreamError` — silent growth would
    invalidate the caller's declared domain.
    """

    reiterable = True

    def __init__(self, path, chunk_rows: int = DEFAULT_CHUNK_ROWS,
                 schema: Optional[Schema] = None,
                 label: Optional[str] = None):
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be positive, got {chunk_rows}")
        self.path = pathlib.Path(path)
        if not self.path.exists():
            raise StreamError(f"no CSV file at {self.path}")
        self.chunk_rows = int(chunk_rows)
        self.schema = schema if schema is not None \
            else infer_csv_schema(self.path, label=label)
        self._codes = {
            attr.name: {cat: code
                        for code, cat in enumerate(attr.categories)}
            for attr in self.schema if attr.is_categorical}

    def _make_chunk(self, header: Sequence[str],
                    rows: list) -> Table:
        columns: Dict[str, np.ndarray] = {}
        index = {name: i for i, name in enumerate(header)}
        for attr in self.schema:
            if attr.name not in index:
                raise StreamError(
                    f"{self.path}: schema column {attr.name!r} missing "
                    f"from CSV header")
            i = index[attr.name]
            raw = [row[i] for row in rows]
            if attr.is_numerical:
                columns[attr.name] = np.asarray(raw, dtype=np.float64)
            else:
                codes = self._codes[attr.name]
                try:
                    columns[attr.name] = np.asarray(
                        [codes[value] for value in raw], dtype=np.int64)
                except KeyError as exc:
                    raise StreamError(
                        f"{self.path}: value {exc.args[0]!r} of column "
                        f"{attr.name!r} is outside the declared "
                        f"categories") from None
        return Table(self.schema, columns)

    def chunks(self) -> Iterator[Table]:
        with open(self.path, newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader)
            rows: list = []
            for row in reader:
                if not row:
                    continue
                rows.append(row)
                if len(rows) >= self.chunk_rows:
                    yield self._make_chunk(header, rows)
                    rows = []
            if rows:
                yield self._make_chunk(header, rows)


def table_chunks(table: Table, chunk_rows: int = DEFAULT_CHUNK_ROWS
                 ) -> Iterator[Table]:
    """Convenience generator over an in-memory table's chunks."""
    return TableChunkSource(table, chunk_rows).chunks()


def as_chunk_source(source, chunk_rows: Optional[int] = None,
                    schema: Optional[Schema] = None) -> ChunkSource:
    """Coerce any supported ``fit_stream`` source into a ChunkSource."""
    chunk_rows = chunk_rows if chunk_rows is not None else DEFAULT_CHUNK_ROWS
    if isinstance(source, ChunkSource):
        return source
    if isinstance(source, Table):
        return TableChunkSource(source, chunk_rows)
    if isinstance(source, (str, pathlib.Path)):
        return CsvChunkSource(source, chunk_rows, schema=schema)
    if callable(source):
        return CallableChunkSource(source)
    if isinstance(source, Iterable):
        return IteratorChunkSource(source)
    raise StreamError(
        f"cannot stream from {type(source).__name__}: pass a Table, a "
        f"CSV path, an iterable of Table chunks, or a callable "
        f"returning one")
