"""repro.stream — streaming / online synthesis support.

The subsystem behind ``Synthesizer.partial_fit`` and ``fit_stream``:

* :mod:`repro.stream.reservoir` — seeded bounded-memory reservoir
  sampling (the GAN/VAE replay buffer and the GMM refit buffer);
* :mod:`repro.stream.ingest` — chunk sources (in-memory tables, CSV
  files, iterators) for out-of-core ingestion.

Quick start::

    import repro

    synth = repro.fit_stream("big.csv", method="privbayes",
                             chunk_rows=50_000, epsilon=0.8)
    synth.partial_fit(new_chunk)      # data keeps arriving
    synth.sample(1000)                # lazily refreshes, then samples
    synth.privacy_spent()             # cumulative epsilon over refreshes
"""

from .ingest import (
    CallableChunkSource, ChunkSource, CsvChunkSource, DEFAULT_CHUNK_ROWS,
    IteratorChunkSource, TableChunkSource, as_chunk_source,
    infer_csv_schema, table_chunks,
)
from .reservoir import Reservoir, TableReservoir, reservoir_plan, widen_schema

__all__ = [
    "CallableChunkSource", "ChunkSource", "CsvChunkSource",
    "IteratorChunkSource",
    "TableChunkSource", "DEFAULT_CHUNK_ROWS", "as_chunk_source",
    "infer_csv_schema", "table_chunks",
    "Reservoir", "TableReservoir", "reservoir_plan", "widen_schema",
]
