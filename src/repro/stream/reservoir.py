"""Seeded reservoir sampling: bounded-memory uniform samples of a stream.

The streaming subsystem's replay buffer.  A reservoir of capacity ``k``
holds, after any number of :meth:`add` calls, a uniform random sample of
the rows seen so far — the classical Algorithm R invariant — while
using memory proportional to ``k`` only.  Two concrete buffers share
one vectorized acceptance plan:

* :class:`Reservoir` — a flat value buffer (used by the GMM
  normalizer's reservoir-refit path);
* :class:`TableReservoir` — aligned per-column buffers over
  :class:`~repro.datasets.schema.Table` chunks (the GAN/VAE replay
  buffer; one plan is applied to every column so rows stay intact).

Both are seeded: given the same generator seed and the same chunk
sequence the retained sample is bit-identical, which is what makes
``fit_stream`` on the neural families reproducible.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..datasets.schema import Schema, Table
from ..errors import StreamError

_M_SEEN = None
_M_REPLACED = None


def _note_reservoir(seen: int, accepted: int) -> None:
    """Count reservoir traffic in the process metrics registry.

    Module-level and lazy: reservoirs are plain picklable state, so the
    instruments are never stored on them, and importing this module
    does not import ``repro.obs``.  ``accepted`` counts rows written
    past the initial fill — the replacement traffic whose ratio to
    ``seen`` is the reservoir's replace rate.
    """
    global _M_SEEN, _M_REPLACED
    if _M_SEEN is None:
        from ..obs.metrics import get_registry

        registry = get_registry()
        _M_SEEN = registry.counter(
            "repro_stream_reservoir_seen_total",
            "Rows offered to streaming reservoirs.")
        _M_REPLACED = registry.counter(
            "repro_stream_reservoir_replaced_total",
            "Reservoir slots overwritten after the initial fill.")
    _M_SEEN.inc(seen)
    if accepted:
        _M_REPLACED.inc(accepted)


def reservoir_plan(n_seen: int, m: int, capacity: int,
                   rng: np.random.Generator
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Which of ``m`` incoming items land where in a ``capacity`` buffer.

    Returns ``(positions, slots)``: item ``positions[i]`` of the chunk
    is written to buffer slot ``slots[i]``.  Implements Algorithm R
    vectorized over the chunk: the first ``capacity - n_seen`` items
    fill empty slots; item number ``t`` (0-based over the whole stream)
    is then accepted with probability ``capacity / (t + 1)`` into a
    uniformly random slot.  Duplicate slots within one chunk resolve
    last-wins under numpy fancy assignment, matching the sequential
    algorithm.
    """
    fill = max(0, min(capacity - n_seen, m))
    fill_positions = np.arange(fill, dtype=np.intp)
    fill_slots = n_seen + fill_positions
    rest = m - fill
    if rest == 0:
        return fill_positions, fill_slots
    t = n_seen + fill + np.arange(rest, dtype=np.int64)
    accept = rng.random(rest) * (t + 1) < capacity
    accepted = np.flatnonzero(accept) + fill
    slots = rng.integers(0, capacity, size=len(accepted))
    return (np.concatenate([fill_positions, accepted.astype(np.intp)]),
            np.concatenate([fill_slots, slots.astype(np.intp)]))


class Reservoir:
    """Bounded uniform sample of a stream of scalar values."""

    def __init__(self, capacity: int,
                 rng: Optional[np.random.Generator] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.n_seen = 0
        self._buffer: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return min(self.n_seen, self.capacity)

    def add(self, values: np.ndarray) -> "Reservoir":
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got {values.ndim}-D; "
                             f"Reservoir holds scalar value streams")
        if self._buffer is None:
            self._buffer = np.empty(self.capacity, dtype=values.dtype)
        positions, slots = reservoir_plan(self.n_seen, len(values),
                                          self.capacity, self.rng)
        self._buffer[slots] = values[positions]
        fill = max(0, min(self.capacity - self.n_seen, len(values)))
        self.n_seen += len(values)
        _note_reservoir(len(values), len(positions) - fill)
        return self

    def values(self) -> np.ndarray:
        """The retained sample (a copy, in slot order)."""
        if self._buffer is None:
            return np.empty(0)
        return self._buffer[:len(self)].copy()

    def to_state(self) -> dict:
        return {"capacity": self.capacity, "n_seen": self.n_seen,
                "values": self.values().tolist()}


class TableReservoir:
    """Bounded uniform row sample over a stream of table chunks.

    One :func:`reservoir_plan` per chunk is applied to every column, so
    buffered rows stay aligned.  The schema is taken from the first
    chunk and widened in place when later chunks arrive with grown
    categorical domains (the grow-only vocab contract of streaming
    ingestion); conflicting names or kinds raise :class:`StreamError`.
    """

    def __init__(self, capacity: int,
                 rng: Optional[np.random.Generator] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.rng = rng if rng is not None else np.random.default_rng()
        self.n_seen = 0
        self.schema: Optional[Schema] = None
        self._columns: Dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return min(self.n_seen, self.capacity)

    def add(self, table: Table) -> "TableReservoir":
        if self.schema is None:
            self.schema = table.schema
            self._columns = {
                name: np.empty(self.capacity,
                               dtype=table.column(name).dtype)
                for name in table.schema.names}
        else:
            self.schema = widen_schema(self.schema, table.schema)
        positions, slots = reservoir_plan(self.n_seen, len(table),
                                          self.capacity, self.rng)
        for name, buffer in self._columns.items():
            buffer[slots] = table.column(name)[positions]
        fill = max(0, min(self.capacity - self.n_seen, len(table)))
        self.n_seen += len(table)
        _note_reservoir(len(table), len(positions) - fill)
        return self

    def table(self) -> Table:
        """The retained rows as a table under the widest schema seen."""
        if self.schema is None:
            raise StreamError("reservoir is empty: no chunks added")
        k = len(self)
        return Table(self.schema, {name: buffer[:k].copy()
                                   for name, buffer in self._columns.items()})


def widen_schema(current: Schema, incoming: Schema) -> Schema:
    """Merge two stream-chunk schemas under the grow-only contract.

    Attribute names, kinds, and order must match; categorical category
    lists may only *extend* the ones already seen (new codes append).
    Returns whichever schema dominates — usually one of the inputs
    unchanged, so repeated calls on a fixed schema are free.
    """
    if current.names != incoming.names:
        raise StreamError(
            f"stream chunk schema mismatch: expected columns "
            f"{current.names}, got {incoming.names}")
    merged = []
    changed = False
    for old, new in zip(current.attributes, incoming.attributes):
        if old.kind != new.kind or old.integral != new.integral:
            raise StreamError(
                f"stream chunk changed the type of attribute "
                f"{old.name!r}")
        if old.is_categorical and old.categories != new.categories:
            longer, shorter = ((new, old)
                              if len(new.categories) >= len(old.categories)
                              else (old, new))
            if longer.categories[:len(shorter.categories)] \
                    != shorter.categories:
                raise StreamError(
                    f"stream chunk renamed categories of {old.name!r}; "
                    f"categorical vocabularies may only grow")
            if longer is new:
                changed = True
            merged.append(longer)
        else:
            merged.append(old)
    if not changed:
        return current
    return Schema(tuple(merged), label_name=current.label_name)
