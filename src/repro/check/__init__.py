"""`repro.check` — invariant lint and runtime sanitizers.

Two-layer correctness tooling for the contracts the test suite cannot
exhaustively cover by example:

* **Static lint** (:mod:`repro.check.lint`) — run
  ``python -m repro.check.lint src/``.  AST-based, project-specific
  rules: RC001 determinism (no global-state RNG / wall-clock in library
  code), RC002 fork-safety (lock-holding classes crossing into serve
  workers must be reset-aware and refuse naive pickling), RC003 pool
  discipline (every ``ArrayPool.take`` paired with a donate on all
  paths), RC004 dtype discipline (no hard-coded float dtypes in hot
  paths — route through ``get_default_dtype()``), RC005 error
  discipline (validation raises name the offending argument), RC006
  silent-failure discipline (broad ``except`` in the serving layer must
  re-raise or record the failure to pool state).
* **Runtime sanitizers** (:mod:`repro.check.sanitize`) — opt-in via
  ``REPRO_SANITIZE=1`` or :func:`sanitized`: NaN/Inf tape checking,
  ArrayPool leak/double-donation detection, lock-order recording over
  the serving stack, and a :func:`deterministic_guard` that turns the
  sharded-seed bit-identity contract into an executable assertion.

See the README's "Correctness tooling" section for a walkthrough.
"""

from __future__ import annotations

from .errors import (
    CheckError, LockOrderError, NonDeterminismError, PoolDisciplineError,
    PoolLeakError, TapeCorruptionError,
)
from .lockorder import (
    lock_graph_edges, make_condition, make_lock, reset_lock_graph,
)
from .sanitize import (
    deterministic_guard, deterministic_scope, disable_sanitizers,
    enable_sanitizers, pool_leak_scope, sanitized, sanitizers_enabled,
)

__all__ = [
    "CheckError", "TapeCorruptionError", "PoolDisciplineError",
    "PoolLeakError", "LockOrderError", "NonDeterminismError",
    "enable_sanitizers", "disable_sanitizers", "sanitizers_enabled",
    "sanitized", "deterministic_guard", "deterministic_scope",
    "pool_leak_scope",
    "make_lock", "make_condition", "reset_lock_graph", "lock_graph_edges",
]
