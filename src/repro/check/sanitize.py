"""Runtime sanitizers for the engine's correctness contracts.

Four opt-in checkers turn the library's implicit invariants into
executable assertions (enable with ``REPRO_SANITIZE=1`` in the
environment, or :func:`enable_sanitizers` / the :func:`sanitized`
context manager in code):

* **NaN/Inf tape sanitizer** — every tape node's output and every
  gradient flowing through the backward pass is checked for non-finite
  values; the *first* corrupted node is reported with its op name,
  corruption counts, and input shapes, instead of a NaN surfacing three
  layers downstream.  Scope is deliberately the autograd tape only:
  report-layer statistics (:mod:`repro.core.statistics` and friends)
  run on plain ndarrays outside the tape, so their documented
  degenerate-case NaN handling stays non-fatal (they warn — see
  :class:`repro.core.statistics.DegenerateColumnWarning`).
* **ArrayPool tracker** — enforces the buffer-donation lifetime
  contract of :class:`repro.nn.tensor.ArrayPool`: donating a buffer
  twice or returning a buffer the pool never handed out raises
  immediately; :func:`pool_leak_scope` additionally asserts that every
  buffer taken inside the scope was donated back by its end.
* **lock-order recorder** — see :mod:`repro.check.lockorder`.
* **deterministic guard** — :func:`deterministic_guard` patches the
  global-state ``np.random.*`` draw functions to raise, making the
  sharded-seed bit-identity contract executable; the seeded sampling
  and streaming-fit paths of :class:`repro.api.Synthesizer` enter it
  automatically while sanitizers are enabled.

The sanitizers are test/debug tooling: they patch process-global state
(``Tensor._make``, ``np.random``) and add per-op checks, so they are not
meant to stay on in production serving.
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .errors import (
    NonDeterminismError, PoolDisciplineError, PoolLeakError,
    TapeCorruptionError,
)

__all__ = [
    "enable_sanitizers", "disable_sanitizers", "sanitizers_enabled",
    "sanitized", "deterministic_guard", "deterministic_scope",
    "pool_leak_scope",
]

_enabled = False
_saved_make = None
_saved_propagate = None


def sanitizers_enabled() -> bool:
    """True while the runtime sanitizers are installed."""
    return _enabled


# ----------------------------------------------------------------------
# NaN/Inf tape sanitizer
# ----------------------------------------------------------------------
def _op_name(backward) -> str:
    """Human-readable op name from a backward closure's qualname.

    Tape nodes wire a closure named ``backward`` defined inside the op
    (``Tensor.relu.<locals>.backward`` → ``Tensor.relu``).
    """
    qualname = getattr(backward, "__qualname__", None) or "<unknown-op>"
    return qualname.split(".<locals>")[0]


def _check_finite(array: np.ndarray, what: str, op: str,
                  shapes: List[Tuple[int, ...]]) -> None:
    if array.dtype.kind != "f":
        return
    if np.isfinite(array).all():
        return
    nan = int(np.isnan(array).sum())
    inf = int(np.isinf(array).sum())
    raise TapeCorruptionError(
        f"non-finite {what} at tape node {op!r}: {nan} NaN / {inf} Inf "
        f"in array of shape {array.shape}; input shapes {shapes}")


def _install_tape_checks() -> None:
    global _saved_make, _saved_propagate
    from ..nn.tensor import Tensor

    # Class-attribute access unwraps the staticmethod to the plain
    # function, which is exactly what we want to save and wrap.
    _saved_make = Tensor._make
    _saved_propagate = Tensor._propagate
    original_make = _saved_make
    original_propagate = _saved_propagate

    def checking_make(data, parents, backward):
        node = original_make(data, parents, backward)
        _check_finite(node.data, "output", _op_name(backward),
                      [tuple(p.data.shape) for p in parents])
        return node

    def checking_propagate(self, grad, grads):
        _check_finite(grad, "incoming gradient", _op_name(self._backward),
                      [tuple(p.data.shape) for p in self._parents])
        original_propagate(self, grad, grads)

    Tensor._make = staticmethod(checking_make)
    Tensor._propagate = checking_propagate


def _uninstall_tape_checks() -> None:
    global _saved_make, _saved_propagate
    if _saved_make is None:
        return
    from ..nn.tensor import Tensor

    Tensor._make = staticmethod(_saved_make)
    Tensor._propagate = _saved_propagate
    _saved_make = None
    _saved_propagate = None


# ----------------------------------------------------------------------
# ArrayPool lifetime tracker
# ----------------------------------------------------------------------
class _PoolTracker:
    """Tracks every live pool buffer as ``outstanding`` or ``pooled``.

    Keyed by buffer identity; entries hold a weak reference so a buffer
    dropped by the pool (stack full) or a never-donated tape scratch is
    forgotten when garbage collected rather than poisoning id reuse.
    """

    def __getstate__(self):
        raise TypeError("_PoolTracker is not picklable: it tracks "
                        "process-local buffer identities under a lock")

    def __init__(self):
        self._lock = threading.Lock()
        # id(buffer) -> [pool_id, state, seq, shape, dtype, weakref]
        self._entries: Dict[int, list] = {}
        self._seq = 0

    def _forget(self, buffer_id: int) -> None:
        with self._lock:
            self._entries.pop(buffer_id, None)

    def on_take(self, pool, array: np.ndarray) -> None:
        buffer_id = id(array)
        ref = weakref.ref(array, lambda _r, bid=buffer_id: self._forget(bid))
        with self._lock:
            self._seq += 1
            self._entries[buffer_id] = [
                id(pool), "outstanding", self._seq, array.shape,
                array.dtype, ref]

    def on_put(self, pool, array: np.ndarray) -> None:
        with self._lock:
            entry = self._entries.get(id(array))
            if entry is None or entry[0] != id(pool):
                raise PoolDisciplineError(
                    f"foreign buffer returned to ArrayPool: array of shape "
                    f"{array.shape} ({array.dtype}) was never taken from "
                    f"this pool")
            if entry[1] == "pooled":
                raise PoolDisciplineError(
                    f"double donation to ArrayPool: buffer of shape "
                    f"{array.shape} ({array.dtype}) was already returned "
                    f"and not re-taken since")
            entry[1] = "pooled"

    def on_clear(self, pool) -> None:
        with self._lock:
            stale = [bid for bid, entry in self._entries.items()
                     if entry[0] == id(pool)]
            for bid in stale:
                del self._entries[bid]

    def mark(self) -> int:
        with self._lock:
            return self._seq

    def outstanding_since(self, mark: int,
                          pools: Optional[Tuple] = None) -> List[str]:
        pool_ids = None if not pools else {id(p) for p in pools}
        with self._lock:
            return [
                f"shape {entry[3]} ({entry[4]})"
                for entry in self._entries.values()
                if entry[1] == "outstanding" and entry[2] > mark
                and (pool_ids is None or entry[0] in pool_ids)]


def _install_pool_tracker() -> None:
    from ..nn.tensor import ArrayPool

    ArrayPool._tracker = _PoolTracker()


def _uninstall_pool_tracker() -> None:
    from ..nn.tensor import ArrayPool

    ArrayPool._tracker = None


@contextlib.contextmanager
def pool_leak_scope(*pools) -> Iterator[None]:
    """Assert pool take/donate balance across the scope.

    Every :meth:`ArrayPool.take` performed inside the scope (restricted
    to ``pools`` if given, else all pools) must have been donated back
    by the time the scope exits, or :class:`PoolLeakError` is raised
    listing the leaked buffers.  Use around a train step (forward +
    backward + optimizer) or a sampling chunk, where lifetimes are
    expected to balance.  Installs a temporary tracker when sanitizers
    are not already enabled.
    """
    from ..nn.tensor import ArrayPool

    temporary = ArrayPool._tracker is None
    if temporary:
        _install_pool_tracker()
    tracker = ArrayPool._tracker
    mark = tracker.mark()
    try:
        yield
        leaks = tracker.outstanding_since(mark, pools)
        if leaks:
            raise PoolLeakError(
                f"{len(leaks)} pool buffer(s) taken inside the scope were "
                f"never donated back: {', '.join(leaks[:8])}"
                + ("..." if len(leaks) > 8 else ""))
    finally:
        if temporary:
            _uninstall_pool_tracker()


# ----------------------------------------------------------------------
# Deterministic guard
# ----------------------------------------------------------------------
#: Global-state draw/mutation functions on ``np.random``.  Seeded
#: constructors (``default_rng``, ``SeedSequence``, ``Generator``,
#: bit generators) are deliberately absent — they are the sanctioned API.
_GLOBAL_RNG_FUNCTIONS = (
    "seed", "random", "ranf", "sample", "random_sample", "rand", "randn",
    "randint", "random_integers", "bytes", "choice", "shuffle",
    "permutation", "uniform", "normal", "standard_normal",
    "standard_cauchy", "standard_exponential", "standard_gamma", "beta",
    "binomial", "poisson", "exponential", "gamma", "geometric", "laplace",
    "logistic", "lognormal", "gumbel", "dirichlet", "multinomial",
    "multivariate_normal", "vonmises", "chisquare", "triangular",
    "noncentral_chisquare", "negative_binomial", "hypergeometric",
    "logseries", "pareto", "power", "rayleigh", "wald", "weibull", "zipf",
    "f", "get_state", "set_state",
)

_guard_lock = threading.Lock()
_guard_depth = 0
_guard_saved: Dict[str, object] = {}


def _make_raiser(name: str):
    def raiser(*args, **kwargs):
        raise NonDeterminismError(
            f"np.random.{name}() called inside a deterministic scope: "
            f"seeded sampling/fitting must draw only from its keyed "
            f"substream generators (repro.api.seeding.substream), never "
            f"from NumPy's hidden global RNG state")
    raiser.__name__ = f"_forbidden_{name}"
    return raiser


@contextlib.contextmanager
def deterministic_guard() -> Iterator[None]:
    """Raise on any global-state ``np.random`` draw inside the block.

    Reentrant and thread-refcounted: the patch is installed on first
    entry and removed when the last concurrent scope exits.  Note the
    patch is process-global — while *any* thread is inside a guard, all
    threads see the raising stubs (acceptable for the sanitized test
    runs this is built for).
    """
    global _guard_depth
    with _guard_lock:
        _guard_depth += 1
        if _guard_depth == 1:
            for name in _GLOBAL_RNG_FUNCTIONS:
                if hasattr(np.random, name):
                    _guard_saved[name] = getattr(np.random, name)
                    setattr(np.random, name, _make_raiser(name))
    try:
        yield
    finally:
        with _guard_lock:
            _guard_depth -= 1
            if _guard_depth == 0:
                for name, fn in _guard_saved.items():
                    setattr(np.random, name, fn)
                _guard_saved.clear()


def deterministic_scope():
    """The guard when sanitizers are enabled, else a no-op context.

    Hook point for the seeded sampling / streaming-fit paths: zero
    overhead in normal runs, an executable bit-identity assertion under
    ``REPRO_SANITIZE=1``.
    """
    if _enabled:
        return deterministic_guard()
    return contextlib.nullcontext()


# ----------------------------------------------------------------------
# Master switch
# ----------------------------------------------------------------------
def enable_sanitizers() -> None:
    """Install every runtime sanitizer (idempotent).

    Lock-order recording applies to locks created *after* this call
    (roles are chosen at lock construction via
    :func:`repro.check.lockorder.make_lock`), so enable before building
    stores/services/pools — ``REPRO_SANITIZE=1`` does this at import.
    """
    global _enabled
    if _enabled:
        return
    _install_tape_checks()
    _install_pool_tracker()
    _enabled = True


def disable_sanitizers() -> None:
    """Remove every runtime sanitizer installed by :func:`enable_sanitizers`."""
    global _enabled
    if not _enabled:
        return
    _uninstall_tape_checks()
    _uninstall_pool_tracker()
    _enabled = False


@contextlib.contextmanager
def sanitized() -> Iterator[None]:
    """Scope-enable the sanitizers (no-op if already enabled)."""
    if _enabled:
        yield
        return
    enable_sanitizers()
    try:
        yield
    finally:
        disable_sanitizers()
