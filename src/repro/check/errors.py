"""Error types raised by the :mod:`repro.check` correctness tooling.

All runtime-sanitizer failures derive from :class:`CheckError` so test
harnesses can catch the whole family; each subclass corresponds to one
sanitizer (tape numerics, pool discipline, lock ordering, determinism).
"""

from __future__ import annotations


class CheckError(RuntimeError):
    """Base class for every runtime-sanitizer failure."""


class TapeCorruptionError(CheckError):
    """A tape node produced (or received) a non-finite value.

    Raised by the NaN/Inf tape sanitizer with the node's op name, the
    corruption counts, and the input shapes — the first corrupted node,
    not the downstream symptom.
    """


class PoolDisciplineError(CheckError):
    """An :class:`~repro.nn.tensor.ArrayPool` buffer broke its lifetime
    contract: donated twice, or a foreign buffer was returned."""


class PoolLeakError(PoolDisciplineError):
    """Buffers taken inside a :func:`repro.check.pool_leak_scope` were
    never donated back by the time the scope closed."""


class LockOrderError(CheckError):
    """Two lock roles were acquired in inconsistent orders.

    Raised by the lock-order recorder the moment an acquisition would
    close a cycle in the role-level acquisition graph — a deadlock that
    may never fire under test timing but can in production.
    """


class NonDeterminismError(CheckError):
    """Global-state NumPy RNG was consumed inside a deterministic scope.

    Seeded sampling/fitting must draw exclusively from its keyed
    substream generators (:mod:`repro.api.seeding`); one hidden
    ``np.random.*`` draw silently breaks the bit-identity contract.
    """
