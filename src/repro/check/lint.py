"""Static invariant lint: ``python -m repro.check.lint src/``.

An AST-based analyzer with project-specific rules for the contracts
that generic linters cannot see:

* **RC001 determinism** — library code must not consume global-state
  RNG (``np.random.rand`` and friends, ``random.*``) or wall-clock time
  (``time.time``, ``datetime.now``).  Seeded generators
  (``np.random.default_rng(seed)``, ``SeedSequence``) and monotonic
  clocks (``time.monotonic``, ``time.perf_counter``) are the sanctioned
  APIs.  Under ``--profile scripts`` (for ``examples/`` and
  ``benchmarks/``) wall-clock is allowed and global-state draws are
  allowed *if the script seeds the global RNG* — demo code stays honest
  without being forced into library discipline.
* **RC002 fork-safety** — a class that stores a ``threading.Lock`` /
  ``RLock`` / ``Condition`` on ``self`` can silently cross a
  pickle/fork boundary into ``serve.pool`` workers.  Such classes must
  either refuse naive pickling (``__getstate__`` / ``__reduce__``) or
  provide the worker reset hook (``spawn_sampler`` /
  ``reset_worker_state``).
* **RC003 pool discipline** — every ``ArrayPool.take`` must be paired
  with a donate (``.put`` or a ``_donate_*`` helper) reachable on all
  control-flow paths.  Two shapes are flagged: a take with no donation
  anywhere, and a take whose only donation lives inside a nested
  closure (the backward hook) — the no-grad path then leaks the buffer.
* **RC004 dtype discipline** — no hard-coded ``np.float32`` /
  ``np.float64`` array construction in hot paths (``nn``, ``gan``,
  ``stream``, ``api``, ``serve``); route through
  ``repro.nn.get_default_dtype()`` so the float64 bit-exact parity mode
  and the float32 fast-math mode stay honest.  Scopes whose qualified
  name contains ``parity`` are exempt (they pin float64 by design), as
  are the report-layer ``core``/``privacy`` modules and this tooling.
* **RC005 error discipline** — an argument-validation ``raise`` (a
  ``ValueError``/``TypeError`` guarded by a test on a parameter) must
  name the offending argument in its message, either literally or by
  formatting a parameter into it.
* **RC006 silent-failure discipline** — in the serving layer
  (``serve/``), a broad ``except`` (bare, ``Exception``, or
  ``BaseException``) whose body neither re-raises, nor calls anything,
  nor records state is a swallowed failure: supervision code that eats
  an exception with ``pass`` turns a worker crash into an undiagnosable
  hang.  Handlers in ``__del__`` are exempt (interpreter teardown).
* **RC007 clock discipline** — library code must not read the raw
  monotonic clocks (``time.monotonic`` / ``time.perf_counter`` and
  their ``_ns`` variants) directly; route through
  :mod:`repro.obs.clock` (``monotonic()`` / ``perf()``), whose active
  clock is injectable, so timeout and latency logic stays testable
  under a manual clock.  ``repro.obs`` itself is exempt — it is the
  one sanctioned wrapper.

Findings print as ``path:line: RCnnn in scope: message (hint)``.
Suppression, in ratchet order of preference: fix the code; add an
inline ``# repro-check: disable=RCnnn`` pragma on the offending line;
or record it in the checked-in baseline file (``.repro-lint-baseline``,
auto-discovered in the working directory, one
``RCnnn path::scope`` entry per line).  The process exits 0 when every
finding is suppressed and 1 otherwise; stale baseline entries are
reported so the baseline only ever shrinks.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Finding", "lint_paths", "lint_source", "load_baseline", "main"]

# ----------------------------------------------------------------------
# Rule tables
# ----------------------------------------------------------------------
#: numpy.random functions backed by the hidden global RNG state.
_NP_GLOBAL_RNG = {
    "seed", "random", "ranf", "sample", "random_sample", "rand", "randn",
    "randint", "random_integers", "bytes", "choice", "shuffle",
    "permutation", "uniform", "normal", "standard_normal",
    "standard_cauchy", "standard_exponential", "standard_gamma", "beta",
    "binomial", "poisson", "exponential", "gamma", "geometric", "laplace",
    "logistic", "lognormal", "gumbel", "dirichlet", "multinomial",
    "multivariate_normal", "vonmises", "chisquare", "triangular",
    "noncentral_chisquare", "negative_binomial", "hypergeometric",
    "logseries", "pareto", "power", "rayleigh", "wald", "weibull", "zipf",
    "f", "get_state", "set_state",
}

#: stdlib ``random`` module-level functions (``random.Random(seed)`` is
#: fine — it is an owned, seedable instance).
_STDLIB_RANDOM = {
    "random", "seed", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "triangular", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "getrandbits", "randbytes", "getstate", "setstate",
}

_RC001_RNG = (
    {f"numpy.random.{name}" for name in _NP_GLOBAL_RNG}
    | {f"random.{name}" for name in _STDLIB_RANDOM}
)
_RC001_WALLCLOCK = {
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}
_SEEDING_CALLS = {"numpy.random.seed", "random.seed"}

_LOCK_FACTORIES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
}
_LOCK_FACTORY_NAMES = {"make_lock", "make_condition"}
_RC002_ESCAPE_HOOKS = {
    "__getstate__", "__reduce__", "__reduce_ex__",
    "spawn_sampler", "reset_worker_state",
}

_TAKE_HELPERS = {"_take_sign_mask"}
_DONATE_NAMES = {
    "put", "_donate_mask", "_donate_scratch", "_mask_for_backward",
}

_NP_CTOR_DTYPE_ARG = {
    "numpy.array": 1, "numpy.asarray": 1, "numpy.asanyarray": 1,
    "numpy.ascontiguousarray": 1, "numpy.zeros": 1, "numpy.ones": 1,
    "numpy.empty": 1, "numpy.full": 2, "numpy.zeros_like": 1,
    "numpy.ones_like": 1, "numpy.empty_like": 1, "numpy.full_like": 2,
    "numpy.arange": 4, "numpy.linspace": 5, "numpy.frombuffer": 1,
    "numpy.fromiter": 1,
}
_HARD_DTYPES = {"numpy.float32", "numpy.float64"}
_HARD_DTYPE_STRINGS = {"float32", "float64"}
#: Hot-path package fragments RC004 applies to; everything else is
#: report/tooling layer where an explicit dtype is a documentation, not
#: a parity hazard.
_RC004_HOT_FRAGMENTS = ("/nn/", "/gan/", "/stream/", "/api/", "/serve/")

_RC005_EXC_NAMES = {"ValueError", "TypeError"}

#: RC006 applies only to the serving layer: supervision code there must
#: never eat an exception silently, or a worker crash degrades into an
#: undiagnosable request hang.
_RC006_FRAGMENT = "/serve/"
_RC006_BROAD = {"Exception", "BaseException"}

#: RC007: raw monotonic reads scattered across library modules cannot
#: be faked in tests; they must route through the injectable
#: ``repro.obs.clock``.  The obs package itself is the wrapper.
_RC007_TIMING = {
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
}
_RC007_EXEMPT_FRAGMENT = "/obs/"

_HINTS = {
    "RC001": "draw from a keyed substream (repro.api.seeding.substream / "
             "np.random.default_rng(seed)) or a monotonic clock instead",
    "RC002": "define __getstate__/__reduce__ to refuse pickling, or the "
             "spawn_sampler/reset_worker_state worker hook",
    "RC003": "donate with pool.put()/_donate_* on every path, including "
             "the no-grad path where backward never runs",
    "RC004": "route through repro.nn.get_default_dtype() so parity and "
             "fast-math modes agree",
    "RC005": "name the offending argument in the exception message",
    "RC006": "re-raise, or record the failure to pool state/events so "
             "supervision stays observable",
    "RC007": "route timing through repro.obs.clock (monotonic()/perf()) "
             "so tests can inject a clock",
}

_PRAGMA = "# repro-check: disable="


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str
    line: int
    scope: str
    message: str

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path.replace(os.sep, "/"), self.scope)

    def render(self) -> str:
        hint = _HINTS.get(self.rule, "")
        suffix = f" ({hint})" if hint else ""
        return (f"{self.path}:{self.line}: {self.rule} in {self.scope}: "
                f"{self.message}{suffix}")


# ----------------------------------------------------------------------
# Name resolution
# ----------------------------------------------------------------------
def _collect_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted module paths.

    ``import numpy as np`` → ``np: numpy``; ``from datetime import
    datetime`` → ``datetime: datetime.datetime``; ``from threading
    import Lock`` → ``Lock: threading.Lock``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                aliases[local] = item.asname and item.name or local
                if item.asname:
                    aliases[item.asname] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module and \
                node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = f"{node.module}.{item.name}"
    return aliases


def _resolve(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Canonical dotted name for a Name/Attribute chain, if resolvable."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(aliases.get(node.id, node.id))
    return ".".join(reversed(parts))


def _last_segment(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


# ----------------------------------------------------------------------
# Per-function pool-discipline analysis (RC003)
# ----------------------------------------------------------------------
def _is_pool_receiver(node: ast.AST, aliases: Dict[str, str]) -> bool:
    """Heuristic: does this expression denote an ArrayPool?"""
    resolved = _resolve(node, aliases)
    if resolved and resolved.startswith("numpy"):
        return False
    seg = _last_segment(node)
    return bool(seg) and "pool" in seg.lower()


def _take_calls_in(node: ast.AST, aliases: Dict[str, str],
                   skip_nested: bool) -> List[ast.Call]:
    calls = []
    for sub in _walk_scope(node, skip_nested):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Attribute) and func.attr == "take" and \
                _is_pool_receiver(func.value, aliases):
            calls.append(sub)
        elif _last_segment(func) in _TAKE_HELPERS:
            calls.append(sub)
    return calls


def _walk_scope(root: ast.AST, skip_nested: bool) -> Iterable[ast.AST]:
    """Walk ``root`` without descending into nested function scopes.

    Nested ``def``/``lambda`` nodes are still *yielded* (so callers can
    recurse into them explicitly); only their bodies are skipped.
    """
    if not skip_nested:
        yield from ast.walk(root)
        return
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if node is not root and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _names_in(node: ast.AST) -> Set[str]:
    return {sub.id for sub in ast.walk(node) if isinstance(sub, ast.Name)}


class _PoolAnalysis:
    """Escape analysis for taken buffers inside one function scope."""

    def __init__(self, func: ast.FunctionDef, aliases: Dict[str, str]):
        self.func = func
        self.aliases = aliases
        # taken var -> line of the take
        self.taken: Dict[str, int] = {}
        # var -> set of container/alias names that hold it
        self.holders: Dict[str, Set[str]] = {}
        self.body_discharged: Set[str] = set()
        self.closure_discharged: Set[str] = set()

    def run(self) -> List[Tuple[str, int, str]]:
        self._collect_takes_and_aliases()
        if not self.taken:
            return []
        self._collect_discharges(self.func, in_closure=False)
        findings = []
        for var, line in sorted(self.taken.items(), key=lambda kv: kv[1]):
            if var in self.body_discharged:
                continue
            if var in self.closure_discharged:
                findings.append((var, line, (
                    f"buffer {var!r} from ArrayPool.take is donated only "
                    f"inside a nested closure (the gradient path); the "
                    f"no-grad path leaks it")))
            else:
                findings.append((var, line, (
                    f"buffer {var!r} from ArrayPool.take is never donated "
                    f"back on any path")))
        return findings

    def _collect_takes_and_aliases(self) -> None:
        for node in _walk_scope(self.func, skip_nested=True):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if _take_calls_in(node.value, self.aliases, skip_nested=False):
                self.taken[target.id] = node.lineno
        # one alias pass: state = [mask] / state = (mask, y)
        for node in _walk_scope(self.func, skip_nested=True):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name) or \
                    not isinstance(node.value, (ast.List, ast.Tuple)):
                continue
            for var in _names_in(node.value) & set(self.taken):
                self.holders.setdefault(var, set()).add(target.id)

    def _watched(self, var: str) -> Set[str]:
        return {var} | self.holders.get(var, set())

    def _collect_discharges(self, scope: ast.AST, in_closure: bool) -> None:
        bucket = (self.closure_discharged if in_closure
                  else self.body_discharged)
        for node in _walk_scope(scope, skip_nested=True):
            if isinstance(node, ast.Call):
                name = _last_segment(node.func)
                if name in _DONATE_NAMES:
                    arg_names = set()
                    for arg in node.args:
                        arg_names |= _names_in(arg)
                    for var in self.taken:
                        if arg_names & self._watched(var):
                            bucket.add(var)
            elif isinstance(node, ast.Return) and node.value is not None:
                returned = _names_in(node.value)
                for var in self.taken:
                    if returned & self._watched(var):
                        bucket.add(var)
        for node in _walk_scope(scope, skip_nested=True):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not scope:
                self._collect_discharges(node, in_closure=True)


# ----------------------------------------------------------------------
# Module linter
# ----------------------------------------------------------------------
class _ModuleLinter(ast.NodeVisitor):
    def __init__(self, path: str, tree: ast.Module, lines: List[str],
                 profile: str):
        self.path = path
        self.tree = tree
        self.lines = lines
        self.profile = profile
        self.aliases = _collect_aliases(tree)
        self.scope_stack: List[str] = []
        self.findings: List[Finding] = []
        self.module_seeds_global_rng = self._seeds_global_rng()

    # -- helpers -------------------------------------------------------
    def _seeds_global_rng(self) -> bool:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                resolved = _resolve(node.func, self.aliases)
                if resolved in _SEEDING_CALLS:
                    return True
        return False

    def _scope(self) -> str:
        return ".".join(self.scope_stack) or "<module>"

    def _suppressed(self, rule: str, line: int) -> bool:
        if 1 <= line <= len(self.lines):
            text = self.lines[line - 1]
            idx = text.find(_PRAGMA)
            if idx >= 0:
                tags = text[idx + len(_PRAGMA):].split()[0].split(",")
                return rule in tags or "all" in tags
        return False

    def _report(self, rule: str, node: ast.AST, message: str,
                scope: Optional[str] = None) -> None:
        line = getattr(node, "lineno", 1)
        if self._suppressed(rule, line):
            return
        self.findings.append(Finding(
            rule=rule, path=self.path, line=line,
            scope=scope or self._scope(), message=message))

    # -- traversal -----------------------------------------------------
    def run(self) -> List[Finding]:
        self.visit(self.tree)
        return self.findings

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.profile == "library":
            self._check_rc002(node)
        self.scope_stack.append(node.name)
        self.generic_visit(node)
        self.scope_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.scope_stack.append(node.name)
        if self.profile == "library":
            self._check_rc003(node)
            self._check_rc005(node)
        self.generic_visit(node)
        self.scope_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        self._check_rc001(node)
        if self.profile == "library":
            self._check_rc004(node)
            self._check_rc007(node)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.profile == "library":
            self._check_rc006(node)
        self.generic_visit(node)

    # -- RC001 ---------------------------------------------------------
    def _check_rc001(self, node: ast.Call) -> None:
        resolved = _resolve(node.func, self.aliases)
        if resolved is None:
            return
        if resolved in _RC001_RNG:
            if self.profile == "scripts" and self.module_seeds_global_rng:
                return
            what = ("global-state RNG draw" if self.profile == "library"
                    else "unseeded global-state RNG draw")
            self._report("RC001", node,
                         f"{what} {resolved}() breaks the sharded-seed "
                         f"determinism contract")
        elif resolved in _RC001_WALLCLOCK and self.profile == "library":
            self._report("RC001", node,
                         f"wall-clock read {resolved}() in library code; "
                         f"results must not depend on when they run")

    # -- RC002 ---------------------------------------------------------
    def _check_rc002(self, node: ast.ClassDef) -> None:
        lock_line = None
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            target = sub.targets[0] if len(sub.targets) == 1 else None
            if not (isinstance(target, ast.Attribute) and
                    isinstance(target.value, ast.Name) and
                    target.value.id == "self"):
                continue
            for call in ast.walk(sub.value):
                if not isinstance(call, ast.Call):
                    continue
                resolved = _resolve(call.func, self.aliases)
                if resolved in _LOCK_FACTORIES or \
                        _last_segment(call.func) in _LOCK_FACTORY_NAMES:
                    lock_line = lock_line or sub.lineno
        if lock_line is None:
            return
        methods = {m.name for m in node.body
                   if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))}
        if methods & _RC002_ESCAPE_HOOKS:
            return
        self._report(
            "RC002", node,
            f"class {node.name} stores a threading lock on self (line "
            f"{lock_line}) but defines no fork/pickle escape hook "
            f"({', '.join(sorted(_RC002_ESCAPE_HOOKS))})",
            scope=".".join(self.scope_stack + [node.name]))

    # -- RC003 ---------------------------------------------------------
    def _check_rc003(self, node: ast.FunctionDef) -> None:
        for _var, line, message in _PoolAnalysis(node, self.aliases).run():
            if self._suppressed("RC003", line):
                continue
            self.findings.append(Finding(
                rule="RC003", path=self.path, line=line,
                scope=self._scope(), message=message))

    # -- RC004 ---------------------------------------------------------
    def _rc004_applies(self) -> bool:
        posix = "/" + self.path.replace(os.sep, "/")
        if not any(frag in posix for frag in _RC004_HOT_FRAGMENTS):
            return False
        return "parity" not in self._scope().lower()

    def _hard_dtype(self, node: ast.AST) -> Optional[str]:
        resolved = _resolve(node, self.aliases)
        if resolved in _HARD_DTYPES:
            return resolved.replace("numpy.", "np.")
        if isinstance(node, ast.Constant) and \
                node.value in _HARD_DTYPE_STRINGS:
            return repr(node.value)
        return None

    def _check_rc004(self, node: ast.Call) -> None:
        if not self._rc004_applies():
            return
        resolved = _resolve(node.func, self.aliases)
        dtype_node = None
        if resolved in _NP_CTOR_DTYPE_ARG:
            for kw in node.keywords:
                if kw.arg == "dtype":
                    dtype_node = kw.value
            pos = _NP_CTOR_DTYPE_ARG[resolved]
            if dtype_node is None and len(node.args) > pos:
                dtype_node = node.args[pos]
        elif isinstance(node.func, ast.Attribute) and \
                node.func.attr == "astype" and node.args:
            dtype_node = node.args[0]
        if dtype_node is None:
            return
        hard = self._hard_dtype(dtype_node)
        if hard is not None:
            self._report("RC004", node,
                         f"hard-coded {hard} array construction in a hot "
                         f"path pins one precision mode")

    # -- RC005 ---------------------------------------------------------
    def _check_rc005(self, node: ast.FunctionDef) -> None:
        params = {a.arg for a in (node.args.posonlyargs + node.args.args +
                                  node.args.kwonlyargs)} - {"self", "cls"}
        if not params:
            return
        self._walk_rc005(node, node, params, guard_params=set())

    def _walk_rc005(self, scope: ast.FunctionDef, node: ast.AST,
                    params: Set[str], guard_params: Set[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            if isinstance(child, ast.If):
                tested = _names_in(child.test) & params
                for stmt in child.body:
                    self._walk_rc005(scope, stmt, params,
                                     guard_params | tested)
                    self._rc005_stmt(stmt, params, guard_params | tested)
                for stmt in child.orelse:
                    self._walk_rc005(scope, stmt, params, guard_params)
                    self._rc005_stmt(stmt, params, guard_params)
                continue
            self._rc005_stmt(child, params, guard_params)
            self._walk_rc005(scope, child, params, guard_params)

    def _rc005_stmt(self, stmt: ast.AST, params: Set[str],
                    guard_params: Set[str]) -> None:
        if not isinstance(stmt, ast.Raise) or not guard_params:
            return
        exc = stmt.exc
        if not isinstance(exc, ast.Call) or \
                _last_segment(exc.func) not in _RC005_EXC_NAMES:
            return
        if exc.args and self._message_names_arg(exc.args[0], params,
                                                guard_params):
            return
        self._report(
            "RC005", stmt,
            f"validation raise for argument(s) "
            f"{', '.join(sorted(guard_params))} does not name the "
            f"offending argument in its message")

    @staticmethod
    def _message_names_arg(msg: ast.AST, params: Set[str],
                           guard_params: Set[str]) -> bool:
        if isinstance(msg, ast.Constant) and isinstance(msg.value, str):
            return any(name in msg.value for name in guard_params)
        if isinstance(msg, ast.JoinedStr):
            for part in msg.values:
                if isinstance(part, ast.Constant) and \
                        isinstance(part.value, str) and \
                        any(name in part.value for name in guard_params):
                    return True
                if isinstance(part, ast.FormattedValue) and \
                        _names_in(part.value) & params:
                    return True
            return False
        # computed message (``msg % args``, helper call): give the
        # benefit of the doubt when a parameter flows into it.
        return bool(_names_in(msg) & params)

    # -- RC007 ---------------------------------------------------------
    def _check_rc007(self, node: ast.Call) -> None:
        resolved = _resolve(node.func, self.aliases)
        if resolved not in _RC007_TIMING:
            return
        posix = "/" + self.path.replace(os.sep, "/")
        if _RC007_EXEMPT_FRAGMENT in posix:
            return
        self._report("RC007", node,
                     f"raw monotonic read {resolved}() bypasses the "
                     f"injectable repro.obs.clock")

    # -- RC006 ---------------------------------------------------------
    def _check_rc006(self, node: ast.ExceptHandler) -> None:
        posix = "/" + self.path.replace(os.sep, "/")
        if _RC006_FRAGMENT not in posix:
            return
        if "__del__" in self.scope_stack:
            # Interpreter teardown: anything can fail and nothing can
            # be recorded — swallowing is the only correct move.
            return
        caught = self._rc006_broad_catch(node)
        if caught is None or self._rc006_handler_acts(node):
            return
        # The pragma may sit on the ``except`` line or on any statement
        # of the (typically one-line ``pass``) handler body.
        lines = [node.lineno] + [stmt.lineno for stmt in node.body]
        if any(self._suppressed("RC006", line) for line in lines):
            return
        self.findings.append(Finding(
            rule="RC006", path=self.path, line=node.lineno,
            scope=self._scope(),
            message=f"{caught} in the serving layer swallows the "
                    f"failure silently; supervision code must re-raise "
                    f"or record it"))

    @staticmethod
    def _rc006_broad_catch(node: ast.ExceptHandler) -> Optional[str]:
        if node.type is None:
            return "bare except"
        types = node.type.elts if isinstance(node.type, ast.Tuple) \
            else [node.type]
        for item in types:
            name = _last_segment(item)
            if name in _RC006_BROAD:
                return f"except {name}"
        return None

    @staticmethod
    def _rc006_handler_acts(node: ast.ExceptHandler) -> bool:
        """True when the handler does anything observable.

        A re-raise, any call (logging, event recording, cleanup), or an
        assignment (state mutation such as ``slot.dead = True``) counts;
        a body made solely of ``pass``/``continue``/``break``/constant
        expressions does not.
        """
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Raise, ast.Call, ast.Assign,
                                    ast.AugAssign, ast.AnnAssign,
                                    ast.Return, ast.Delete)):
                    return True
        return False


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def lint_source(source: str, path: str = "<string>",
                profile: str = "library") -> List[Finding]:
    """Lint one module's source text; returns unsuppressed findings."""
    tree = ast.parse(source, filename=path)
    lines = source.splitlines()
    return _ModuleLinter(path, tree, lines, profile).run()


def iter_py_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = [d for d in dirnames
                           if d not in ("__pycache__", ".git")]
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def lint_paths(paths: Sequence[str],
               profile: str = "library") -> List[Finding]:
    findings: List[Finding] = []
    for filename in iter_py_files(paths):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise SystemExit(f"repro.check.lint: cannot read {filename}: "
                             f"{exc}")
        findings.extend(lint_source(source, filename, profile))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def load_baseline(path: str) -> List[Tuple[str, str, str]]:
    """Baseline entries as ``(rule, posix-path, scope)`` triples."""
    entries = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                rule, location = line.split(None, 1)
                file_part, scope = location.split("::", 1)
            except ValueError:
                raise SystemExit(
                    f"repro.check.lint: malformed baseline entry "
                    f"{raw.strip()!r} in {path} (expected "
                    f"'RCnnn path::scope')")
            entries.append((rule, file_part.replace(os.sep, "/"), scope))
    return entries


def _baseline_matches(entry: Tuple[str, str, str],
                      finding: Finding) -> bool:
    rule, file_part, scope = entry
    f_rule, f_path, f_scope = finding.baseline_key
    if rule != f_rule or scope != f_scope:
        return False
    return (f_path.endswith(file_part) or file_part.endswith(f_path))


def _split_by_baseline(findings: List[Finding],
                       baseline: List[Tuple[str, str, str]]):
    used = [False] * len(baseline)
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        hit = False
        for i, entry in enumerate(baseline):
            if _baseline_matches(entry, finding):
                used[i] = True
                hit = True
        (suppressed if hit else active).append(finding)
    stale = [baseline[i] for i, u in enumerate(used) if not u]
    return active, suppressed, stale


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.lint",
        description="Project invariant lint (rules RC001-RC007).")
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("--profile", choices=("library", "scripts"),
                        default="library",
                        help="'library' enforces every rule; 'scripts' "
                             "relaxes to seeded-determinism checks for "
                             "examples/ and benchmarks/")
    parser.add_argument("--baseline", default=None,
                        help="baseline file of suppressed findings "
                             "(default: .repro-lint-baseline if present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file, including the "
                             "auto-discovered one (use when linting a "
                             "tree the baseline does not describe)")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="write the current findings to FILE as a new "
                             "baseline and exit 0")
    args = parser.parse_args(argv)

    baseline_path = None if args.no_baseline else args.baseline
    if (baseline_path is None and not args.no_baseline
            and os.path.exists(".repro-lint-baseline")):
        baseline_path = ".repro-lint-baseline"
    baseline = load_baseline(baseline_path) if baseline_path else []

    findings = lint_paths(args.paths, profile=args.profile)

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write("# repro.check.lint baseline -- each entry "
                         "suppresses one finding; ratchet down, never "
                         "up.\n")
            for finding in findings:
                rule, path, scope = finding.baseline_key
                handle.write(f"{rule} {path}::{scope}\n")
        print(f"wrote {len(findings)} baseline entries to "
              f"{args.write_baseline}")
        return 0

    active, suppressed, stale = _split_by_baseline(findings, baseline)

    for finding in active:
        print(finding.render())
    status = 0
    if active:
        status = 1
    if stale:
        status = 1
        for rule, file_part, scope in stale:
            print(f"stale baseline entry (no longer fires -- delete it): "
                  f"{rule} {file_part}::{scope}")
    print(f"repro.check.lint: {len(active)} finding(s), "
          f"{len(suppressed)} baselined, {len(stale)} stale baseline "
          f"entr{'y' if len(stale) == 1 else 'ies'}, profile="
          f"{args.profile}")
    return status


if __name__ == "__main__":
    sys.exit(main())
