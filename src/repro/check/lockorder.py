"""Lock-order recording — a lightweight race/deadlock detector.

The serving stack takes several locks per request (model store cache,
service pool registry, worker-pool pending table, synthesizer session
lock).  A deadlock needs two threads to acquire two of them in opposite
orders — a bug that survives test suites because the fatal interleaving
almost never fires under test timing.  The recorder makes the *ordering
contract* itself the thing under test:

* every lock is created through :func:`make_lock` / :func:`make_condition`
  with a **role name** (``"store.cache"``, ``"pool.pending"``, ...);
* with sanitizers enabled, each acquisition records edges
  ``held-role -> acquired-role`` into a process-global graph;
* an acquisition that would close a cycle raises
  :class:`~repro.check.errors.LockOrderError` immediately — on the first
  inconsistent ordering, not on the eventual deadlock.

With sanitizers disabled (the default), :func:`make_lock` returns a
plain ``threading.Lock`` and :func:`make_condition` a plain
``threading.Condition`` — zero overhead in production.  Enable before
constructing the objects whose locks you want recorded (the choice is
made at lock-creation time), e.g. via ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from .errors import LockOrderError

__all__ = [
    "make_lock", "make_condition", "reset_lock_graph", "lock_graph_edges",
]

# Role-level acquisition graph: edge a -> b means "b was acquired while
# a was held".  Guarded by its own meta-lock; the meta-lock is never
# held while acquiring a recorded lock, so it cannot deadlock with them.
_graph_lock = threading.Lock()
_edges: Dict[str, Set[str]] = {}
_held = threading.local()


def _held_stack() -> List[Tuple[str, int]]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = _held.stack = []
    return stack


def reset_lock_graph() -> None:
    """Drop every recorded acquisition edge (test isolation)."""
    with _graph_lock:
        _edges.clear()


def lock_graph_edges() -> Dict[str, Set[str]]:
    """A snapshot of the recorded role-level acquisition graph."""
    with _graph_lock:
        return {a: set(bs) for a, bs in _edges.items()}


def _find_path(start: str, goal: str) -> Optional[List[str]]:
    """A path ``start -> ... -> goal`` in the edge graph, if one exists.

    Caller holds ``_graph_lock``.
    """
    stack = [(start, [start])]
    seen = {start}
    while stack:
        node, path = stack.pop()
        for nxt in _edges.get(node, ()):
            if nxt == goal:
                return path + [goal]
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, path + [nxt]))
    return None


def _record_edges(acquiring: str) -> None:
    """Record ``held -> acquiring`` edges; raise on an order inversion."""
    held = [name for name, _ in _held_stack() if name != acquiring]
    if not held:
        return
    with _graph_lock:
        for holder in held:
            if acquiring in _edges.get(holder, ()):
                continue
            reverse = _find_path(acquiring, holder)
            if reverse is not None:
                raise LockOrderError(
                    f"lock-order inversion: acquiring {acquiring!r} while "
                    f"holding {holder!r}, but the opposite order "
                    f"{' -> '.join(reverse)} -> {acquiring} was already "
                    f"observed; pick one global order for these lock roles")
            _edges.setdefault(holder, set()).add(acquiring)


class _RecordingLock:
    """A ``threading.Lock``/``RLock`` proxy that records acquisitions.

    The wrapped primitive provides the actual mutual exclusion; the
    proxy only maintains the per-thread held stack and the role graph.
    Non-blocking probes (``acquire(False)``) skip recording — they are
    how ``threading.Condition`` tests ownership, not real acquisitions.
    """

    __slots__ = ("name", "_inner", "_reentrant")

    def __getstate__(self):
        raise TypeError(f"lock role {self.name!r} is not picklable: "
                        f"locks never cross a fork/pickle boundary")

    def __init__(self, name: str, reentrant: bool = False):
        self.name = name
        self._inner = threading.RLock() if reentrant else threading.Lock()
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            if not self._reentrant:
                for _, lock_id in _held_stack():
                    if lock_id == id(self):
                        raise LockOrderError(
                            f"re-acquisition of non-reentrant lock "
                            f"{self.name!r} by the same thread (guaranteed "
                            f"deadlock)")
            _record_edges(self.name)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _held_stack().append((self.name, id(self)))
        return acquired

    def release(self) -> None:
        stack = _held_stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][1] == id(self):
                del stack[i]
                break
        self._inner.release()

    __enter__ = acquire

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    # ------------------------------------------------------------------
    # threading.Condition protocol (wait() fully releases the lock and
    # re-acquires it afterwards; ownership tests must not probe-acquire).
    # ------------------------------------------------------------------
    def _is_owned(self) -> bool:
        if self._reentrant:
            return self._inner._is_owned()
        return any(lock_id == id(self) for _, lock_id in _held_stack())

    def _release_save(self):
        # wait() releases *all* recursion levels; drop every held entry.
        stack = _held_stack()
        dropped = 0
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][1] == id(self):
                del stack[i]
                dropped += 1
        if self._reentrant:
            return (self._inner._release_save(), dropped)
        self._inner.release()
        return (None, dropped)

    def _acquire_restore(self, state) -> None:
        inner_state, dropped = state
        _record_edges(self.name)
        if self._reentrant:
            self._inner._acquire_restore(inner_state)
        else:
            self._inner.acquire()
        _held_stack().extend([(self.name, id(self))] * max(dropped, 1))


def make_lock(name: str):
    """A mutex for lock role ``name``.

    Plain ``threading.Lock`` normally; a recording proxy when sanitizers
    are enabled.  ``name`` identifies the *role* (e.g. ``"store.cache"``),
    shared by every instance playing it — lock-order discipline is a
    property of roles, not objects.
    """
    from .sanitize import sanitizers_enabled

    if sanitizers_enabled():
        return _RecordingLock(name)
    return threading.Lock()


def make_condition(name: str):
    """A condition variable whose underlying lock plays role ``name``.

    Matches ``threading.Condition()`` semantics (reentrant lock) with
    acquisition recording when sanitizers are enabled.
    """
    from .sanitize import sanitizers_enabled

    if sanitizers_enabled():
        return threading.Condition(_RecordingLock(name, reentrant=True))
    return threading.Condition()
