"""Paper-shaped output formatting for benchmark harnesses."""

from .synthesis import synthesis_summary
from .tables import format_cell, format_series, format_table, print_report

__all__ = ["format_cell", "format_series", "format_table", "print_report",
           "synthesis_summary"]
