"""Human-readable summaries of unified-API synthesis results."""

from __future__ import annotations

from typing import List

from .tables import format_cell, format_series


def synthesis_summary(result, precision: int = 3) -> str:
    """Render a :class:`~repro.api.SynthesisResult` as a framed report.

    Shows the provenance record (method, seed, sizes, selection
    criterion, wall-clock) followed by the per-epoch curves — the
    selection series the best epoch was chosen from plus any family
    training diagnostics.
    """
    lines: List[str] = [f"synthesis: method={result.method}"]
    for key in ("config", "seed", "n_train", "n_synthetic",
                "selection_criterion"):
        value = result.provenance.get(key)
        if value is not None:
            lines.append(f"  {key} = {format_cell(value, precision)}")
    elapsed = result.provenance.get("elapsed_seconds")
    if elapsed is not None:
        lines.append(f"  elapsed_seconds = {elapsed:.2f}")
    if result.best_epoch is not None:
        lines.append(f"  best_epoch = {result.best_epoch}"
                     f" (score {format_cell(result.final_score, precision)})")
    if result.curves:
        lines.append("")
        lines.append(format_series(result.curves, title="per-epoch curves",
                                   precision=precision))
    return "\n".join(lines)
