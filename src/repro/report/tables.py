"""Fixed-width table / series formatting for paper-shaped output."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def format_cell(value, precision: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: Optional[str] = None, precision: int = 3) -> str:
    """Render an aligned monospace table."""
    text_rows = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[Number]],
                  x_label: str = "epoch", title: Optional[str] = None,
                  precision: int = 3) -> str:
    """Render named series (a text rendition of a paper figure)."""
    names = list(series)
    length = max(len(s) for s in series.values())
    headers = [x_label] + names
    rows = []
    for i in range(length):
        row = [i + 1]
        for name in names:
            values = series[name]
            row.append(values[i] if i < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title, precision=precision)


def print_report(text: str) -> None:
    """Print with framing so benchmark output is easy to locate."""
    bar = "=" * 72
    print(f"\n{bar}\n{text}\n{bar}")
