"""Additive joint-count accumulation for streaming PrivBayes.

PrivBayes needs two kinds of statistics: mutual information between a
node and each candidate parent set (structure learning) and the joint
counts of a node with its chosen parents (conditional estimation).
Both are functions of low-order marginal *contingency tables* — and
contingency tables are additive over row chunks.  The accumulator
therefore maintains one integer count table per attribute subset of
size at most ``degree + 1``; ingesting a chunk is a handful of
``bincount`` calls and no RNG is consumed, so all noise draws can be
deferred to finalize and a streamed fit replays the one-shot RNG
sequence exactly.

Bit-exactness: count cells are exact integers (so float conversion is
lossless), and a table stored over the canonically sorted subset is
rearranged to any requested axis order by ``transpose`` + C-order
``reshape`` — which reproduces :func:`repro.privbayes.network.
joint_encode`'s mixed-radix layout (first column most significant)
byte for byte.  Mutual information is then computed by the exact same
arithmetic as the data path (see :func:`mi_from_count_matrix`).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import StreamError
from .network import NodeSpec, mi_from_count_matrix

#: Cap on the summed cell count of all subset tables; beyond this the
#: low-order-marginal representation stops being "bounded memory".
DEFAULT_MAX_CELLS = 1 << 23


class JointCountAccumulator:
    """All joint count tables of attribute subsets of size <= k + 1."""

    def __init__(self, nodes: Sequence[NodeSpec], degree: int,
                 max_cells: int = DEFAULT_MAX_CELLS):
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.nodes = list(nodes)
        self.degree = int(degree)
        self._domains = {node.name: int(node.domain) for node in self.nodes}
        self._tables: Dict[Tuple[str, ...], np.ndarray] = {}
        self.n_rows = 0
        names = sorted(self._domains)
        order = min(self.degree + 1, len(names))
        total = 0
        for size in range(1, order + 1):
            for subset in combinations(names, size):
                cells = 1
                for name in subset:
                    cells *= self._domains[name]
                total += cells
                if total > max_cells:
                    raise StreamError(
                        f"joint count tables for degree={degree} over "
                        f"{len(names)} attributes exceed {max_cells} "
                        f"cells; lower degree/n_bins or use one-shot "
                        f"fit()")
                self._tables[subset] = np.zeros(cells, dtype=np.int64)

    def update(self, data: Dict[str, np.ndarray]) -> None:
        """Add one chunk of discretized columns to every subset table."""
        lengths = {len(column) for column in data.values()}
        if len(lengths) != 1:
            raise StreamError("chunk columns have mismatched lengths")
        m = lengths.pop()
        if m == 0:
            return
        for subset, table in self._tables.items():
            code = np.zeros(m, dtype=np.int64)
            for name in subset:
                code = code * self._domains[name] + data[name]
            table += np.bincount(code, minlength=len(table))
        self.n_rows += m

    def table(self, names: Sequence[str]) -> np.ndarray:
        """Integer count table with axes in the requested name order."""
        key = tuple(sorted(names))
        if key not in self._tables:
            raise KeyError(f"no count table for subset {key}")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute in subset {names}")
        shape = tuple(self._domains[name] for name in key)
        table = self._tables[key].reshape(shape)
        perm = [key.index(name) for name in names]
        return table.transpose(perm)

    def mutual_information(self, x_name: str,
                           parent_names: Sequence[str]) -> float:
        """MI(x; joint(parents)) — bit-identical to the data path."""
        counts = self.table([x_name, *parent_names])
        matrix = counts.reshape(self._domains[x_name], -1)
        return mi_from_count_matrix(np.ascontiguousarray(
            matrix, dtype=np.float64), self.n_rows)

    def conditional_counts(self, x_name: str,
                           parent_names: Sequence[str]) -> np.ndarray:
        """Float count matrix ``(joint(parents) domain, x domain)``.

        The exact matrix ``np.add.at`` builds in the one-shot fit from
        ``(joint_encode(parents), x)`` pairs.
        """
        counts = self.table([*parent_names, x_name])
        matrix = counts.reshape(-1, self._domains[x_name])
        return np.ascontiguousarray(matrix, dtype=np.float64)
