"""Differentially private Bayesian-network structure learning.

Greedy construction following Zhang et al. (PrivBayes, SIGMOD'14 /
TODS'17): attributes are added one at a time; each new attribute picks a
parent set (of size at most ``degree``) from the already-placed
attributes, maximizing mutual information.  Under differential privacy
the choice uses the exponential mechanism with MI as the quality score;
half of the total budget pays for structure, half for the conditional
distributions (handled by the synthesizer).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np


@dataclass(frozen=True)
class NodeSpec:
    """One attribute in the discretized table."""

    name: str
    domain: int


def mutual_information(x: np.ndarray, y: np.ndarray, x_domain: int,
                       y_domain: int) -> float:
    """MI between a discrete column ``x`` and a joint-encoded column ``y``."""
    n = len(x)
    if n == 0:
        return 0.0
    joint = np.zeros((x_domain, y_domain))
    np.add.at(joint, (x, y), 1.0)
    return mi_from_count_matrix(joint, n)


def mi_from_count_matrix(joint: np.ndarray, n: int) -> float:
    """Mutual information of a 2-D contingency table of ``n`` rows.

    Shared by the data path (:func:`mutual_information`) and the
    streaming count path (:class:`repro.privbayes.counts.
    JointCountAccumulator`): identical count matrices produce an
    identical float, which is what keeps the exponential mechanism's
    probabilities — and hence the streamed structure's RNG sequence —
    bit-equal to a one-shot fit.
    """
    if n == 0:
        return 0.0
    joint = joint / n
    px = joint.sum(axis=1)
    py = joint.sum(axis=0)
    outer = px[:, None] * py[None, :]
    nonzero = joint > 0
    return float((joint[nonzero]
                  * np.log(joint[nonzero] / outer[nonzero])).sum())


def joint_encode(columns: Sequence[np.ndarray], domains: Sequence[int],
                 n_rows: Optional[int] = None) -> Tuple[np.ndarray, int]:
    """Encode several discrete columns as one mixed-radix column.

    With no columns the joint domain is the single empty configuration:
    a zero column of length ``n_rows``.
    """
    if not columns:
        return np.zeros(n_rows if n_rows is not None else 0,
                        dtype=np.int64), 1
    code = np.zeros(len(columns[0]), dtype=np.int64)
    size = 1
    for col, domain in zip(columns, domains):
        code = code * domain + col
        size *= domain
    return code, size


class BayesianNetwork:
    """A learned attribute DAG plus per-node parent lists."""

    def __init__(self, nodes: List[NodeSpec],
                 parents: Dict[str, List[str]]):
        self.nodes = nodes
        self.parents = parents
        self.graph = nx.DiGraph()
        for node in nodes:
            self.graph.add_node(node.name)
        for child, pars in parents.items():
            for parent in pars:
                self.graph.add_edge(parent, child)
        if not nx.is_directed_acyclic_graph(self.graph):
            raise ValueError("learned structure is not a DAG")

    @property
    def order(self) -> List[str]:
        """A topological sampling order."""
        return list(nx.topological_sort(self.graph))

    def node(self, name: str) -> NodeSpec:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def to_state(self) -> dict:
        """JSON-serializable structure (synthesizer persistence)."""
        return {
            "nodes": [{"name": n.name, "domain": n.domain}
                      for n in self.nodes],
            "parents": {name: list(pars)
                        for name, pars in self.parents.items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "BayesianNetwork":
        nodes = [NodeSpec(n["name"], int(n["domain"]))
                 for n in state["nodes"]]
        return cls(nodes, {name: list(pars)
                           for name, pars in state["parents"].items()})


def learn_structure(data: Optional[Dict[str, np.ndarray]],
                    nodes: List[NodeSpec],
                    degree: int = 2, epsilon: Optional[float] = None,
                    rng: Optional[np.random.Generator] = None,
                    max_parent_sets: int = 64,
                    counts=None) -> BayesianNetwork:
    """Greedy (noisy-)MI structure learning.

    Parameters
    ----------
    data:
        Discretized columns; may be ``None`` when ``counts`` is given.
    epsilon:
        Structure half of the privacy budget; ``None`` disables noise
        (non-private greedy MI).
    degree:
        Maximum number of parents per attribute (PB's ``k``).
    counts:
        A :class:`repro.privbayes.counts.JointCountAccumulator` holding
        the low-order joint counts — the streaming path.  MI scores
        computed from it are bit-identical to the data path, and the
        RNG is consumed in exactly the same sequence, so a streamed fit
        learns the same structure as a one-shot fit over the same rows.
    """
    if data is None and counts is None:
        raise ValueError("learn_structure needs either data or counts")
    rng = rng if rng is not None else np.random.default_rng()
    remaining = list(nodes)
    # Root: the attribute with the largest domain entropy proxy (or, under
    # DP, a uniformly random attribute — its choice costs no MI queries).
    if epsilon is None:
        root_index = int(np.argmax([n.domain for n in remaining]))
    else:
        root_index = int(rng.integers(0, len(remaining)))
    placed = [remaining.pop(root_index)]
    parents: Dict[str, List[str]] = {placed[0].name: []}

    if counts is not None:
        n_rows = counts.n_rows
    else:
        n_rows = len(next(iter(data.values()))) if data else 0
    n_choices = max(len(nodes) - 1, 1)
    eps_per_choice = (epsilon / n_choices) if epsilon else None

    while remaining:
        candidates: List[Tuple[NodeSpec, Tuple[NodeSpec, ...], float]] = []
        for node in remaining:
            parent_sets = _parent_sets(placed, degree, max_parent_sets, rng)
            for pset in parent_sets:
                if counts is not None:
                    mi = counts.mutual_information(
                        node.name, [p.name for p in pset])
                else:
                    joint, joint_domain = joint_encode(
                        [data[p.name] for p in pset],
                        [p.domain for p in pset])
                    mi = mutual_information(data[node.name], joint,
                                            node.domain, joint_domain)
                candidates.append((node, pset, mi))
        if eps_per_choice is None:
            best = max(candidates, key=lambda c: c[2])
        else:
            # Exponential mechanism: sensitivity of MI is log(n)/n + ...;
            # the standard PB bound uses Delta = (log n)/n + (n-1)/n *
            # log(n/(n-1)), well approximated by (log n + 1)/n.
            sensitivity = (np.log(max(n_rows, 2)) + 1.0) / max(n_rows, 2)
            scores = np.array([c[2] for c in candidates])
            logits = eps_per_choice * scores / (2.0 * sensitivity)
            logits -= logits.max()
            probs = np.exp(logits)
            probs /= probs.sum()
            best = candidates[rng.choice(len(candidates), p=probs)]
        node, pset, _ = best
        placed.append(node)
        remaining.remove(node)
        parents[node.name] = [p.name for p in pset]
    return BayesianNetwork(nodes, parents)


def _parent_sets(placed: List[NodeSpec], degree: int, cap: int,
                 rng: np.random.Generator
                 ) -> List[Tuple[NodeSpec, ...]]:
    """Candidate parent sets: all subsets of size <= degree (capped)."""
    sets: List[Tuple[NodeSpec, ...]] = []
    max_size = min(degree, len(placed))
    for size in range(1, max_size + 1):
        sets.extend(combinations(placed, size))
    if len(sets) > cap:
        idx = rng.choice(len(sets), size=cap, replace=False)
        sets = [sets[i] for i in idx]
    return sets
