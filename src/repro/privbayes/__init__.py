"""PrivBayes baseline: DP Bayesian-network synthesis (Zhang et al.)."""

from .discretize import EquiWidthDiscretizer
from .network import (
    BayesianNetwork, NodeSpec, joint_encode, learn_structure,
    mutual_information,
)
from .synthesizer import PrivBayesSynthesizer

__all__ = [
    "EquiWidthDiscretizer", "BayesianNetwork", "NodeSpec", "joint_encode",
    "learn_structure", "mutual_information", "PrivBayesSynthesizer",
]
