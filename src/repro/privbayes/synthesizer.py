"""PrivBayes synthesizer (Zhang et al.) — the paper's PB baseline.

Pipeline: discretize numerical attributes into equi-width bins; learn a
Bayesian network with the exponential mechanism (structure budget
``epsilon/2``); estimate each node's conditional distribution with
Laplace-noised counts (parameter budget ``epsilon/2``); sample
ancestrally and map numeric bins back by uniform in-bin draws.

``epsilon=None`` runs the same machinery noise-free (the non-private
upper bound).  Implements the unified :class:`repro.api.Synthesizer`
contract under the name ``"privbayes"`` (alias ``"pb"``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..api.base import Synthesizer
from ..api.registry import register
from ..datasets.schema import Table, schema_from_dict, schema_to_dict
from ..errors import TrainingError
from ..privacy.budget import PrivacyLedger
from .counts import JointCountAccumulator
from .discretize import EquiWidthDiscretizer
from .network import (
    BayesianNetwork, NodeSpec, joint_encode, learn_structure,
)


@register("privbayes")
class PrivBayesSynthesizer(Synthesizer):
    """Differentially private Bayesian-network data synthesizer.

    Parameters
    ----------
    epsilon:
        Total privacy budget (paper sweeps 0.1-1.6); ``None`` -> no noise.
    degree:
        Maximum parents per attribute (PB's ``k``).
    n_bins:
        Equi-width bins per numerical attribute.
    budget:
        Optional cap on the *cumulative* epsilon this instance may
        spend over its lifetime — every fit and every streaming refresh
        re-spends ``epsilon`` (sequential composition), and a spend
        that would exceed the cap raises
        :class:`~repro.errors.PrivacyBudgetError` before any noised
        statistic is computed.
    """

    #: Ancestral sampling is vectorized per column, so generation chunks
    #: can be much larger than the neural families'.
    default_sample_batch = 4096
    #: Streaming: counts are additive, so ``fit_stream`` over chunks of
    #: a table reproduces the one-shot ``fit`` bit-exactly.
    supports_partial_fit = True

    def __init__(self, epsilon: Optional[float] = 0.8, degree: int = 2,
                 n_bins: int = 16, seed: int = 0, max_parent_sets: int = 64,
                 budget: Optional[float] = None):
        if epsilon is not None and epsilon <= 0:
            raise ValueError("epsilon must be positive (or None)")
        super().__init__(seed=seed)
        self.epsilon = epsilon
        self.degree = degree
        self.n_bins = n_bins
        self.max_parent_sets = max_parent_sets
        self.network: Optional[BayesianNetwork] = None
        self.conditionals: Dict[str, np.ndarray] = {}
        self._discretizers: Dict[str, EquiWidthDiscretizer] = {}
        self._table_schema = None
        self._ledger = PrivacyLedger(budget=budget)
        self._accumulator: Optional[JointCountAccumulator] = None
        self._stream_ranges: Dict[str, tuple] = {}

    # ------------------------------------------------------------------
    def _fit(self, table: Table, callbacks, conditions=None) -> None:
        if self.epsilon is not None:
            self._ledger.check(self.epsilon)
        self._table_schema = table.schema
        data: Dict[str, np.ndarray] = {}
        nodes: List[NodeSpec] = []
        for attr in table.schema:
            col = table.column(attr.name)
            if attr.is_numerical:
                disc = EquiWidthDiscretizer(self.n_bins,
                                            integral=attr.integral).fit(col)
                self._discretizers[attr.name] = disc
                data[attr.name] = disc.transform(col)
                nodes.append(NodeSpec(attr.name, disc.n_bins))
            else:
                data[attr.name] = col
                nodes.append(NodeSpec(attr.name, attr.domain_size))
        self._estimate(nodes, len(table), data=data)

    def _estimate(self, nodes: List[NodeSpec], n: int,
                  data: Optional[Dict[str, np.ndarray]] = None,
                  counts: Optional[JointCountAccumulator] = None) -> None:
        """Learn structure + conditionals from data or accumulated counts.

        The two sources are interchangeable bit-for-bit: MI scores and
        count matrices from a :class:`JointCountAccumulator` equal the
        ones computed from the discretized columns, and the RNG is
        consumed in the same order (structure draws, then one Laplace
        matrix per node in original node order).
        """
        eps_structure = self.epsilon / 2 if self.epsilon else None
        eps_params = self.epsilon / 2 if self.epsilon else None
        self.network = learn_structure(
            data, nodes, degree=self.degree, epsilon=eps_structure,
            rng=self.rng, max_parent_sets=self.max_parent_sets,
            counts=counts)

        d = len(nodes)
        self.conditionals = {}
        for node in self.network.nodes:
            parent_names = self.network.parents[node.name]
            if counts is not None:
                cond = counts.conditional_counts(node.name, parent_names)
            else:
                parent_nodes = [self.network.node(p) for p in parent_names]
                joint, joint_domain = joint_encode(
                    [data[p.name] for p in parent_nodes],
                    [p.domain for p in parent_nodes], n_rows=n)
                cond = np.zeros((joint_domain, node.domain))
                np.add.at(cond, (joint, data[node.name]), 1.0)
            if eps_params:
                # Laplace scale 2d/(n eps) per PB's parameter estimation.
                scale = 2.0 * d / (n * eps_params)
                cond = cond + self.rng.laplace(
                    0.0, scale * n, size=cond.shape)
                cond = np.maximum(cond, 0.0)
            # Normalize rows; empty rows fall back to uniform.
            row_sums = cond.sum(axis=1, keepdims=True)
            uniform = np.full_like(cond, 1.0 / node.domain)
            probs = np.where(row_sums > 0, cond / np.maximum(row_sums, 1e-12),
                             uniform)
            self.conditionals[node.name] = probs
        if self.epsilon is not None:
            self._ledger.spend(self.epsilon, note=f"release@{n}rows")

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def _reset_fit_state(self) -> None:
        # Clean-refit contract: nothing learned from a previous table
        # survives (the ledger does — it accounts for the instance's
        # lifetime privacy loss, not one fit's).
        self.network = None
        self.conditionals = {}
        self._discretizers = {}
        self._table_schema = None
        self._accumulator = None
        self._stream_ranges = {}

    def _stream_prepass(self, chunk_source) -> None:
        """Global numeric ranges, so streamed bins equal one-shot bins."""
        lows: Dict[str, float] = {}
        highs: Dict[str, float] = {}
        for chunk in chunk_source.chunks():
            for attr in chunk.schema:
                if not attr.is_numerical:
                    continue
                col = chunk.column(attr.name)
                if len(col) == 0:
                    continue
                low, high = float(col.min()), float(col.max())
                lows[attr.name] = min(low, lows.get(attr.name, low))
                highs[attr.name] = max(high, highs.get(attr.name, high))
        self._stream_ranges = {name: (lows[name], highs[name])
                               for name in lows}

    def _partial_fit(self, table: Table) -> None:
        if self._accumulator is None:
            self._table_schema = table.schema
            nodes: List[NodeSpec] = []
            for attr in table.schema:
                if attr.is_numerical:
                    disc = EquiWidthDiscretizer(self.n_bins,
                                                integral=attr.integral)
                    if attr.name in self._stream_ranges:
                        disc.fit_range(*self._stream_ranges[attr.name])
                    else:
                        # No pre-pass (single-shot source): bins are
                        # fixed from the first chunk's range.
                        disc.fit(table.column(attr.name))
                    self._discretizers[attr.name] = disc
                    nodes.append(NodeSpec(attr.name, disc.n_bins))
                else:
                    nodes.append(NodeSpec(attr.name, attr.domain_size))
            self._accumulator = JointCountAccumulator(nodes, self.degree)
        elif table.schema != self._table_schema:
            # Count tables are sized by the first chunk's domains, so
            # PrivBayes streaming needs a fixed schema: supply the full
            # schema (e.g. via fit_stream(schema=...)) up front.
            raise TrainingError(
                "stream chunk schema does not match the first chunk's; "
                "PrivBayes streaming requires a fixed schema")
        data = {}
        for attr in self._table_schema:
            col = table.column(attr.name)
            if attr.is_numerical:
                data[attr.name] = self._discretizers[attr.name].transform(col)
            else:
                data[attr.name] = col
        self._accumulator.update(data)

    def _finalize_partial(self) -> None:
        acc = self._accumulator
        if acc is None or acc.n_rows == 0:
            raise TrainingError("no stream chunks ingested")
        if self.epsilon is not None:
            # Enforce the cap before drawing any noise: an exhausted
            # budget must not leak even a partially-noised release.
            self._ledger.check(self.epsilon)
        self._estimate(acc.nodes, acc.n_rows, counts=acc)

    def privacy_spent(self) -> Optional[float]:
        return self._ledger.spent

    @property
    def privacy_ledger(self) -> PrivacyLedger:
        return self._ledger

    # ------------------------------------------------------------------
    def _sample_chunk(self, m: int, rng: np.random.Generator,
                      conditions=None) -> Table:
        order = self.network.order
        samples: Dict[str, np.ndarray] = {}
        for name in order:
            node = self.network.node(name)
            parent_names = self.network.parents[name]
            parent_nodes = [self.network.node(p) for p in parent_names]
            joint, _ = joint_encode(
                [samples[p.name] for p in parent_nodes],
                [p.domain for p in parent_nodes])
            probs = self.conditionals[name]
            if len(parent_nodes) == 0:
                row = probs[0]
                samples[name] = rng.choice(node.domain, size=m, p=row)
            else:
                u = rng.random(m)
                cdf = probs.cumsum(axis=1)
                samples[name] = (u[:, None] > cdf[joint]).sum(axis=1)
                samples[name] = np.minimum(samples[name], node.domain - 1)

        columns: Dict[str, np.ndarray] = {}
        for attr in self._table_schema:
            if attr.is_numerical:
                disc = self._discretizers[attr.name]
                columns[attr.name] = disc.inverse(samples[attr.name],
                                                  rng=rng)
            else:
                columns[attr.name] = samples[attr.name]
        return Table(self._table_schema, columns)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _state(self):
        meta = {
            "params": {"epsilon": self.epsilon, "degree": self.degree,
                       "n_bins": self.n_bins, "seed": self.seed,
                       "max_parent_sets": self.max_parent_sets,
                       "budget": self._ledger.budget},
            "schema": schema_to_dict(self._table_schema),
            "network": self.network.to_state(),
            "discretizers": {name: disc.to_state()
                             for name, disc in self._discretizers.items()},
            "ledger": self._ledger.to_state(),
        }
        arrays = {f"conditional::{name}": probs
                  for name, probs in self.conditionals.items()}
        return meta, arrays

    def _load_state(self, state, arrays) -> None:
        self._table_schema = schema_from_dict(state["schema"])
        self.network = BayesianNetwork.from_state(state["network"])
        self._discretizers = {
            name: EquiWidthDiscretizer.from_state(sub)
            for name, sub in state["discretizers"].items()}
        if "ledger" in state:
            self._ledger = PrivacyLedger.from_state(state["ledger"])
        tag = "conditional::"
        self.conditionals = {key[len(tag):]: value
                             for key, value in arrays.items()
                             if key.startswith(tag)}
