"""PrivBayes synthesizer (Zhang et al.) — the paper's PB baseline.

Pipeline: discretize numerical attributes into equi-width bins; learn a
Bayesian network with the exponential mechanism (structure budget
``epsilon/2``); estimate each node's conditional distribution with
Laplace-noised counts (parameter budget ``epsilon/2``); sample
ancestrally and map numeric bins back by uniform in-bin draws.

``epsilon=None`` runs the same machinery noise-free (the non-private
upper bound).  Implements the unified :class:`repro.api.Synthesizer`
contract under the name ``"privbayes"`` (alias ``"pb"``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..api.base import Synthesizer
from ..api.registry import register
from ..datasets.schema import Table, schema_from_dict, schema_to_dict
from .discretize import EquiWidthDiscretizer
from .network import (
    BayesianNetwork, NodeSpec, joint_encode, learn_structure,
)


@register("privbayes")
class PrivBayesSynthesizer(Synthesizer):
    """Differentially private Bayesian-network data synthesizer.

    Parameters
    ----------
    epsilon:
        Total privacy budget (paper sweeps 0.1-1.6); ``None`` -> no noise.
    degree:
        Maximum parents per attribute (PB's ``k``).
    n_bins:
        Equi-width bins per numerical attribute.
    """

    #: Ancestral sampling is vectorized per column, so generation chunks
    #: can be much larger than the neural families'.
    default_sample_batch = 4096

    def __init__(self, epsilon: Optional[float] = 0.8, degree: int = 2,
                 n_bins: int = 16, seed: int = 0, max_parent_sets: int = 64):
        if epsilon is not None and epsilon <= 0:
            raise ValueError("epsilon must be positive (or None)")
        super().__init__(seed=seed)
        self.epsilon = epsilon
        self.degree = degree
        self.n_bins = n_bins
        self.max_parent_sets = max_parent_sets
        self.network: Optional[BayesianNetwork] = None
        self.conditionals: Dict[str, np.ndarray] = {}
        self._discretizers: Dict[str, EquiWidthDiscretizer] = {}
        self._table_schema = None

    # ------------------------------------------------------------------
    def _fit(self, table: Table, callbacks, conditions=None) -> None:
        self._table_schema = table.schema
        data: Dict[str, np.ndarray] = {}
        nodes: List[NodeSpec] = []
        for attr in table.schema:
            col = table.column(attr.name)
            if attr.is_numerical:
                disc = EquiWidthDiscretizer(self.n_bins,
                                            integral=attr.integral).fit(col)
                self._discretizers[attr.name] = disc
                data[attr.name] = disc.transform(col)
                nodes.append(NodeSpec(attr.name, disc.n_bins))
            else:
                data[attr.name] = col
                nodes.append(NodeSpec(attr.name, attr.domain_size))

        eps_structure = self.epsilon / 2 if self.epsilon else None
        eps_params = self.epsilon / 2 if self.epsilon else None
        self.network = learn_structure(
            data, nodes, degree=self.degree, epsilon=eps_structure,
            rng=self.rng, max_parent_sets=self.max_parent_sets)

        n = len(table)
        d = len(nodes)
        self.conditionals = {}
        for node in self.network.nodes:
            parent_names = self.network.parents[node.name]
            parent_nodes = [self.network.node(p) for p in parent_names]
            joint, joint_domain = joint_encode(
                [data[p.name] for p in parent_nodes],
                [p.domain for p in parent_nodes], n_rows=n)
            counts = np.zeros((joint_domain, node.domain))
            np.add.at(counts, (joint, data[node.name]), 1.0)
            if eps_params:
                # Laplace scale 2d/(n eps) per PB's parameter estimation.
                scale = 2.0 * d / (n * eps_params)
                counts = counts + self.rng.laplace(
                    0.0, scale * n, size=counts.shape)
                counts = np.maximum(counts, 0.0)
            # Normalize rows; empty rows fall back to uniform.
            row_sums = counts.sum(axis=1, keepdims=True)
            uniform = np.full_like(counts, 1.0 / node.domain)
            probs = np.where(row_sums > 0, counts / np.maximum(row_sums, 1e-12),
                             uniform)
            self.conditionals[node.name] = probs

    # ------------------------------------------------------------------
    def _sample_chunk(self, m: int, rng: np.random.Generator,
                      conditions=None) -> Table:
        order = self.network.order
        samples: Dict[str, np.ndarray] = {}
        for name in order:
            node = self.network.node(name)
            parent_names = self.network.parents[name]
            parent_nodes = [self.network.node(p) for p in parent_names]
            joint, _ = joint_encode(
                [samples[p.name] for p in parent_nodes],
                [p.domain for p in parent_nodes])
            probs = self.conditionals[name]
            if len(parent_nodes) == 0:
                row = probs[0]
                samples[name] = rng.choice(node.domain, size=m, p=row)
            else:
                u = rng.random(m)
                cdf = probs.cumsum(axis=1)
                samples[name] = (u[:, None] > cdf[joint]).sum(axis=1)
                samples[name] = np.minimum(samples[name], node.domain - 1)

        columns: Dict[str, np.ndarray] = {}
        for attr in self._table_schema:
            if attr.is_numerical:
                disc = self._discretizers[attr.name]
                columns[attr.name] = disc.inverse(samples[attr.name],
                                                  rng=rng)
            else:
                columns[attr.name] = samples[attr.name]
        return Table(self._table_schema, columns)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _state(self):
        meta = {
            "params": {"epsilon": self.epsilon, "degree": self.degree,
                       "n_bins": self.n_bins, "seed": self.seed,
                       "max_parent_sets": self.max_parent_sets},
            "schema": schema_to_dict(self._table_schema),
            "network": self.network.to_state(),
            "discretizers": {name: disc.to_state()
                             for name, disc in self._discretizers.items()},
        }
        arrays = {f"conditional::{name}": probs
                  for name, probs in self.conditionals.items()}
        return meta, arrays

    def _load_state(self, state, arrays) -> None:
        self._table_schema = schema_from_dict(state["schema"])
        self.network = BayesianNetwork.from_state(state["network"])
        self._discretizers = {
            name: EquiWidthDiscretizer.from_state(sub)
            for name, sub in state["discretizers"].items()}
        tag = "conditional::"
        self.conditionals = {key[len(tag):]: value
                             for key, value in arrays.items()
                             if key.startswith(tag)}
