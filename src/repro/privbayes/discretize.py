"""Equi-width discretization of numerical attributes for PrivBayes.

The paper notes PB "discretizes the domain of each numerical attribute
into a fixed number of equi-width bins"; synthetic numeric values are
drawn uniformly inside the sampled bin, which is why PB's hitting rate
on numeric-heavy data is so low (paper §7.2.2).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class EquiWidthDiscretizer:
    """Map a numeric column into ``n_bins`` equal-width bins and back."""

    def __init__(self, n_bins: int = 16, integral: bool = False):
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        self.n_bins = n_bins
        self.integral = integral
        self.low: Optional[float] = None
        self.high: Optional[float] = None

    def fit(self, values: np.ndarray) -> "EquiWidthDiscretizer":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("values is empty; cannot fit on an empty "
                             "column")
        self.low = float(values.min())
        self.high = float(values.max())
        if self.high <= self.low:
            self.high = self.low + 1.0
        return self

    def fit_range(self, low: float, high: float) -> "EquiWidthDiscretizer":
        """Fit from known global bounds (the streaming pre-pass path).

        Applies the same degenerate-range bump as :meth:`fit`, so a
        pre-pass supplying a column's true min/max yields bins identical
        to fitting on the full column.
        """
        self.low = float(low)
        self.high = float(high)
        if self.high <= self.low:
            self.high = self.low + 1.0
        return self

    @property
    def width(self) -> float:
        return (self.high - self.low) / self.n_bins

    def transform(self, values: np.ndarray) -> np.ndarray:
        if self.low is None:
            raise RuntimeError("discretizer is not fitted")
        values = np.asarray(values, dtype=np.float64)
        bins = np.floor((values - self.low) / self.width).astype(np.int64)
        return np.clip(bins, 0, self.n_bins - 1)

    def inverse(self, bins: np.ndarray,
                rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Sample uniformly inside each bin (the PB decoding)."""
        if self.low is None:
            raise RuntimeError("discretizer is not fitted")
        bins = np.asarray(bins, dtype=np.int64)
        rng = rng if rng is not None else np.random.default_rng()
        offsets = rng.random(len(bins))
        values = self.low + (bins + offsets) * self.width
        if self.integral:
            values = np.rint(values)
        return values

    def to_state(self) -> dict:
        """JSON-serializable fitted state (synthesizer persistence)."""
        if self.low is None:
            raise RuntimeError("discretizer is not fitted")
        return {"n_bins": self.n_bins, "integral": self.integral,
                "low": self.low, "high": self.high}

    @classmethod
    def from_state(cls, state: dict) -> "EquiWidthDiscretizer":
        disc = cls(n_bins=int(state["n_bins"]),
                   integral=bool(state["integral"]))
        disc.low = float(state["low"])
        disc.high = float(state["high"])
        return disc
