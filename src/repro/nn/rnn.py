"""LSTM building blocks for the sequence-generation synthesizer.

The paper's LSTM generator (Appendix A.1.3, Figure 12) produces a record
attribute by attribute: the j-th timestep consumes the noise ``z``, the
previous output ``f^j`` and hidden state ``h^j``.  The discriminator uses
a sequence-to-one LSTM.  Both are built on :class:`LSTMCell`.

Engine notes
------------
A timestep used to cost ~16 tape nodes (two matmuls, two broadcast
adds, four gate slices, three sigmoids, two tanhs, three elementwise
combines).  The hot path now records three:

* :func:`lstm_gates` — fused ``x @ W_x + h @ W_h + b`` affine kernel;
* :func:`lstm_step` — one fused node for the cell update
  ``c' = f*c + i*g`` and one for the output ``h' = o * tanh(c')``.

Both evaluate the same floating point operations in the same order as
the composed form, so float64 trajectories are bit-for-bit unchanged.
When :func:`repro.nn.tensor.fast_math` is on (float32 mode), sequence
modules additionally batch the input projections of all timesteps into
one matmul (:meth:`LSTMCell.project_steps`) — a sum re-association that
is why this rewrite is gated on fast-math.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, _stable_sigmoid, concat, fast_math


def _split_rows(projected: Tensor, n_chunks: int, batch: int) -> List[Tensor]:
    """Split ``projected`` into ``n_chunks`` row chunks of ``batch`` rows.

    A naive per-chunk ``__getitem__`` backward is O(T^2): each chunk
    scatters into its own full-size zeros array and the accumulator adds
    them pairwise.  Here all chunks share one gradient buffer; each
    backward writes its row block in place and only the last one to run
    hands the assembled buffer to ``projected`` (the chunks are
    independent, so the reverse pass may visit them in any order).

    Invariant: every chunk must be consumed by the backward graph — the
    recurrence consumers here use all timesteps.  The chunks must cover
    ``projected`` exactly (``n_chunks * batch`` rows).
    """
    pd = projected.data
    state = {"buf": None, "pending": n_chunks}
    chunks: List[Tensor] = []
    for t in range(n_chunks):
        start, stop = t * batch, (t + 1) * batch

        def backward(grad: np.ndarray, start=start, stop=stop):
            if state["buf"] is None:
                state["buf"] = np.empty_like(pd)
            state["buf"][start:stop] = grad
            state["pending"] -= 1
            if state["pending"] == 0:
                buf = state["buf"]
                state["buf"] = None
                state["pending"] = n_chunks
                return (buf,)
            return (None,)

        chunks.append(Tensor._make(pd[start:stop], (projected,), backward))
    return chunks


def addmm(base: Tensor, x: Tensor, weight: Tensor) -> Tensor:
    """Fused ``base + x @ weight`` with ``base`` the same shape as the
    product (used to add a precomputed static projection)."""
    xd, wd = x.data, weight.data
    pre = base.data + xd @ wd

    def backward(grad: np.ndarray):
        return (grad, grad @ wd.T, xd.T @ grad)

    return Tensor._make(pre, (base, x, weight), backward)


def lstm_gates(x: Tensor, weight_x: Tensor, h: Tensor, weight_h: Tensor,
               bias: Tensor, x_proj: Optional[Tensor] = None) -> Tensor:
    """Fused gate pre-activation ``x @ W_x + h @ W_h + b``.

    With ``x_proj`` given, ``x``/``weight_x`` are ignored and the
    precomputed projection is used instead (the batched fast path).
    """
    hd, whd = h.data, weight_h.data

    if x_proj is not None:
        xpd = x_proj.data
        pre = xpd + hd @ whd
        pre += bias.data

        def backward(grad: np.ndarray):
            return (grad,
                    grad @ whd.T if h.requires_grad else None,
                    hd.T @ grad,
                    grad.sum(axis=0))

        return Tensor._make(pre, (x_proj, h, weight_h, bias), backward)

    xd, wxd = x.data, weight_x.data
    pre = xd @ wxd
    pre += hd @ whd
    pre += bias.data

    def backward(grad: np.ndarray):
        return (grad @ wxd.T if x.requires_grad else None,
                xd.T @ grad,
                grad @ whd.T if h.requires_grad else None,
                hd.T @ grad,
                grad.sum(axis=0))

    return Tensor._make(pre, (x, weight_x, h, weight_h, bias), backward)


def lstm_step(gates: Tensor, c_prev: Tensor, hidden_size: int
              ) -> Tuple[Tensor, Tensor]:
    """Fused LSTM cell update from gate pre-activations.

    Gate layout along the last axis: input, forget, cell, output.
    Returns ``(h_new, c_new)`` as two tape nodes: the cell node owns the
    i/f/g gate gradients, the output node owns the o gate gradient and
    routes its tanh path through the cell node — the same gradient flow
    (and accumulation order) as the composed op graph.
    """
    raw = gates.data
    hs = hidden_size
    i = _stable_sigmoid(raw[:, 0 * hs:1 * hs])
    f = _stable_sigmoid(raw[:, 1 * hs:2 * hs])
    g = np.tanh(raw[:, 2 * hs:3 * hs])
    o = _stable_sigmoid(raw[:, 3 * hs:4 * hs])
    c_data = f * c_prev.data + i * g
    tanh_c = np.tanh(c_data)

    def backward_c(grad: np.ndarray):
        d_gates = np.zeros_like(raw)
        d_gates[:, 0 * hs:1 * hs] = grad * g * i * (1.0 - i)
        d_gates[:, 1 * hs:2 * hs] = grad * c_prev.data * f * (1.0 - f)
        d_gates[:, 2 * hs:3 * hs] = grad * i * (1.0 - g ** 2)
        return (d_gates, grad * f if c_prev.requires_grad else None)

    c_new = Tensor._make(c_data, (gates, c_prev), backward_c)

    def backward_h(grad: np.ndarray):
        d_gates = np.zeros_like(raw)
        d_gates[:, 3 * hs:4 * hs] = grad * tanh_c * o * (1.0 - o)
        return (d_gates, grad * o * (1.0 - tanh_c ** 2))

    h_new = Tensor._make(o * tanh_c, (gates, c_new), backward_h)
    return h_new, c_new


class LSTMCell(Module):
    """A single LSTM cell with fused gate weights.

    Gate layout along the last axis: input, forget, cell, output.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_x = Parameter(
            init.xavier_uniform(rng, input_size, 4 * hidden_size))
        self.weight_h = Parameter(
            init.xavier_uniform(rng, hidden_size, 4 * hidden_size))
        # Forget-gate bias starts at 1.0, the standard stabilization trick.
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]
                ) -> Tuple[Tensor, Tensor]:
        """One step. ``state`` is ``(h, c)``; returns the new ``(h, c)``."""
        h_prev, c_prev = state
        gates = lstm_gates(x, self.weight_x, h_prev, self.weight_h, self.bias)
        return lstm_step(gates, c_prev, self.hidden_size)

    def step_projected(self, x_proj: Tensor, state: Tuple[Tensor, Tensor]
                       ) -> Tuple[Tensor, Tensor]:
        """One step from a precomputed input projection ``x @ W_x``."""
        h_prev, c_prev = state
        gates = lstm_gates(None, None, h_prev, self.weight_h, self.bias,
                           x_proj=x_proj)
        return lstm_step(gates, c_prev, self.hidden_size)

    def project_steps(self, steps: List[Tensor]) -> List[Tensor]:
        """Input projections ``x_t @ W_x`` for recurrence-independent steps.

        Under fast-math the per-timestep inputs are stacked and projected
        with a single ``(T*batch, in) @ (in, 4*hidden)`` matmul; in
        parity mode each step is projected separately (bit-identical to
        the unbatched recurrence).
        """
        if not fast_math() or len(steps) <= 1:
            return [x @ self.weight_x for x in steps]
        batch = steps[0].shape[0]
        stacked = concat(steps, axis=0)
        projected = stacked @ self.weight_x
        return _split_rows(projected, len(steps), batch)

    def initial_state(self, batch: int,
                      rng: Optional[np.random.Generator] = None
                      ) -> Tuple[Tensor, Tensor]:
        """Zero (or random, per the paper) initial ``(h, c)``."""
        if rng is None:
            h = Tensor(np.zeros((batch, self.hidden_size)))
            c = Tensor(np.zeros((batch, self.hidden_size)))
        else:
            h = Tensor(rng.normal(0, 0.1, (batch, self.hidden_size)))
            c = Tensor(rng.normal(0, 0.1, (batch, self.hidden_size)))
        return h, c


class SequenceToOneLSTM(Module):
    """Runs an LSTM over a sequence and returns the final hidden state.

    This realizes the paper's LSTM-based discriminator (a "typical
    sequence-to-one LSTM" [53]): the caller appends a classification head
    on the returned hidden state.

    The step inputs do not depend on the recurrence, so their gate
    projections are computed up front via :meth:`LSTMCell.project_steps`
    (batched into one matmul under fast-math).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)

    def forward(self, steps: List[Tensor]) -> Tensor:
        if not steps:
            raise ValueError("steps is empty; forward needs at least one "
                             "timestep")
        batch = steps[0].shape[0]
        state = self.cell.initial_state(batch)
        for x_proj in self.cell.project_steps(steps):
            state = self.cell.step_projected(x_proj, state)
        return state[0]
