"""LSTM building blocks for the sequence-generation synthesizer.

The paper's LSTM generator (Appendix A.1.3, Figure 12) produces a record
attribute by attribute: the j-th timestep consumes the noise ``z``, the
previous output ``f^j`` and hidden state ``h^j``.  The discriminator uses
a sequence-to-one LSTM.  Both are built on :class:`LSTMCell`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor, concat


class LSTMCell(Module):
    """A single LSTM cell with fused gate weights.

    Gate layout along the last axis: input, forget, cell, output.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_x = Parameter(
            init.xavier_uniform(rng, input_size, 4 * hidden_size))
        self.weight_h = Parameter(
            init.xavier_uniform(rng, hidden_size, 4 * hidden_size))
        # Forget-gate bias starts at 1.0, the standard stabilization trick.
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: Tuple[Tensor, Tensor]
                ) -> Tuple[Tensor, Tensor]:
        """One step. ``state`` is ``(h, c)``; returns the new ``(h, c)``."""
        h_prev, c_prev = state
        gates = x @ self.weight_x + h_prev @ self.weight_h + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs:1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs:2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs:3 * hs].tanh()
        o_gate = gates[:, 3 * hs:4 * hs].sigmoid()
        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, c_new

    def initial_state(self, batch: int,
                      rng: Optional[np.random.Generator] = None
                      ) -> Tuple[Tensor, Tensor]:
        """Zero (or random, per the paper) initial ``(h, c)``."""
        if rng is None:
            h = Tensor(np.zeros((batch, self.hidden_size)))
            c = Tensor(np.zeros((batch, self.hidden_size)))
        else:
            h = Tensor(rng.normal(0, 0.1, (batch, self.hidden_size)))
            c = Tensor(rng.normal(0, 0.1, (batch, self.hidden_size)))
        return h, c


class SequenceToOneLSTM(Module):
    """Runs an LSTM over a sequence and returns the final hidden state.

    This realizes the paper's LSTM-based discriminator (a "typical
    sequence-to-one LSTM" [53]): the caller appends a classification head
    on the returned hidden state.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)

    def forward(self, steps: List[Tensor]) -> Tensor:
        if not steps:
            raise ValueError("empty input sequence")
        batch = steps[0].shape[0]
        state = self.cell.initial_state(batch)
        for step in steps:
            state = self.cell(step, state)
        return state[0]
