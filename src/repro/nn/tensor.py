"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate for every neural model in the
library (the paper's experiments used PyTorch; this engine replaces it —
see DESIGN.md §1).  A :class:`Tensor` wraps a ``numpy.ndarray`` and records
the operations applied to it on a tape; :meth:`Tensor.backward` replays the
tape in reverse topological order and accumulates gradients.

Only the operations needed by the paper's models are implemented, but each
is fully general with respect to broadcasting and shapes.

Engine dtype
------------
The engine computes in a configurable default dtype:

* ``float64`` (the default) — exact-parity mode.  Training trajectories
  are bit-for-bit reproducible and match the reference implementation;
  the test suite's tight tolerances assume it.
* ``float32`` — training mode.  Halves memory traffic and roughly
  doubles BLAS throughput; additionally enables *fast-math* rewrites
  (e.g. batched LSTM input projections) that re-associate floating point
  sums and therefore are not bit-identical to the float64 path.

Switch with :func:`set_default_dtype` or scoped via :func:`default_dtype`::

    from repro import nn
    nn.set_default_dtype("float32")      # fast training mode
    with nn.default_dtype("float64"):    # temporary parity scope
        ...
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

#: Engine dtypes supported by :func:`set_default_dtype`.
SUPPORTED_DTYPES = (np.float32, np.float64)

#: Legacy alias for the parity-mode dtype (the historical engine dtype).
DTYPE = np.float64

_default_dtype = np.float64


def set_default_dtype(dtype: Union[str, np.dtype, type]) -> None:
    """Set the dtype new tensors are created with (``float32``/``float64``).

    ``float64`` is the parity mode used by the test suite; ``float32`` is
    the fast training mode and additionally unlocks fast-math rewrites
    in the LSTM stacks (see module docstring).  Existing tensors,
    parameters, and optimizer state keep their dtype — switch *before*
    building models, not mid-training.
    """
    global _default_dtype
    resolved = np.dtype(dtype).type
    if resolved not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported engine dtype {dtype!r}; expected one of "
            f"{[np.dtype(d).name for d in SUPPORTED_DTYPES]}")
    _default_dtype = resolved


def get_default_dtype() -> type:
    """The numpy scalar type new tensors are created with."""
    return _default_dtype


def fast_math() -> bool:
    """True when fast-math (non-bit-exact) rewrites are allowed.

    Tied to the engine dtype: float32 already trades exactness for
    speed, so sum re-associations (batched projections, split matmuls)
    are only taken there; float64 keeps the bit-exact op-by-op path.
    """
    return _default_dtype is np.float32


@contextlib.contextmanager
def default_dtype(dtype: Union[str, np.dtype, type]) -> Iterator[None]:
    """Context manager scoping :func:`set_default_dtype`."""
    previous = _default_dtype
    set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


_grad_enabled = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Disable tape recording inside the block.

    Forward values are identical; ops simply skip wiring backward
    closures, so tensors built inside come out detached.  Used for the
    generator forward feeding the discriminator step (immediately
    detached anyway) and for sampling.
    """
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    return _grad_enabled


def _as_array(value: ArrayLike) -> np.ndarray:
    return np.asarray(value, dtype=_default_dtype)


class ArrayPool:
    """Recycled scratch ndarrays keyed by ``(shape, dtype)``.

    A buffer-donation scheme for tape kernels with known buffer
    lifetimes (the tape-allocation-churn item): a forward pass
    :meth:`take`\\ s a scratch buffer and its backward closure
    :meth:`put`\\ s it back once gradients no longer alias it, so
    repeated train steps stop churning the allocator for their largest
    temporaries (e.g. the unfolded convolution columns).  Buffers are
    returned uninitialized, like ``np.empty``.

    The pool is purely an optimization: a buffer that is never returned
    (a tape that is dropped without running backward) is simply garbage
    collected and the next ``take`` allocates a fresh one.
    """

    __slots__ = ("_buffers", "max_per_key")

    #: Lifetime-tracking hook installed by ``repro.check.sanitize`` (a
    #: class attribute, so enabling sanitizers covers every pool at
    #: once).  ``None`` in normal runs — the checks below are a single
    #: attribute test.
    _tracker = None

    #: Hit/miss collector installed by ``repro.obs.profile`` when
    #: profiling is enabled (``REPRO_PROFILE=1``); same class-attribute
    #: pattern as ``_tracker``.
    _profiler = None

    def __init__(self, max_per_key: int = 4):
        self._buffers: dict = {}
        self.max_per_key = max_per_key

    def take(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Pop a cached ``(shape, dtype)`` buffer or allocate a new one."""
        stack = self._buffers.get((tuple(shape), np.dtype(dtype)))
        profiler = ArrayPool._profiler
        if profiler is not None:
            profiler.on_pool(bool(stack))
        array = stack.pop() if stack else np.empty(shape, dtype=dtype)
        tracker = ArrayPool._tracker
        if tracker is not None:
            tracker.on_take(self, array)
        return array

    def put(self, array: np.ndarray) -> None:
        """Return ``array`` to the pool for a later :meth:`take`.

        The caller must not touch ``array`` afterwards — the next taker
        will overwrite it.
        """
        tracker = ArrayPool._tracker
        if tracker is not None:
            tracker.on_put(self, array)
        profiler = ArrayPool._profiler
        if profiler is not None:
            profiler.on_put()
        key = (array.shape, array.dtype)
        stack = self._buffers.setdefault(key, [])
        if len(stack) < self.max_per_key:
            stack.append(array)

    def clear(self) -> None:
        """Drop every cached buffer (frees the backing memory)."""
        tracker = ArrayPool._tracker
        if tracker is not None:
            tracker.on_clear(self)
        self._buffers.clear()


#: Shared pool for the small per-node tape scratch (activation sign
#: masks and friends): the forward pass takes a buffer, the backward
#: closure donates it after its single use, so a train step stops
#: allocating ~dozens of short-lived bool arrays (the remaining
#: "tape allocation churn" item after the conv unfold pooling).
_TAPE_POOL = ArrayPool(max_per_key=32)


def reset_worker_state() -> None:
    """Reset process-global engine scratch state after a ``fork``.

    Serving workers call this once at startup: buffers cached in the
    shared tape pool were sized for the *parent's* workloads and, under
    copy-on-write ``fork``, dirty them on first reuse — dropping them
    keeps each worker's footprint proportional to its own traffic.
    Module-owned scratch pools (e.g. conv unfold buffers) are per-model
    instances and repopulate naturally, so only the process-global pool
    needs resetting.
    """
    _TAPE_POOL.clear()


def _take_sign_mask(data: np.ndarray) -> np.ndarray:
    """Pooled ``data > 0`` mask (bit-identical to the fresh allocation)."""
    mask = _TAPE_POOL.take(data.shape, np.bool_)
    return np.greater(data, 0, out=mask)


def _mask_for_backward(state: list, out: np.ndarray) -> np.ndarray:
    """The saved sign mask, or its recomputation if already donated.

    ``state`` is the one-element list holding the pooled mask.  After
    the usual single backward pass the mask has been donated; a repeated
    backward (legal, if unused in practice) recomputes it from the
    activation output — sign-equivalent for the relu family since both
    ``relu`` and positive-slope ``leaky_relu`` preserve sign.
    """
    mask = state[0]
    return (out > 0) if mask is None else mask


def _donate_mask(state: list) -> None:
    """One-shot return of a pooled mask after its backward use."""
    mask = state[0]
    if mask is not None:
        state[0] = None
        _TAPE_POOL.put(mask)


def _donate_scratch(state: list, pool: Optional["ArrayPool"]) -> None:
    """One-shot donation of a pooled forward scratch buffer.

    ``state`` is a one-element list holding the buffer, nulled on
    donation so a repeated backward can detect that the pool reclaimed
    the scratch and recompute it privately instead of reading (or
    re-donating) a buffer a later ``take`` may already own.  No-op
    without a pool: a privately allocated buffer stays valid for
    repeated backwards and needs no return.
    """
    if pool is not None and state[0] is not None:
        pool.put(state[0])
        state[0] = None


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic with a single ``exp`` evaluation.

    Bit-identical to the textbook two-branch form
    ``where(x >= 0, 1/(1+exp(-clip(x))), exp(clip(x))/(1+exp(clip(x))))``
    because both branches reduce to the same ``e = exp(-min(|x|, 500))``.
    """
    e = np.exp(-np.minimum(np.abs(x), 500.0))
    return np.where(x >= 0, 1.0, e) / (1.0 + e)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``.

    When an operand of shape ``shape`` was broadcast during the forward
    pass, its gradient must be reduced back to ``shape``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _is_basic_index(index) -> bool:
    """True when ``index`` performs numpy *basic* (or boolean) indexing.

    Basic and boolean indices select each source element at most once,
    so the backward scatter can be a plain assignment into zeros instead
    of the much slower ``np.add.at`` (which must handle repeated fancy
    indices).
    """
    if isinstance(index, tuple):
        return all(_is_basic_index(part) for part in index)
    if index is None or index is Ellipsis:
        return True
    if isinstance(index, (int, np.integer, slice)):
        return True
    if isinstance(index, np.ndarray) and index.dtype == np.bool_:
        return True
    return False


class Tensor:
    """A numpy array with an autograd tape.

    Parameters
    ----------
    data:
        Array data (converted to the engine's default dtype).
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` on backward.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    #: Timing collector installed by ``repro.obs.profile`` when
    #: profiling is enabled; ``None`` in normal runs, so the tape pays
    #: one attribute test per node.
    _profiler = None

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out.requires_grad = False
        out._backward = None
        out._parents = ()
        if _grad_enabled:
            for p in parents:
                if p.requires_grad:
                    out.requires_grad = True
                    out._parents = parents
                    out._backward = backward
                    break
        profiler = Tensor._profiler
        if profiler is not None:
            profiler.on_make(backward)
        return out

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (use on scalar losses).  Gradients
        accumulate into ``.grad`` of every reachable tensor that has
        ``requires_grad=True``.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"grad shape {grad.shape} != tensor shape {self.data.shape}")

        # Topological order via iterative DFS (avoids recursion limits for
        # long LSTM tapes).  Node ids are computed once and carried along.
        order: list[tuple[Tensor, int]] = []
        visited: set[int] = set()
        stack: list[tuple[int, Tensor, bool]] = [(id(self), self, False)]
        while stack:
            nid, node, processed = stack.pop()
            if processed:
                order.append((node, nid))
                continue
            if nid in visited:
                continue
            visited.add(nid)
            stack.append((nid, node, True))
            for parent in node._parents:
                pid = id(parent)
                if pid not in visited:
                    stack.append((pid, parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node, nid in reversed(order):
            node_grad = grads.pop(nid, None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
            if node._backward is not None:
                node._propagate(node_grad, grads)

    def _propagate(self, grad: np.ndarray,
                   grads: dict[int, np.ndarray]) -> None:
        """Run this node's backward fn, accumulating into ``grads``."""
        profiler = Tensor._profiler
        if profiler is None:
            parent_grads = self._backward(grad)
        else:
            started = profiler.backward_start()
            parent_grads = self._backward(grad)
            profiler.backward_end(started, self._backward)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = _ensure_tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad, self.data.shape),
                    _unbroadcast(grad, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_ensure_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = _ensure_tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad * other.data, self.data.shape),
                    _unbroadcast(grad * self.data, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = _ensure_tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray):
            ga = _unbroadcast(grad / other.data, self.data.shape)
            gb = _unbroadcast(-grad * self.data / (other.data ** 2),
                              other.data.shape)
            return (ga, gb)

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix ops
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = _ensure_tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray):
            a, b = self.data, other.data
            need_a, need_b = self.requires_grad, other.requires_grad
            if a.ndim == 1 and b.ndim == 1:
                # inner product: scalar grad
                ga = grad * b if need_a else None
                gb = grad * a if need_b else None
            elif a.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                ga = grad @ b.T if need_a else None
                gb = np.outer(a, grad) if need_b else None
            elif b.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                ga = np.outer(grad, b) if need_a else None
                gb = a.T @ grad if need_b else None
            else:
                ga = grad @ b.T if need_a else None
                gb = a.T @ grad if need_b else None
            return (ga, gb)

        return Tensor._make(data, (self, other), backward)

    __matmul__ = matmul

    def transpose(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (grad.T,)

        return Tensor._make(self.data.T, (self,), backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - numpy-style alias
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray):
            return (grad.reshape(original),)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        if _is_basic_index(index):
            # Basic/boolean indexing never selects an element twice, so
            # the scatter is a plain assignment — ``np.add.at`` (which
            # tolerates repeated fancy indices) is ~10x slower and used
            # to dominate LSTM and kl_term profiles.
            def backward(grad: np.ndarray):
                full = np.zeros_like(self.data)
                full[index] = grad
                return (full,)
        else:
            def backward(grad: np.ndarray):
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                return (full,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            if axis is None:
                return (np.broadcast_to(grad, self.data.shape).copy(),)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.data.shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray):
            return (grad * 0.5 / data,)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - data ** 2),)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = _stable_sigmoid(self.data)

        def backward(grad: np.ndarray):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        state = [_take_sign_mask(self.data)]
        data = self.data * state[0]

        def backward(grad: np.ndarray):
            g = grad * _mask_for_backward(state, data)
            _donate_mask(state)
            return (g,)

        out = Tensor._make(data, (self,), backward)
        if out._backward is None:  # no-grad path: backward never runs
            _donate_mask(state)
        return out

    def leaky_relu(self, slope: float = 0.2) -> "Tensor":
        state = [_take_sign_mask(self.data)]
        data = np.where(state[0], self.data, slope * self.data)

        def backward(grad: np.ndarray):
            g = np.where(_mask_for_backward(state, data), grad, slope * grad)
            _donate_mask(state)
            return (g,)

        out = Tensor._make(data, (self,), backward)
        if out._backward is None:  # no-grad path: backward never runs
            _donate_mask(state)
        return out

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray):
            # dL/dx = s * (g - sum(g*s))
            dot = (grad * data).sum(axis=axis, keepdims=True)
            return (data * (grad - dot),)

        return Tensor._make(data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_sum
        softmax = np.exp(data)

        def backward(grad: np.ndarray):
            return (grad - softmax * grad.sum(axis=axis, keepdims=True),)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Differentiable clip (straight-through outside the range)."""
        mask = _TAPE_POOL.take(self.data.shape, np.bool_)
        np.greater_equal(self.data, low, out=mask)
        np.logical_and(mask, self.data <= high, out=mask)
        state = [mask]
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray):
            m = state[0]
            if m is None:  # repeated backward: mask was already donated
                m = (self.data >= low) & (self.data <= high)
            g = grad * m
            _donate_mask(state)
            return (g,)

        out = Tensor._make(data, (self,), backward)
        if out._backward is None:  # no-grad path: backward never runs
            _donate_mask(state)
        return out


def _ensure_tensor(value: ArrayLike) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [_ensure_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray):
        out = []
        for i in range(len(tensors)):
            index = [slice(None)] * grad.ndim
            index[axis if axis >= 0 else grad.ndim + axis] = slice(
                offsets[i], offsets[i + 1])
            out.append(grad[tuple(index)])
        return tuple(out)

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [_ensure_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        parts = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in parts)

    return Tensor._make(data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    a = _ensure_tensor(a)
    b = _ensure_tensor(b)
    data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray):
        ga = _unbroadcast(np.where(condition, grad, 0.0), a.data.shape)
        gb = _unbroadcast(np.where(condition, 0.0, grad), b.data.shape)
        return (ga, gb)

    return Tensor._make(data, (a, b), backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a non-differentiable :class:`Tensor`."""
    return _ensure_tensor(value)
