"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate for every neural model in the
library (the paper's experiments used PyTorch; this engine replaces it —
see DESIGN.md §1).  A :class:`Tensor` wraps a ``numpy.ndarray`` and records
the operations applied to it on a tape; :meth:`Tensor.backward` replays the
tape in reverse topological order and accumulates gradients.

Only the operations needed by the paper's models are implemented, but each
is fully general with respect to broadcasting and shapes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

DTYPE = np.float64

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _as_array(value: ArrayLike) -> np.ndarray:
    arr = np.asarray(value, dtype=DTYPE)
    return arr


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``.

    When an operand of shape ``shape`` was broadcast during the forward
    pass, its gradient must be reduced back to ``shape``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an autograd tape.

    Parameters
    ----------
    data:
        Array data (converted to ``float64``).
    requires_grad:
        If True, gradients are accumulated into :attr:`grad` on backward.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (use on scalar losses).  Gradients
        accumulate into ``.grad`` of every reachable tensor that has
        ``requires_grad=True``.
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"grad shape {grad.shape} != tensor shape {self.data.shape}")

        # Topological order via iterative DFS (avoids recursion limits for
        # long LSTM tapes).
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
            if node._backward is not None:
                node._propagate(node_grad, grads)

    def _propagate(self, grad: np.ndarray,
                   grads: dict[int, np.ndarray]) -> None:
        """Run this node's backward fn, accumulating into ``grads``."""
        parent_grads = self._backward(grad)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        for parent, pgrad in zip(self._parents, parent_grads):
            if pgrad is None or not parent.requires_grad:
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = _ensure_tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad, self.data.shape),
                    _unbroadcast(grad, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-_ensure_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = _ensure_tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray):
            return (_unbroadcast(grad * other.data, self.data.shape),
                    _unbroadcast(grad * self.data, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = _ensure_tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray):
            ga = _unbroadcast(grad / other.data, self.data.shape)
            gb = _unbroadcast(-grad * self.data / (other.data ** 2),
                              other.data.shape)
            return (ga, gb)

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix ops
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = _ensure_tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray):
            ga = grad @ other.data.T if other.data.ndim == 2 else np.outer(grad, other.data)
            gb = self.data.T @ grad
            return (ga, gb)

        return Tensor._make(data, (self, other), backward)

    __matmul__ = matmul

    def transpose(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (grad.T,)

        return Tensor._make(self.data.T, (self,), backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - numpy-style alias
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray):
            return (grad.reshape(original),)

        return Tensor._make(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            if axis is None:
                return (np.broadcast_to(grad, self.data.shape).copy(),)
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.data.shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * data,)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray):
            return (grad * 0.5 / data,)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - data ** 2),)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic.
        data = np.where(self.data >= 0,
                        1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
                        np.exp(np.clip(self.data, -500, 500))
                        / (1.0 + np.exp(np.clip(self.data, -500, 500))))

        def backward(grad: np.ndarray):
            return (grad * data * (1.0 - data),)

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)

    def leaky_relu(self, slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, slope * self.data)

        def backward(grad: np.ndarray):
            return (np.where(mask, grad, slope * grad),)

        return Tensor._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray):
            # dL/dx = s * (g - sum(g*s))
            dot = (grad * data).sum(axis=axis, keepdims=True)
            return (data * (grad - dot),)

        return Tensor._make(data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_sum
        softmax = np.exp(data)

        def backward(grad: np.ndarray):
            return (grad - softmax * grad.sum(axis=axis, keepdims=True),)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Differentiable clip (straight-through outside the range)."""
        mask = (self.data >= low) & (self.data <= high)
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return Tensor._make(data, (self,), backward)


def _ensure_tensor(value: ArrayLike) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


# ----------------------------------------------------------------------
# Free functions
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [_ensure_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray):
        out = []
        for i in range(len(tensors)):
            index = [slice(None)] * grad.ndim
            index[axis if axis >= 0 else grad.ndim + axis] = slice(
                offsets[i], offsets[i + 1])
            out.append(grad[tuple(index)])
        return tuple(out)

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [_ensure_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        parts = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in parts)

    return Tensor._make(data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    a = _ensure_tensor(a)
    b = _ensure_tensor(b)
    data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray):
        ga = _unbroadcast(np.where(condition, grad, 0.0), a.data.shape)
        gb = _unbroadcast(np.where(condition, 0.0, grad), b.data.shape)
        return (ga, gb)

    return Tensor._make(data, (a, b), backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a non-differentiable :class:`Tensor`."""
    return _ensure_tensor(value)
