"""Loss functions used by the GAN/VAE training algorithms.

``bce_with_logits`` is a fused primitive (numerically stable, with the
well-known gradient ``sigmoid(x) - t``), because vanilla GAN training
(paper Algorithm 1) evaluates ``log D`` and ``log(1 - D)`` on nearly
saturated discriminator outputs.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, _ensure_tensor


def bce_with_logits(logits: Tensor, targets) -> Tensor:
    """Mean binary cross entropy on raw logits.

    ``loss = mean(max(x, 0) - x*t + log(1 + exp(-|x|)))``.
    """
    targets = np.asarray(targets, dtype=logits.data.dtype)
    x = logits.data
    loss_terms = np.maximum(x, 0) - x * targets + np.log1p(np.exp(-np.abs(x)))
    data = loss_terms.mean()

    def backward(grad: np.ndarray):
        sig = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
        return (grad * (sig - targets) / x.size,)

    return Tensor._make(np.asarray(data), (logits,), backward)


def mse(pred: Tensor, target) -> Tensor:
    """Mean squared error against a constant target."""
    target = _ensure_tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def binary_cross_entropy(probs: Tensor, targets, eps: float = 1e-7) -> Tensor:
    """Mean BCE on probabilities (clipped for stability)."""
    targets = np.asarray(targets, dtype=probs.data.dtype)
    clipped = probs.clip(eps, 1.0 - eps)
    term = clipped.log() * targets + (1.0 - clipped).log() * (1.0 - targets)
    return -term.mean()


def categorical_kl(p_real: np.ndarray, p_fake: Tensor,
                   eps: float = 1e-7) -> Tensor:
    """KL(p_real || p_fake) where ``p_real`` is a constant distribution.

    Used by the VTrain warm-up term (paper Eq. 2): ``p_real`` is the
    empirical category distribution of the real minibatch, ``p_fake`` the
    batch-mean of the generator's softmax head — differentiable in the
    generator parameters.
    """
    p_real = np.asarray(p_real, dtype=p_fake.data.dtype)
    p_real = p_real / max(p_real.sum(), eps)
    log_fake = p_fake.clip(eps, 1.0).log()
    cross = -(log_fake * p_real).sum()
    entropy = float(-(p_real * np.log(np.maximum(p_real, eps))).sum())
    return cross - entropy


def gaussian_kl(mu: Tensor, logvar: Tensor) -> Tensor:
    """KL(N(mu, exp(logvar)) || N(0, I)) summed over dims, mean over batch.

    The VAE regularizer: ``-0.5 * sum(1 + logvar - mu^2 - exp(logvar))``.
    """
    term = 1.0 + logvar - mu * mu - logvar.exp()
    return (term.sum(axis=1) * -0.5).mean()
