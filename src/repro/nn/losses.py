"""Loss functions used by the GAN/VAE training algorithms.

``bce_with_logits`` is a fused primitive (numerically stable, with the
well-known gradient ``sigmoid(x) - t``), because vanilla GAN training
(paper Algorithm 1) evaluates ``log D`` and ``log(1 - D)`` on nearly
saturated discriminator outputs.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, _ensure_tensor, fast_math


def bce_with_logits(logits: Tensor, targets) -> Tensor:
    """Mean binary cross entropy on raw logits.

    ``loss = mean(max(x, 0) - x*t + log(1 + exp(-|x|)))``.
    """
    targets = np.asarray(targets, dtype=logits.data.dtype)
    x = logits.data
    loss_terms = np.maximum(x, 0) - x * targets + np.log1p(np.exp(-np.abs(x)))
    data = loss_terms.mean()

    def backward(grad: np.ndarray):
        sig = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
        return (grad * (sig - targets) / x.size,)

    return Tensor._make(np.asarray(data), (logits,), backward)


def mse(pred: Tensor, target) -> Tensor:
    """Mean squared error against a constant target."""
    target = _ensure_tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def binary_cross_entropy(probs: Tensor, targets, eps: float = 1e-7) -> Tensor:
    """Mean BCE on probabilities (clipped for stability)."""
    targets = np.asarray(targets, dtype=probs.data.dtype)
    clipped = probs.clip(eps, 1.0 - eps)
    term = clipped.log() * targets + (1.0 - clipped).log() * (1.0 - targets)
    return -term.mean()


def categorical_kl(p_real: np.ndarray, p_fake: Tensor,
                   eps: float = 1e-7) -> Tensor:
    """KL(p_real || p_fake) where ``p_real`` is a constant distribution.

    Used by the VTrain warm-up term (paper Eq. 2): ``p_real`` is the
    empirical category distribution of the real minibatch, ``p_fake`` the
    batch-mean of the generator's softmax head — differentiable in the
    generator parameters.

    Fused into one tape node (the composed clip/log/mul/sum chain cost
    six nodes per discrete block per generator step); the backward
    applies the same operations in the same order, so results are
    bit-identical to the composed form.
    """
    p_real = np.asarray(p_real, dtype=p_fake.data.dtype)
    p_real = p_real / max(p_real.sum(), eps)
    fake = p_fake.data
    mask = (fake >= eps) & (fake <= 1.0)
    clipped = np.clip(fake, eps, 1.0)
    log_fake = np.log(clipped)
    cross = -(log_fake * p_real).sum()
    entropy = float(-(p_real * np.log(np.maximum(p_real, eps))).sum())
    data = np.asarray(cross - entropy)

    def backward(grad: np.ndarray):
        d = np.broadcast_to(-grad, fake.shape) * p_real
        d = d / clipped
        return (d * mask,)

    return Tensor._make(data, (p_fake,), backward)


def categorical_kl_sum(real_batch: np.ndarray, fake: Tensor,
                       slices, eps: float = 1e-7) -> Tensor:
    """Sum of per-block ``KL(mean(real[:, sl]) || mean(fake[:, sl]))``.

    One tape node for the whole VTrain warm-up term (paper Eq. 2): the
    composed spelling costs ~9 nodes per discrete block per generator
    step.  Every floating point operation matches the composed chain
    (``sum(axis=0) * (1/n)`` for the differentiable mean, the clip/log
    backward order of :func:`categorical_kl`), so float64 trajectories
    are bit-for-bit unchanged.
    """
    fake_d = fake.data
    n = fake_d.shape[0]
    inv_n = 1.0 / n
    fast = fast_math()
    dtype = fake_d.dtype
    if fast:
        # One full-matrix reduction instead of one per block column set.
        real_sums = np.asarray(
            real_batch.sum(axis=0) * (1.0 / len(real_batch)), dtype=dtype)
        fake_sums = fake_d.sum(axis=0) * inv_n
    total = None
    saved = []
    for sl in slices:
        if fast:
            p_real = real_sums[sl]
            p_fake = fake_sums[sl]
        else:
            p_real = np.asarray(real_batch[:, sl].mean(axis=0), dtype=dtype)
            p_fake = fake_d[:, sl].sum(axis=0) * inv_n
        p_real = p_real / max(p_real.sum(), eps)
        mask = (p_fake >= eps) & (p_fake <= 1.0)
        clipped = np.clip(p_fake, eps, 1.0)
        cross = -(np.log(clipped) * p_real).sum()
        entropy = float(-(p_real * np.log(np.maximum(p_real, eps))).sum())
        term = cross - entropy
        total = term if total is None else total + term
        saved.append((sl, p_real, clipped, mask))
    if total is None:
        raise ValueError("no discrete blocks to compare")

    def backward(grad: np.ndarray):
        full = np.zeros_like(fake_d)
        for sl, p_real, clipped, mask in saved:
            d = np.broadcast_to(-grad, p_real.shape) * p_real
            d = d / clipped
            d = d * mask
            full[:, sl] = d * inv_n
        return (full,)

    return Tensor._make(np.asarray(total), (fake,), backward)


def gaussian_kl(mu: Tensor, logvar: Tensor) -> Tensor:
    """KL(N(mu, exp(logvar)) || N(0, I)) summed over dims, mean over batch.

    The VAE regularizer: ``-0.5 * sum(1 + logvar - mu^2 - exp(logvar))``.
    """
    term = 1.0 + logvar - mu * mu - logvar.exp()
    return (term.sum(axis=1) * -0.5).mean()
