"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so that model
construction is reproducible (DESIGN.md §5.4).
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape=None) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def kaiming_normal(rng: np.random.Generator, fan_in: int,
                   shape=None) -> np.ndarray:
    """He normal initialization, suitable for ReLU layers."""
    std = np.sqrt(2.0 / fan_in)
    if shape is None:
        shape = (fan_in,)
    return rng.normal(0.0, std, size=shape)


def normal(rng: np.random.Generator, shape, std: float = 0.02) -> np.ndarray:
    """DCGAN-style small normal initialization."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)


def ones(shape) -> np.ndarray:
    return np.ones(shape)
