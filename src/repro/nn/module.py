"""Module/Parameter abstractions (a minimal ``torch.nn.Module`` analogue)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor: ``requires_grad`` is always True."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` collects them recursively in a stable
    order (insertion order of attributes).
    """

    def __init__(self):
        self._params: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self._buffers: Dict[str, np.ndarray] = {}
        self.training = True

    def __setattr__(self, name, value):
        # Reassignment must drop the name from the registries it is NOT
        # entering, otherwise ``parameters()`` keeps optimizing orphans
        # and ``state_dict()`` persists dead weights / stale buffers.
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_params", {})[name] = value
            self.__dict__.get("_modules", {}).pop(name, None)
            self.__dict__.get("_buffers", {}).pop(name, None)
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
            self.__dict__.get("_params", {}).pop(name, None)
            self.__dict__.get("_buffers", {}).pop(name, None)
        elif name in self.__dict__.get("_buffers", ()):
            self.__dict__["_buffers"][name] = np.asarray(value)
        else:
            self.__dict__.get("_params", {}).pop(name, None)
            self.__dict__.get("_modules", {}).pop(name, None)
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module stored in a container (list/dict)."""
        self._modules[name] = module

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. batch-norm running stats).

        Buffers travel with :meth:`state_dict` / :meth:`load_state_dict`
        so snapshots and persistence capture eval-mode behaviour, but
        they receive no gradients.  The buffer is also exposed as a
        plain attribute; reassigning that attribute updates the buffer.
        """
        self.__dict__.setdefault("_buffers", {})[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def parameters(self) -> List[Parameter]:
        out: List[Parameter] = []
        seen: set[int] = set()
        for param in self._params.values():
            if id(param) not in seen:
                seen.add(id(param))
                out.append(param)
        for module in self._modules.values():
            for param in module.parameters():
                if id(param) not in seen:
                    seen.add(id(param))
                    out.append(param)
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._params.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, value in self._buffers.items():
            yield prefix + name, value
        for mod_name, module in self._modules.items():
            yield from module.named_buffers(prefix + mod_name + ".")

    def _set_buffer_by_path(self, path: str, value: np.ndarray) -> bool:
        module = self
        parts = path.split(".")
        for part in parts[:-1]:
            if part not in module._modules:
                return False
            module = module._modules[part]
        if parts[-1] not in module._buffers:
            return False
        setattr(module, parts[-1], value.copy())
        return True

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot of all parameter and buffer values (copies)."""
        state = {name: param.data.copy()
                 for name, param in self.named_parameters()}
        for name, value in self.named_buffers():
            state[name] = np.asarray(value).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, param in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            if state[name].shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{state[name].shape} vs {param.data.shape}")
            param.data = state[name].copy()
        for name, value in self.named_buffers():
            # Buffers absent from older state dicts keep current values.
            if name in state:
                self._set_buffer_by_path(name, np.asarray(state[name]))

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)
        for i, module in enumerate(modules):
            self.register_module(str(i), module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
