"""Module/Parameter abstractions (a minimal ``torch.nn.Module`` analogue)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor: ``requires_grad`` is always True."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` collects them recursively in a stable
    order (insertion order of attributes).
    """

    def __init__(self):
        self._params: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_params", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module stored in a container (list/dict)."""
        self._modules[name] = module

    def parameters(self) -> List[Parameter]:
        out: List[Parameter] = []
        seen: set[int] = set()
        for param in self._params.values():
            if id(param) not in seen:
                seen.add(id(param))
                out.append(param)
        for module in self._modules.values():
            for param in module.parameters():
                if id(param) not in seen:
                    seen.add(id(param))
                    out.append(param)
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._params.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix + mod_name + ".")

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def train(self) -> "Module":
        self.training = True
        for module in self._modules.values():
            module.train()
        return self

    def eval(self) -> "Module":
        self.training = False
        for module in self._modules.values():
            module.eval()
        return self

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Snapshot of all parameter values (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, param in self.named_parameters():
            if name not in state:
                raise KeyError(f"missing parameter {name!r} in state dict")
            if state[name].shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{state[name].shape} vs {param.data.shape}")
            param.data = state[name].copy()

    def num_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)
        for i, module in enumerate(modules):
            self.register_module(str(i), module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
