"""Optimizers: SGD, Adam, RMSProp — plus WGAN weight clipping.

The paper's training algorithms (Table 1) pair VTrain/CTrain with Adam and
WTrain/DPTrain with RMSProp; both are implemented here exactly as in their
original formulations.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                vel *= self.momentum
                vel += param.grad
                param.data -= self.lr * vel
            else:
                param.data -= self.lr * param.grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSProp(Optimizer):
    """RMSProp as used by WGAN training (Arjovsky et al., 2017)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 5e-5,
                 alpha: float = 0.99, eps: float = 1e-8):
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, sq in zip(self.params, self._sq):
            if param.grad is None:
                continue
            grad = param.grad
            sq *= self.alpha
            sq += (1 - self.alpha) * grad * grad
            param.data -= self.lr * grad / (np.sqrt(sq) + self.eps)


def clip_parameters(params: Iterable[Parameter], clip: float) -> None:
    """WGAN weight clipping: project every parameter into [-clip, clip]."""
    if clip <= 0:
        raise ValueError("clip must be positive")
    for param in params:
        np.clip(param.data, -clip, clip, out=param.data)


def global_gradient_norm(params: Iterable[Parameter]) -> float:
    """L2 norm of the concatenated gradient vector (for diagnostics)."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad ** 2))
    return float(np.sqrt(total))


def clip_gradients(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Used by DPGAN's bounded-sensitivity
    gradient step.
    """
    params = list(params)
    norm = global_gradient_norm(params)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm


def add_gradient_noise(params: Iterable[Parameter], std: float,
                       rng: np.random.Generator) -> None:
    """Add iid Gaussian noise N(0, std^2) to every gradient (DPGAN)."""
    for param in params:
        if param.grad is not None:
            param.grad = param.grad + rng.normal(0.0, std, size=param.grad.shape)
