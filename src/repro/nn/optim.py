"""Optimizers: SGD, Adam, RMSProp — plus WGAN weight clipping.

The paper's training algorithms (Table 1) pair VTrain/CTrain with Adam and
WTrain/DPTrain with RMSProp; both are implemented here exactly as in their
original formulations.

All update rules run fully in place against preallocated per-parameter
scratch buffers: an optimizer step allocates nothing, which matters when
the step runs thousands of times per design-point sweep.  The operation
order matches the textbook (out-of-place) formulation term for term, so
trajectories are bit-for-bit identical to it.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def _init_flat_state(self) -> None:
        """Flat-state plumbing for batched update rules (Adam/RMSProp).

        Moment/scratch buffers live in one contiguous vector spanning
        all parameters, so a step is ~10 vectorized numpy calls instead
        of ~10 per parameter.  Update rules are elementwise, so the flat
        layout is bit-identical to the per-parameter formulation.
        Subclasses with per-parameter loops (SGD) skip this entirely.
        """
        self._sizes = [p.data.size for p in self.params]
        self._offsets = [0]
        for size in self._sizes:
            self._offsets.append(self._offsets[-1] + size)
        self._total = self._offsets[-1]
        self._dtype = self.params[0].data.dtype
        self._flat_grad = np.empty(self._total, dtype=self._dtype)
        self._scratch = np.empty(self._total, dtype=self._dtype)
        self._scratch2 = np.empty(self._total, dtype=self._dtype)
        # Per-parameter views into the flat buffers, shaped like the
        # parameter, so gather/apply are plain elementwise copies.
        self._grad_views = [
            self._segment(self._flat_grad, i).reshape(p.data.shape)
            for i, p in enumerate(self.params)]
        self._update_views = [
            self._segment(self._scratch2, i).reshape(p.data.shape)
            for i, p in enumerate(self.params)]

    def _segment(self, flat: np.ndarray, i: int) -> np.ndarray:
        return flat[self._offsets[i]:self._offsets[i + 1]]

    def _gather_grads(self) -> List[int]:
        """Copy available gradients into the flat buffer.

        Returns the indices of parameters that have gradients; segments
        of absent gradients are left untouched and must be skipped by
        the caller (their moments must not decay, matching the
        per-parameter formulation).
        """
        present = []
        for i, param in enumerate(self.params):
            grad = param.grad
            if grad is not None:
                present.append(i)
                self._grad_views[i][...] = grad
        return present

    def _apply_update(self, indices: List[int]) -> None:
        """``theta -= update`` (scratch2) for every parameter in ``indices``."""
        params = self.params
        views = self._update_views
        for i in indices:
            params[i].data -= views[i]

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        self._buffers = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, vel, buf in zip(self.params, self._velocity,
                                   self._buffers):
            if param.grad is None:
                continue
            if self.momentum:
                vel *= self.momentum
                vel += param.grad
                np.multiply(vel, self.lr, out=buf)
            else:
                np.multiply(param.grad, self.lr, out=buf)
            param.data -= buf


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8):
        super().__init__(params, lr)
        self._init_flat_state()
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = np.zeros(self._total, dtype=self._dtype)
        self._v = np.zeros(self._total, dtype=self._dtype)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        present = self._gather_grads()
        if not present:
            return
        if len(present) == len(self.params):
            # Fast path: one vectorized update across every parameter.
            spans = [(self._flat_grad, self._m, self._v,
                      self._scratch, self._scratch2)]
        else:
            spans = [(self._segment(self._flat_grad, i),
                      self._segment(self._m, i), self._segment(self._v, i),
                      self._segment(self._scratch, i),
                      self._segment(self._scratch2, i)) for i in present]
        for grad, m, v, buf, buf2 in spans:
            # m = beta1 * m + (1 - beta1) * grad
            m *= self.beta1
            np.multiply(grad, 1 - self.beta1, out=buf)
            m += buf
            # v = beta2 * v + (1 - beta2) * grad^2
            v *= self.beta2
            np.multiply(grad, 1 - self.beta2, out=buf)
            buf *= grad
            v += buf
            # theta -= lr * m_hat / (sqrt(v_hat) + eps)
            np.divide(v, bias2, out=buf)
            np.sqrt(buf, out=buf)
            buf += self.eps
            np.divide(m, bias1, out=buf2)
            buf2 *= self.lr
            buf2 /= buf
        self._apply_update(present)


class RMSProp(Optimizer):
    """RMSProp as used by WGAN training (Arjovsky et al., 2017)."""

    def __init__(self, params: Iterable[Parameter], lr: float = 5e-5,
                 alpha: float = 0.99, eps: float = 1e-8):
        super().__init__(params, lr)
        self._init_flat_state()
        self.alpha = alpha
        self.eps = eps
        self._sq = np.zeros(self._total, dtype=self._dtype)

    def step(self) -> None:
        present = self._gather_grads()
        if not present:
            return
        if len(present) == len(self.params):
            spans = [(self._flat_grad, self._sq,
                      self._scratch, self._scratch2)]
        else:
            spans = [(self._segment(self._flat_grad, i),
                      self._segment(self._sq, i),
                      self._segment(self._scratch, i),
                      self._segment(self._scratch2, i)) for i in present]
        for grad, sq, buf, buf2 in spans:
            # sq = alpha * sq + (1 - alpha) * grad^2
            sq *= self.alpha
            np.multiply(grad, 1 - self.alpha, out=buf)
            buf *= grad
            sq += buf
            # theta -= lr * grad / (sqrt(sq) + eps)
            np.sqrt(sq, out=buf)
            buf += self.eps
            np.multiply(grad, self.lr, out=buf2)
            buf2 /= buf
        self._apply_update(present)


def clip_parameters(params: Iterable[Parameter], clip: float) -> None:
    """WGAN weight clipping: project every parameter into [-clip, clip]."""
    if clip <= 0:
        raise ValueError("clip must be positive")
    for param in params:
        np.clip(param.data, -clip, clip, out=param.data)


def global_gradient_norm(params: Iterable[Parameter]) -> float:
    """L2 norm of the concatenated gradient vector (for diagnostics)."""
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float(np.sum(param.grad ** 2))
    return float(np.sqrt(total))


def clip_gradients(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Used by DPGAN's bounded-sensitivity
    gradient step.
    """
    params = list(params)
    norm = global_gradient_norm(params)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for param in params:
            if param.grad is not None:
                param.grad = param.grad * scale
    return norm


def add_gradient_noise(params: Iterable[Parameter], std: float,
                       rng: np.random.Generator) -> None:
    """Add iid Gaussian noise N(0, std^2) to every gradient (DPGAN)."""
    for param in params:
        if param.grad is not None:
            param.grad = param.grad + rng.normal(0.0, std, size=param.grad.shape)
