"""Convolution and transposed convolution for matrix-form samples.

The paper's CNN design (Appendix A.1.1, Figure 10) follows DCGAN: the
generator is a stack of fractionally strided (de-)convolutions and the
discriminator a stack of strided convolutions.  Both are implemented here
with im2col/col2im so forward and backward are plain matrix products.

Layout convention is ``(batch, channels, height, width)``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor


def _conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - kernel) // stride + 1


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int,
            pad: int) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` into columns of receptive fields.

    Returns ``(cols, oh, ow)`` where ``cols`` has shape
    ``(N, C*kh*kw, oh*ow)``.
    """
    n, c, h, w = x.shape
    oh = _conv_output_size(h, kh, stride, pad)
    ow = _conv_output_size(w, kw, stride, pad)
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            cols[:, :, i, j, :, :] = xp[:, :, i:i_max:stride, j:j_max:stride]
    return cols.reshape(n, c * kh * kw, oh * ow), oh, ow


def _col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kh: int,
            kw: int, stride: int, pad: int, oh: int, ow: int) -> np.ndarray:
    """Adjoint of :func:`_im2col`: fold columns back, summing overlaps."""
    n, c, h, w = x_shape
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    xp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            xp[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]
    if pad:
        return xp[:, :, pad:-pad, pad:-pad]
    return xp


class Conv2d(Module):
    """Strided 2D convolution."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.normal(rng, shape, std=0.05))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        k, s, p = self.kernel_size, self.stride, self.padding
        weight = self.weight
        bias = self.bias
        n, c, h, w = x.data.shape
        cols, oh, ow = _im2col(x.data, k, k, s, p)
        wmat = weight.data.reshape(self.out_channels, -1)
        out = np.einsum("ok,nkl->nol", wmat, cols)
        if bias is not None:
            out = out + bias.data[None, :, None]
        out = out.reshape(n, self.out_channels, oh, ow)

        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad: np.ndarray):
            gmat = grad.reshape(n, self.out_channels, oh * ow)
            grad_w = np.einsum("nol,nkl->ok", gmat, cols).reshape(
                weight.data.shape)
            grad_cols = np.einsum("ok,nol->nkl", wmat, gmat)
            grad_x = _col2im(grad_cols, (n, c, h, w), k, k, s, p, oh, ow)
            if bias is None:
                return (grad_x, grad_w)
            grad_b = gmat.sum(axis=(0, 2))
            return (grad_x, grad_w, grad_b)

        return Tensor._make(out, parents, backward)


class ConvTranspose2d(Module):
    """Fractionally strided ("de-") convolution, the DCGAN generator op."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (in_channels, out_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.normal(rng, shape, std=0.05))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def output_size(self, size: int) -> int:
        return (size - 1) * self.stride - 2 * self.padding + self.kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k, s, p = self.kernel_size, self.stride, self.padding
        weight = self.weight
        bias = self.bias
        n, c, h, w = x.data.shape
        out_h = self.output_size(h)
        out_w = self.output_size(w)
        xm = x.data.reshape(n, c, h * w)
        wmat = weight.data.reshape(c, -1)  # (C, OC*k*k)
        cols = np.einsum("ck,ncl->nkl", wmat, xm)
        out = _col2im(cols, (n, self.out_channels, out_h, out_w), k, k, s, p,
                      h, w)
        if bias is not None:
            out = out + bias.data[None, :, None, None]

        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad: np.ndarray):
            grad_cols, _, _ = _im2col(grad, k, k, s, p)
            grad_x = np.einsum("ck,nkl->ncl", wmat, grad_cols).reshape(
                n, c, h, w)
            grad_w = np.einsum("ncl,nkl->ck", xm, grad_cols).reshape(
                weight.data.shape)
            if bias is None:
                return (grad_x, grad_w)
            grad_b = grad.sum(axis=(0, 2, 3))
            return (grad_x, grad_w, grad_b)

        return Tensor._make(out, parents, backward)


class BatchNorm2d(Module):
    """Batch normalization per channel of ``(N, C, H, W)`` activations."""

    def __init__(self, num_channels: int, momentum: float = 0.1,
                 eps: float = 1e-5):
        super().__init__()
        self.num_channels = num_channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((1, num_channels, 1, 1)))
        self.beta = Parameter(init.zeros((1, num_channels, 1, 1)))
        self.register_buffer("running_mean", np.zeros((1, num_channels, 1, 1)))
        self.register_buffer("running_var", np.ones((1, num_channels, 1, 1)))

    def forward(self, x: Tensor) -> Tensor:
        axes = (0, 2, 3)
        if self.training and x.shape[0] > 1:
            mean = x.mean(axis=axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=axes, keepdims=True)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mean.data)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var.data)
            normed = centered * ((var + self.eps) ** -0.5)
        else:
            normed = (x - self.running_mean) * (
                1.0 / np.sqrt(self.running_var + self.eps))
        return normed * self.gamma + self.beta
