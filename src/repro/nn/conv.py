"""Convolution and transposed convolution for matrix-form samples.

The paper's CNN design (Appendix A.1.1, Figure 10) follows DCGAN: the
generator is a stack of fractionally strided (de-)convolutions and the
discriminator a stack of strided convolutions.  Layout convention is
``(batch, channels, height, width)``.

CNN fast path
-------------
Unfolding (im2col) is implemented with
``np.lib.stride_tricks.sliding_window_view`` — a zero-copy strided view
materialized with a single ``copyto`` — instead of per-tap python loops,
and the unfolded layout feeds one large matrix product per layer.  Two
numerics modes mirror the engine-wide convention (see
:mod:`repro.nn.tensor`):

* **float64 parity mode** — the unfolded columns keep the historical
  ``(N, C*kh*kw, oh*ow)`` layout and the contraction runs through the
  exact same ``einsum`` calls as the original im2col implementation, so
  conv outputs are bit-identical to the pre-fast-path engine.
* **float32 fast-math mode** — forward/backward use the GEMM-batched
  ``(N*oh*ow, C*kh*kw)`` layout (one BLAS matmul each) and the fused
  tape nodes :func:`conv2d_bn_act` / :func:`conv_transpose2d_bn_act`
  (conv + analytic BatchNorm2d + activation in a single node, the conv
  analogue of :func:`repro.nn.layers.fused_linear`).

Column and padding scratch buffers are recycled across train steps via a
per-layer :class:`repro.nn.tensor.ArrayPool` (the tape-allocation-churn
item): forward takes a buffer, the backward closure returns it once the
gradients no longer alias it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from . import init
from .layers import _act_backward, _act_forward, _bn_input_grad
from .module import Module, Parameter
from .tensor import (
    ArrayPool, Tensor, _donate_mask, _donate_scratch, fast_math,
    is_grad_enabled,
)


def _conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    return (size + 2 * pad - kernel) // stride + 1


def _check_output_size(oh: int, ow: int, x_shape: Tuple[int, ...],
                       kernel: int, stride: int, pad: int,
                       transposed: bool = False) -> None:
    """Reject degenerate spatial outputs with a shape-naming error.

    Without this, a kernel larger than the padded input (or a
    transposed convolution whose padding crops away the whole output)
    silently yields a non-positive output size and crashes much later
    in ``reshape`` with an unrelated message.
    """
    if oh <= 0 or ow <= 0:
        if transposed:
            cause = ("padding crops the whole output (needs "
                     "2*padding < (size-1)*stride + kernel_size)")
        else:
            cause = "the (padded) input is smaller than the kernel"
        kind = "transposed convolution" if transposed else "convolution"
        raise ValueError(
            f"{kind} produces empty output {oh}x{ow} for input "
            f"{tuple(x_shape)} with kernel_size={kernel}, stride={stride}, "
            f"padding={pad}; {cause}")


def _pad_input(x: np.ndarray, pad: int,
               pool: Optional[ArrayPool] = None) -> np.ndarray:
    """Zero-pad the two spatial axes (manual fill; ``np.pad`` is slow)."""
    if pad == 0:
        return x
    n, c, h, w = x.shape
    shape = (n, c, h + 2 * pad, w + 2 * pad)
    xp = pool.take(shape, x.dtype) if pool is not None else np.empty(
        shape, dtype=x.dtype)
    xp.fill(0.0)
    xp[:, :, pad:-pad, pad:-pad] = x
    return xp


def _window_view(xp: np.ndarray, kh: int, kw: int,
                 stride: int) -> np.ndarray:
    """Strided ``(N, C, oh, ow, kh, kw)`` view of every receptive field."""
    view = sliding_window_view(xp, (kh, kw), axis=(2, 3))
    if stride != 1:
        view = view[:, :, ::stride, ::stride]
    return view


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int,
            pool: Optional[ArrayPool] = None
            ) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` into columns of receptive fields (parity layout).

    Returns ``(cols, oh, ow)`` where ``cols`` has shape
    ``(N, C*kh*kw, oh*ow)`` — bit-identical to the historical loop-based
    implementation (:func:`_im2col_loop`), but produced by one strided
    gather.
    """
    n, c, h, w = x.shape
    oh = _conv_output_size(h, kh, stride, pad)
    ow = _conv_output_size(w, kw, stride, pad)
    _check_output_size(oh, ow, x.shape, kh, stride, pad)
    xp = _pad_input(x, pad, pool)
    view = _window_view(xp, kh, kw, stride)
    cols = pool.take((n, c * kh * kw, oh * ow), x.dtype) \
        if pool is not None else np.empty((n, c * kh * kw, oh * ow),
                                          dtype=x.dtype)
    np.copyto(cols.reshape(n, c, kh, kw, oh, ow),
              view.transpose(0, 1, 4, 5, 2, 3))
    if pool is not None and xp is not x:
        pool.put(xp)
    return cols, oh, ow


def _im2col_gemm(x: np.ndarray, kh: int, kw: int, stride: int, pad: int,
                 pool: Optional[ArrayPool] = None
                 ) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` into the GEMM-batched ``(N*oh*ow, C*kh*kw)`` layout.

    This is the fast-math layout: the convolution forward becomes one
    ``(N*oh*ow, C*kh*kw) @ (C*kh*kw, OC)`` BLAS call and the weight/input
    gradients two more.
    """
    n, c, h, w = x.shape
    oh = _conv_output_size(h, kh, stride, pad)
    ow = _conv_output_size(w, kw, stride, pad)
    _check_output_size(oh, ow, x.shape, kh, stride, pad)
    xp = _pad_input(x, pad, pool)
    view = _window_view(xp, kh, kw, stride)
    cols = pool.take((n * oh * ow, c * kh * kw), x.dtype) \
        if pool is not None else np.empty((n * oh * ow, c * kh * kw),
                                          dtype=x.dtype)
    np.copyto(cols.reshape(n, oh, ow, c, kh, kw),
              view.transpose(0, 2, 3, 1, 4, 5))
    if pool is not None and xp is not x:
        pool.put(xp)
    return cols, oh, ow


def _col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kh: int,
            kw: int, stride: int, pad: int, oh: int, ow: int) -> np.ndarray:
    """Adjoint of :func:`_im2col`: fold columns back, summing overlaps."""
    n, c, h, w = x_shape
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    xp = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            xp[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j]
    if pad:
        return xp[:, :, pad:-pad, pad:-pad]
    return xp


def _col2im_gemm(cols: np.ndarray, x_shape: Tuple[int, int, int, int],
                 kh: int, kw: int, stride: int, pad: int, oh: int,
                 ow: int) -> np.ndarray:
    """Adjoint of :func:`_im2col_gemm` (fold from the GEMM layout)."""
    n, c, h, w = x_shape
    folded = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    return _col2im(np.ascontiguousarray(folded), x_shape, kh, kw, stride,
                   pad, oh, ow)


# Historical loop-based implementations, kept as the parity reference for
# the strided-view unfold/fold (tests assert bit-identity in float64).
def _im2col_loop(x: np.ndarray, kh: int, kw: int, stride: int,
                 pad: int) -> Tuple[np.ndarray, int, int]:
    n, c, h, w = x.shape
    oh = _conv_output_size(h, kh, stride, pad)
    ow = _conv_output_size(w, kw, stride, pad)
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            cols[:, :, i, j, :, :] = xp[:, :, i:i_max:stride, j:j_max:stride]
    return cols.reshape(n, c * kh * kw, oh * ow), oh, ow


def _to_channel_cols(x4d: np.ndarray,
                     pool: Optional[ArrayPool] = None) -> np.ndarray:
    """Reorder ``(N, C, H, W)`` into the ``(N*H*W, C)`` GEMM layout."""
    n, c, h, w = x4d.shape
    if pool is None:
        return np.ascontiguousarray(x4d.transpose(0, 2, 3, 1)).reshape(
            n * h * w, c)
    out = pool.take((n * h * w, c), x4d.dtype)
    np.copyto(out.reshape(n, h, w, c), x4d.transpose(0, 2, 3, 1))
    return out


def _from_channel_cols(x2d: np.ndarray, n: int, h: int, w: int
                       ) -> np.ndarray:
    """Inverse of :func:`_to_channel_cols`."""
    c = x2d.shape[1]
    return np.ascontiguousarray(
        x2d.reshape(n, h, w, c).transpose(0, 3, 1, 2))


def _bn_forward_2d(bn: "BatchNorm2d", pre: np.ndarray, batch: int):
    """Analytic BatchNorm2d forward on the ``(N*oh*ow, C)`` layout.

    Rows of ``pre`` enumerate ``(n, y, x)`` positions, so an axis-0
    reduction is exactly the ``(0, 2, 3)`` channel reduction of the 4-D
    layout.  Returns ``(out, normed, inv_std, inv_m, training)`` where
    ``training`` records whether batch statistics were used.
    """
    gamma = bn.gamma.data.ravel()
    beta = bn.beta.data.ravel()
    if bn.training and batch > 1:
        inv_m = 1.0 / pre.shape[0]
        mean = pre.sum(axis=0) * inv_m
        centered = pre - mean
        var = (centered * centered).sum(axis=0) * inv_m
        bn.running_mean = ((1 - bn.momentum) * bn.running_mean
                           + bn.momentum * mean.reshape(1, -1, 1, 1))
        bn.running_var = ((1 - bn.momentum) * bn.running_var
                          + bn.momentum * var.reshape(1, -1, 1, 1))
        inv_std = 1.0 / np.sqrt(var + bn.eps)
        normed = centered * inv_std
        return normed * gamma + beta, normed, inv_std, inv_m, True
    # Running-stat buffers are float64; cast to the stream dtype so the
    # float32 fast path is not silently upcast from here on.
    dtype = pre.dtype
    inv_std = np.asarray(1.0 / np.sqrt(bn.running_var.ravel() + bn.eps),
                         dtype=dtype)
    mean = np.asarray(bn.running_mean.ravel(), dtype=dtype)
    normed = (pre - mean) * inv_std
    return normed * gamma + beta, normed, inv_std, 0.0, False


def _bn_forward_4d(bn: "BatchNorm2d", pre: np.ndarray):
    """Analytic BatchNorm2d forward on the ``(N, C, H, W)`` layout.

    The 4-D counterpart of :func:`_bn_forward_2d`, shared by the fused
    conv-transpose node and the standalone :class:`BatchNorm2d` fast
    paths so the statistics / running-stat-update / eval-cast numerics
    live in exactly one place.  Returns ``(out, normed, inv_std, inv_m,
    training)``; the eval branch casts the float64 running-stat buffers
    to the stream dtype and evaluates the exact elementwise expressions
    of the composed op chain (bit-identical forward).
    """
    gamma = bn.gamma.data
    if bn.training and pre.shape[0] > 1:
        axes = (0, 2, 3)
        inv_m = 1.0 / (pre.shape[0] * pre.shape[2] * pre.shape[3])
        mean = pre.sum(axis=axes, keepdims=True) * inv_m
        centered = pre - mean
        var = (centered * centered).sum(axis=axes, keepdims=True) * inv_m
        bn.running_mean = ((1 - bn.momentum) * bn.running_mean
                           + bn.momentum * mean)
        bn.running_var = ((1 - bn.momentum) * bn.running_var
                          + bn.momentum * var)
        inv_std = 1.0 / np.sqrt(var + bn.eps)
        normed = centered * inv_std
        return normed * gamma + bn.beta.data, normed, inv_std, inv_m, True
    dtype = pre.dtype
    inv_std = np.asarray(1.0 / np.sqrt(bn.running_var + bn.eps),
                         dtype=dtype)
    normed = (pre - np.asarray(bn.running_mean, dtype=dtype)) * inv_std
    return normed * gamma + bn.beta.data, normed, inv_std, 0.0, False


def conv2d_bn_act(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
                  bn: Optional["BatchNorm2d"] = None,
                  activation: Optional[str] = None, slope: float = 0.2,
                  stride: int = 1, padding: int = 0,
                  pool: Optional[ArrayPool] = None) -> Tensor:
    """Fused ``act(BN(conv2d(x)))`` as a single autograd node.

    Fast-math kernel: the convolution runs in the GEMM-batched
    ``(N*oh*ow, C*kh*kw)`` layout, batch norm reduces over axis 0 of
    that same matrix (equivalent to the ``(0, 2, 3)`` reduction of the
    4-D layout), and the activation mask is fused into the node, so one
    tape node replaces the conv / BN / activation chain (~15 nodes).
    ``bn`` and ``activation`` are optional — ``conv2d_bn_act(x, w, b)``
    is a plain convolution.
    """
    oc, c, kh, kw = weight.data.shape
    n = x.data.shape[0]
    cols, oh, ow = _im2col_gemm(x.data, kh, kw, stride, padding, pool)
    wmat = weight.data.reshape(oc, c * kh * kw)
    pre = cols @ wmat.T
    if bias is not None:
        pre += bias.data

    normed = inv_std = None
    inv_m = 0.0
    bn_training = False
    if bn is not None:
        pre, normed, inv_std, inv_m, bn_training = _bn_forward_2d(bn, pre, n)
    out2d, mask = _act_forward(pre, activation, slope)
    out = _from_channel_cols(out2d, n, oh, ow)

    parents = [x, weight]
    if bias is not None:
        parents.append(bias)
    if bn is not None:
        parents.extend((bn.gamma, bn.beta))
    cols_state = [cols]

    def backward(grad: np.ndarray):
        g2d = _to_channel_cols(grad)
        d_out = _act_backward(g2d, activation, out2d, mask, slope)
        dgamma = dbeta = None
        if bn is not None:
            dgamma = (d_out * normed).sum(axis=0)
            dbeta = d_out.sum(axis=0)
            d_normed = d_out * bn.gamma.data.ravel()
            if bn_training:
                d_pre = _bn_input_grad(d_normed, normed, inv_std, inv_m)
            else:
                d_pre = d_normed * inv_std
        else:
            d_pre = d_out
        gx = None
        if x.requires_grad:
            grad_cols = d_pre @ wmat
            gx = _col2im_gemm(grad_cols, x.data.shape, kh, kw, stride,
                              padding, oh, ow)
        gw = None
        if weight.requires_grad:
            cols_local = cols_state[0]
            if cols_local is None:
                # Repeated backward: the pool reclaimed the columns after
                # the first pass; recompute privately.
                cols_local, _, _ = _im2col_gemm(x.data, kh, kw, stride,
                                                padding, None)
            gw = (d_pre.T @ cols_local).reshape(weight.data.shape)
        grads = [gx, gw]
        if bias is not None:
            grads.append(d_pre.sum(axis=0) if bias.requires_grad else None)
        if bn is not None:
            grads.extend((dgamma.reshape(bn.gamma.data.shape),
                          dbeta.reshape(bn.beta.data.shape)))
        _donate_scratch(cols_state, pool)
        return tuple(grads)

    node = Tensor._make(out, tuple(parents), backward)
    if node._backward is None:
        # No backward closure will run; scratch and mask are dead.
        _donate_scratch(cols_state, pool)
        if mask is not None:
            _donate_mask(mask)
    return node


def conv_transpose2d_bn_act(x: Tensor, weight: Tensor,
                            bias: Optional[Tensor] = None,
                            bn: Optional["BatchNorm2d"] = None,
                            activation: Optional[str] = None,
                            slope: float = 0.2, stride: int = 1,
                            padding: int = 0,
                            pool: Optional[ArrayPool] = None) -> Tensor:
    """Fused ``act(BN(conv_transpose2d(x)))`` as a single autograd node.

    The deconvolution runs as one ``(N*h*w, C) @ (C, OC*kh*kw)`` GEMM
    followed by a strided fold; batch norm and the activation apply to
    the folded 4-D output (the fold mixes spatial positions, so the
    2-D-layout trick of :func:`conv2d_bn_act` does not apply here).
    """
    c, oc, kh, kw = weight.data.shape
    n, _, h, w = x.data.shape
    out_h = (h - 1) * stride - 2 * padding + kh
    out_w = (w - 1) * stride - 2 * padding + kw
    _check_output_size(out_h, out_w, x.data.shape, kh, stride, padding,
                       transposed=True)
    xg = _to_channel_cols(x.data, pool)
    wmat = weight.data.reshape(c, oc * kh * kw)
    if pool is not None:
        cols = pool.take((n * h * w, oc * kh * kw), xg.dtype)
        np.matmul(xg, wmat, out=cols)
    else:
        cols = xg @ wmat
    pre = _col2im_gemm(cols, (n, oc, out_h, out_w), kh, kw, stride,
                       padding, h, w)
    if pool is not None:
        # The fold copied the columns out; the scratch is dead already.
        pool.put(cols)
    if bias is not None:
        pre += bias.data[None, :, None, None]

    normed = inv_std = None
    inv_m = 0.0
    bn_training = False
    if bn is not None:
        pre, normed, inv_std, inv_m, bn_training = _bn_forward_4d(bn, pre)
    out, mask = _act_forward(pre, activation, slope)

    parents = [x, weight]
    if bias is not None:
        parents.append(bias)
    if bn is not None:
        parents.extend((bn.gamma, bn.beta))
    xg_state = [xg]

    def backward(grad: np.ndarray):
        d_out = _act_backward(grad, activation, out, mask, slope)
        dgamma = dbeta = None
        axes = (0, 2, 3)
        if bn is not None:
            dgamma = (d_out * normed).sum(axis=axes, keepdims=True)
            dbeta = d_out.sum(axis=axes, keepdims=True)
            d_normed = d_out * bn.gamma.data
            if bn_training:
                d_pre = _bn_input_grad(d_normed, normed, inv_std, inv_m,
                                       axes=axes, keepdims=True)
            else:
                d_pre = d_normed * inv_std
        else:
            d_pre = d_out
        grad_cols, _, _ = _im2col_gemm(d_pre, kh, kw, stride, padding, pool)
        gx = _from_channel_cols(grad_cols @ wmat.T, n, h, w) \
            if x.requires_grad else None
        gw = None
        if weight.requires_grad:
            xg_local = xg_state[0]
            if xg_local is None:
                # Repeated backward: the pool reclaimed the input columns
                # after the first pass; recompute privately.
                xg_local = _to_channel_cols(x.data, None)
            gw = (xg_local.T @ grad_cols).reshape(weight.data.shape)
        grads = [gx, gw]
        if bias is not None:
            grads.append(d_pre.sum(axis=axes) if bias.requires_grad
                         else None)
        if bn is not None:
            grads.extend((dgamma, dbeta))
        if pool is not None:
            pool.put(grad_cols)
        _donate_scratch(xg_state, pool)
        return tuple(grads)

    node = Tensor._make(out, tuple(parents), backward)
    if node._backward is None:
        # No backward closure will run; scratch and mask are dead.
        _donate_scratch(xg_state, pool)
        if mask is not None:
            _donate_mask(mask)
    return node


def _apply_activation(out: Tensor, activation: Optional[str],
                      slope: float) -> Tensor:
    """Composed-op activation used by the float64 parity path."""
    if activation is None:
        return out
    if activation == "relu":
        return out.relu()
    if activation == "leaky_relu":
        return out.leaky_relu(slope)
    if activation == "tanh":
        return out.tanh()
    if activation == "sigmoid":
        return out.sigmoid()
    raise ValueError(f"cannot fuse activation {activation!r}")


class Conv2d(Module):
    """Strided 2D convolution.

    ``forward`` optionally fuses a following :class:`BatchNorm2d` and
    activation into the layer call: ``conv(x, activation="leaky_relu",
    bn=self.bn)``.  In float32 fast-math mode the whole chain runs as
    one :func:`conv2d_bn_act` tape node; in float64 parity mode the ops
    compose exactly as the historical layer stack (bit-identical
    outputs).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.normal(rng, shape, std=0.05))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None
        self._pool = ArrayPool()

    def forward(self, x: Tensor, activation: Optional[str] = None,
                slope: float = 0.2,
                bn: Optional["BatchNorm2d"] = None) -> Tensor:
        if fast_math():
            return conv2d_bn_act(x, self.weight, self.bias, bn=bn,
                                 activation=activation, slope=slope,
                                 stride=self.stride, padding=self.padding,
                                 pool=self._pool)
        out = self._forward_parity(x)
        if bn is not None:
            out = bn(out)
        return _apply_activation(out, activation, slope)

    def _forward_parity(self, x: Tensor) -> Tensor:
        """Bit-exact conv: strided-view unfold + the historical einsums."""
        k, s, p = self.kernel_size, self.stride, self.padding
        weight = self.weight
        bias = self.bias
        pool = self._pool
        n, c, h, w = x.data.shape
        cols, oh, ow = _im2col(x.data, k, k, s, p, pool)
        wmat = weight.data.reshape(self.out_channels, -1)
        out = np.einsum("ok,nkl->nol", wmat, cols)
        if bias is not None:
            out = out + bias.data[None, :, None]
        out = out.reshape(n, self.out_channels, oh, ow)

        parents = (x, weight) if bias is None else (x, weight, bias)
        cols_state = [cols]

        def backward(grad: np.ndarray):
            gmat = grad.reshape(n, self.out_channels, oh * ow)
            cols_local = cols_state[0]
            if cols_local is None:
                # Repeated backward: the pool reclaimed the columns after
                # the first pass; recompute privately.
                cols_local, _, _ = _im2col(x.data, k, k, s, p, None)
            grad_w = np.einsum("nol,nkl->ok", gmat, cols_local).reshape(
                weight.data.shape)
            grad_cols = np.einsum("ok,nol->nkl", wmat, gmat)
            grad_x = _col2im(grad_cols, (n, c, h, w), k, k, s, p, oh, ow)
            _donate_scratch(cols_state, pool)
            if bias is None:
                return (grad_x, grad_w)
            grad_b = gmat.sum(axis=(0, 2))
            return (grad_x, grad_w, grad_b)

        node = Tensor._make(out, parents, backward)
        if node._backward is None:
            _donate_scratch(cols_state, pool)
        return node


class ConvTranspose2d(Module):
    """Fractionally strided ("de-") convolution, the DCGAN generator op.

    ``forward`` accepts the same ``activation=`` / ``bn=`` fusion hooks
    as :class:`Conv2d` (one :func:`conv_transpose2d_bn_act` node in
    fast-math mode, the bit-exact composed chain in parity mode).
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (in_channels, out_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.normal(rng, shape, std=0.05))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None
        self._pool = ArrayPool()

    def output_size(self, size: int) -> int:
        return (size - 1) * self.stride - 2 * self.padding + self.kernel_size

    def forward(self, x: Tensor, activation: Optional[str] = None,
                slope: float = 0.2,
                bn: Optional["BatchNorm2d"] = None) -> Tensor:
        if fast_math():
            return conv_transpose2d_bn_act(
                x, self.weight, self.bias, bn=bn, activation=activation,
                slope=slope, stride=self.stride, padding=self.padding,
                pool=self._pool)
        out = self._forward_parity(x)
        if bn is not None:
            out = bn(out)
        return _apply_activation(out, activation, slope)

    def _forward_parity(self, x: Tensor) -> Tensor:
        """Bit-exact deconv: the historical einsum/fold op sequence."""
        k, s, p = self.kernel_size, self.stride, self.padding
        weight = self.weight
        bias = self.bias
        pool = self._pool
        n, c, h, w = x.data.shape
        out_h = self.output_size(h)
        out_w = self.output_size(w)
        _check_output_size(out_h, out_w, x.data.shape, k, s, p,
                           transposed=True)
        xm = x.data.reshape(n, c, h * w)
        wmat = weight.data.reshape(c, -1)  # (C, OC*k*k)
        cols = np.einsum("ck,ncl->nkl", wmat, xm)
        out = _col2im(cols, (n, self.out_channels, out_h, out_w), k, k, s, p,
                      h, w)
        if bias is not None:
            out = out + bias.data[None, :, None, None]

        parents = (x, weight) if bias is None else (x, weight, bias)

        def backward(grad: np.ndarray):
            grad_cols, _, _ = _im2col(grad, k, k, s, p, pool)
            grad_x = np.einsum("ck,nkl->ncl", wmat, grad_cols).reshape(
                n, c, h, w)
            grad_w = np.einsum("ncl,nkl->ck", xm, grad_cols).reshape(
                weight.data.shape)
            pool.put(grad_cols)
            if bias is None:
                return (grad_x, grad_w)
            grad_b = grad.sum(axis=(0, 2, 3))
            return (grad_x, grad_w, grad_b)

        return Tensor._make(out, parents, backward)


class BatchNorm2d(Module):
    """Batch normalization per channel of ``(N, C, H, W)`` activations.

    Like :class:`repro.nn.layers.BatchNorm1d`, the float32 fast-math
    mode runs a single fused tape node with the analytic input gradient
    (``activation="relu"`` / ``"leaky_relu"`` optionally fold the
    following nonlinearity in); the float64 parity mode keeps the
    composed op chain.  When the layer follows a convolution, prefer the
    conv-side fusion hooks (``Conv2d.forward(bn=...)``), which fold the
    convolution into the same node as well.
    """

    def __init__(self, num_channels: int, momentum: float = 0.1,
                 eps: float = 1e-5):
        super().__init__()
        self.num_channels = num_channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((1, num_channels, 1, 1)))
        self.beta = Parameter(init.zeros((1, num_channels, 1, 1)))
        self.register_buffer("running_mean", np.zeros((1, num_channels, 1, 1)))
        self.register_buffer("running_var", np.ones((1, num_channels, 1, 1)))

    def forward(self, x: Tensor, activation: Optional[str] = None,
                slope: float = 0.2) -> Tensor:
        axes = (0, 2, 3)
        if self.training and x.shape[0] > 1:
            if not fast_math():
                # float64 parity: the composed op chain, bit-exact with
                # the historical engine (training trajectories).
                mean = x.mean(axis=axes, keepdims=True)
                centered = x - mean
                var = (centered * centered).mean(axis=axes, keepdims=True)
                self.running_mean = ((1 - self.momentum) * self.running_mean
                                     + self.momentum * mean.data)
                self.running_var = ((1 - self.momentum) * self.running_var
                                    + self.momentum * var.data)
                normed = centered * ((var + self.eps) ** -0.5)
                return _apply_activation(normed * self.gamma + self.beta,
                                         activation, slope)
        return self._forward_node(x, activation, slope)

    def _forward_node(self, x: Tensor, activation: Optional[str] = None,
                      slope: float = 0.2) -> Tensor:
        """Single-tape-node batch norm (+ activation).

        Used for batch statistics in fast-math mode (analytic input
        gradient, not bit-exact) and for running-stat normalization in
        *both* dtypes — the eval branch of :func:`_bn_forward_4d`
        evaluates the exact elementwise expressions of the composed
        chain, so eval forwards stay bit-identical while skipping ~6
        full-size temporaries per call on the streaming-sampling path
        (same rationale as ``BatchNorm1d._forward_eval``).
        """
        pre, normed, inv_std, inv_m, training = _bn_forward_4d(self, x.data)
        gamma, beta = self.gamma, self.beta
        out, mask = _act_forward(pre, activation, slope)

        def backward(grad: np.ndarray):
            grad = _act_backward(grad, activation, out, mask, slope)
            axes = (0, 2, 3)
            dgamma = (grad * normed).sum(axis=axes, keepdims=True)
            dbeta = grad.sum(axis=axes, keepdims=True)
            d_normed = grad * gamma.data
            if training:
                dx = _bn_input_grad(d_normed, normed, inv_std, inv_m,
                                    axes=axes, keepdims=True)
            else:
                dx = d_normed * inv_std
            return (dx, dgamma, dbeta)

        node = Tensor._make(out, (x, gamma, beta), backward)
        if node._backward is None and mask is not None:
            _donate_mask(mask)  # no-grad path: backward never runs
        return node
