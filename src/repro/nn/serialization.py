"""Parameter persistence: save/load module state dicts as ``.npz``.

Keeps trained generators reusable across processes without pickling
code objects — the state dict is plain arrays keyed by parameter path,
so it is robust to refactors that do not rename parameters.

Beyond the eager round-trip, two lazy entry points back the serving
layer's versioned model store:

* ``load_state(path, mmap_mode="r")`` maps each array directly out of
  the archive instead of copying it into fresh pages.  ``np.load``
  silently ignores ``mmap_mode`` for ``.npz`` members, so this module
  does the mapping itself: ``np.savez`` stores members uncompressed
  (``ZIP_STORED``), which makes every ``.npy`` payload a contiguous
  byte range of the archive that ``np.memmap`` can view in place.
* :func:`state_manifest` reads only the ``.npy`` headers — shapes and
  dtypes without faulting in a single data page — which is what lets
  ``ModelStore.metadata`` list large model versions cheaply.
"""

from __future__ import annotations

import pathlib
import struct
import zipfile
from typing import Dict, Optional, Tuple, Union

import numpy as np

from .module import Module

PathLike = Union[str, pathlib.Path]

#: Fixed part of a ZIP local file header (signature .. extra-length).
_LOCAL_HEADER_SIZE = 30


def save_state(path: PathLike, state: Dict[str, np.ndarray]) -> None:
    """Write a state dict to ``path`` (``.npz`` appended if missing)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez(path, **state)


def _npz_path(path: PathLike) -> pathlib.Path:
    path = pathlib.Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def _read_npy_header(fh) -> Optional[Tuple[tuple, np.dtype, bool, int]]:
    """Parse a ``.npy`` stream header: (shape, dtype, fortran, data offset).

    Returns ``None`` for formats the memmap fast path cannot handle
    (future versions, object dtypes) so callers can fall back to eager
    loading.
    """
    start = fh.tell()
    try:
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
        else:
            return None
    except ValueError:
        return None
    if dtype.hasobject:
        return None
    return shape, dtype, fortran, fh.tell() - start


def _member_data_offset(zf: zipfile.ZipFile,
                        info: zipfile.ZipInfo) -> Optional[int]:
    """Absolute file offset of a ZIP member's payload, or ``None``.

    Only uncompressed (``ZIP_STORED``) members have an in-place
    payload.  The central directory records where the member's *local*
    header starts; the payload follows the local header, whose length
    depends on the member's own name/extra fields (which can differ
    from the central-directory copies), so it is re-read here.
    """
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    fh = zf.fp
    fh.seek(info.header_offset)
    header = fh.read(_LOCAL_HEADER_SIZE)
    if len(header) != _LOCAL_HEADER_SIZE \
            or header[:4] != b"PK\x03\x04":
        return None
    name_len, extra_len = struct.unpack("<HH", header[26:30])
    return info.header_offset + _LOCAL_HEADER_SIZE + name_len + extra_len


def load_state(path: PathLike,
               mmap_mode: Optional[str] = None) -> Dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`.

    ``mmap_mode=None`` (default) eagerly copies every array — the
    historical behaviour.  ``mmap_mode="r"`` returns read-only
    memory-mapped views into the archive instead: opening a model then
    touches only the pages actually used, which is what keeps the model
    store's version listings and hot-refresh checkouts from faulting in
    whole generators.  Members the mapping fast path cannot handle
    (compressed archives, object dtypes, future ``.npy`` versions) fall
    back to an eager copy, so the result is always usable.
    """
    path = _npz_path(path)
    if mmap_mode is None:
        with np.load(path) as data:
            return {key: data[key].copy() for key in data.files}
    if mmap_mode != "r":
        raise ValueError(
            f"mmap_mode must be None or 'r', got {mmap_mode!r}")
    state: Dict[str, np.ndarray] = {}
    eager = []
    with zipfile.ZipFile(path) as zf:
        for info in zf.infolist():
            if not info.filename.endswith(".npy"):
                continue
            key = info.filename[:-len(".npy")]
            offset = _member_data_offset(zf, info)
            header = None
            if offset is not None:
                with zf.open(info) as member:
                    header = _read_npy_header(member)
            if offset is None or header is None:
                eager.append(key)
                continue
            shape, dtype, fortran, header_len = header
            if int(np.prod(shape)) == 0:
                # memmap rejects zero-length maps; materialize empties.
                state[key] = np.zeros(shape, dtype=dtype,
                                      order="F" if fortran else "C")
                continue
            state[key] = np.memmap(path, mode="r", dtype=dtype,
                                   shape=shape, offset=offset + header_len,
                                   order="F" if fortran else "C")
    if eager:
        with np.load(path, allow_pickle=False) as data:
            for key in eager:
                state[key] = data[key].copy()
    return state


def state_manifest(path: PathLike) -> Dict[str, Dict[str, object]]:
    """Shapes/dtypes of a saved state dict without reading array data.

    Streams only each member's ``.npy`` header out of the archive —
    no payload pages are touched, so this is safe to call on model
    versions far larger than RAM.
    """
    path = _npz_path(path)
    manifest: Dict[str, Dict[str, object]] = {}
    with zipfile.ZipFile(path) as zf:
        for info in zf.infolist():
            if not info.filename.endswith(".npy"):
                continue
            key = info.filename[:-len(".npy")]
            with zf.open(info) as member:
                header = _read_npy_header(member)
            if header is None:
                manifest[key] = {"shape": None, "dtype": None,
                                 "nbytes": info.file_size}
                continue
            shape, dtype, _, _ = header
            manifest[key] = {"shape": tuple(int(s) for s in shape),
                             "dtype": str(dtype),
                             "nbytes": int(np.prod(shape)) * dtype.itemsize}
    return manifest


def save_module(path: PathLike, module: Module) -> None:
    """Persist a module's parameters."""
    save_state(path, module.state_dict())


def load_module(path: PathLike, module: Module) -> Module:
    """Restore parameters into a structurally identical module."""
    module.load_state_dict(load_state(path))
    return module
