"""Parameter persistence: save/load module state dicts as ``.npz``.

Keeps trained generators reusable across processes without pickling
code objects — the state dict is plain arrays keyed by parameter path,
so it is robust to refactors that do not rename parameters.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Union

import numpy as np

from .module import Module

PathLike = Union[str, pathlib.Path]


def save_state(path: PathLike, state: Dict[str, np.ndarray]) -> None:
    """Write a state dict to ``path`` (``.npz`` appended if missing)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    np.savez(path, **state)


def load_state(path: PathLike) -> Dict[str, np.ndarray]:
    """Read a state dict written by :func:`save_state`."""
    path = pathlib.Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        return {key: data[key].copy() for key in data.files}


def save_module(path: PathLike, module: Module) -> None:
    """Persist a module's parameters."""
    save_state(path, module.state_dict())


def load_module(path: PathLike, module: Module) -> Module:
    """Restore parameters into a structurally identical module."""
    module.load_state_dict(load_state(path))
    return module
