"""Core dense layers: Linear, BatchNorm1d, activations, Dropout.

These are the building blocks of the MLP generator/discriminator of the
paper (Appendix A.1.2): ``h^{l+1} = phi(BN(FC(h^l)))``.

The hot path is :func:`fused_linear`: one tape node computes
``phi(x W + b)`` with an analytic backward, replacing the matmul /
broadcast-add / activation node chain the autograd tape would otherwise
record (3-4 nodes and as many temporaries per layer call).  The fused
kernel evaluates the exact same floating point operations in the same
order, so results are bit-identical to the composed form.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import (
    Tensor, _donate_mask, _mask_for_backward, _stable_sigmoid, _take_sign_mask,
    _unbroadcast, fast_math, is_grad_enabled,
)

#: Activations :func:`fused_linear` can fuse into the affine kernel.
FUSABLE_ACTIVATIONS = (None, "relu", "leaky_relu", "tanh", "sigmoid")


def _act_forward(pre: np.ndarray, activation: Optional[str],
                 slope: float = 0.2):
    """Elementwise activation shared by every fused kernel.

    Returns ``(out, state)`` where ``state`` holds the pooled sign mask
    for relu-family activations (``None`` otherwise); pass it through to
    :func:`_act_backward`, which donates the mask back to the tape pool
    after its single use.  The operations are exactly those of the
    composed :class:`~repro.nn.tensor.Tensor` ops, so fused nodes stay
    bit-identical to the op-by-op tape.
    """
    if activation is None:
        return pre, None
    if activation == "relu":
        state = [_take_sign_mask(pre)]
        return pre * state[0], state
    if activation == "leaky_relu":
        state = [_take_sign_mask(pre)]
        return np.where(state[0], pre, slope * pre), state
    if activation == "tanh":
        return np.tanh(pre), None
    if activation == "sigmoid":
        return _stable_sigmoid(pre), None
    raise ValueError(f"cannot fuse activation {activation!r}")


def _act_backward(grad: np.ndarray, activation: Optional[str],
                  out: np.ndarray, state, slope: float = 0.2) -> np.ndarray:
    """Backward of :func:`_act_forward` given its saved forward state.

    Relu-family masks come from the shared tape pool and are donated
    back here (recomputed from ``out``'s sign on a repeated backward).
    """
    if activation is None:
        return grad
    if activation == "relu":
        g = grad * _mask_for_backward(state, out)
        _donate_mask(state)
        return g
    if activation == "leaky_relu":
        g = np.where(_mask_for_backward(state, out), grad, slope * grad)
        _donate_mask(state)
        return g
    if activation == "tanh":
        return grad * (1.0 - out ** 2)
    return grad * out * (1.0 - out)  # sigmoid


def _bn_input_grad(d_normed: np.ndarray, normed: np.ndarray,
                   inv_std, inv_n: float, axes=0,
                   keepdims: bool = False) -> np.ndarray:
    """Closed-form batch-norm input gradient (fast-math kernels).

    Shared by :class:`BatchNorm1d`, :class:`~repro.nn.conv.BatchNorm2d`
    and the fused conv nodes; ``axes`` selects the reduction layout
    (``0`` for ``(batch, features)`` matrices, ``(0, 2, 3)`` with
    ``keepdims=True`` for ``(N, C, H, W)`` activations).
    """
    return (d_normed - d_normed.sum(axis=axes, keepdims=keepdims) * inv_n
            - normed * ((d_normed * normed).sum(axis=axes,
                                                keepdims=keepdims) * inv_n)
            ) * inv_std


def fused_linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
                 activation: Optional[str] = None,
                 slope: float = 0.2) -> Tensor:
    """Fused ``phi(x @ weight + bias)`` as a single autograd node.

    ``activation`` is one of :data:`FUSABLE_ACTIVATIONS`; ``slope`` is
    the negative-half slope used when ``activation="leaky_relu"``.
    """
    if activation not in FUSABLE_ACTIVATIONS:
        raise ValueError(f"cannot fuse activation {activation!r}")
    xd, wd = x.data, weight.data
    if xd.ndim != 2:
        # Rare non-batched call: fall back to the composed ops.
        out = x @ weight
        if bias is not None:
            out = out + bias
        if activation == "relu":
            out = out.relu()
        elif activation == "leaky_relu":
            out = out.leaky_relu(slope)
        elif activation == "tanh":
            out = out.tanh()
        elif activation == "sigmoid":
            out = out.sigmoid()
        return out

    pre = xd @ wd
    if bias is not None:
        pre += bias.data

    if (activation in ("relu", "tanh") and fast_math()
            and not is_grad_enabled()):
        # Sampling fast path: no backward will run, so the activation
        # can overwrite the pre-activation in place (no sign mask, no
        # second full-width temporary).  Fast-math only: ``maximum``
        # returns +0.0 where the composed ``pre * mask`` yields -0.0.
        mask = None
        out = (np.maximum(pre, 0.0, out=pre) if activation == "relu"
               else np.tanh(pre, out=pre))
    else:
        out, mask = _act_forward(pre, activation, slope)

    def backward(grad: np.ndarray):
        d_pre = _act_backward(grad, activation, out, mask, slope)
        gx = d_pre @ wd.T if x.requires_grad else None
        gw = xd.T @ d_pre if weight.requires_grad else None
        if bias is None:
            return (gx, gw)
        gb = _unbroadcast(d_pre, bias.data.shape) if bias.requires_grad else None
        return (gx, gw, gb)

    parents = (x, weight) if bias is None else (x, weight, bias)
    node = Tensor._make(out, parents, backward)
    if node._backward is None and mask is not None:
        _donate_mask(mask)  # no-grad path: backward never runs
    return node


class Linear(Module):
    """Fully connected layer ``y = x W + b``.

    ``forward`` optionally fuses an elementwise activation into the
    affine kernel (one tape node instead of up to four):
    ``layer(x, activation="leaky_relu")``.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor, activation: Optional[str] = None,
                slope: float = 0.2) -> Tensor:
        return fused_linear(x, self.weight, self.bias,
                            activation=activation, slope=slope)


class BatchNorm1d(Module):
    """Batch normalization over the feature axis of ``(batch, features)``.

    Keeps running statistics for eval-mode normalization, matching the
    standard formulation of Ioffe & Szegedy used by the paper's models.
    """

    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones(num_features))
        self.beta = Parameter(init.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor, activation: Optional[str] = None) -> Tensor:
        """Normalize ``x``; ``activation="relu"`` optionally fuses the
        nonlinearity that follows BN in the paper's generator stack."""
        if self.training and x.shape[0] > 1:
            if fast_math():
                return self._forward_fused(x, activation)
            mean = x.mean(axis=0)
            centered = x - mean
            var = (centered * centered).mean(axis=0)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mean.data)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var.data)
            inv_std = (var + self.eps) ** -0.5
            normed = centered * inv_std
            out = normed * self.gamma + self.beta
            return out.relu() if activation == "relu" else out
        return self._forward_eval(x, activation)

    def _forward_eval(self, x: Tensor,
                      activation: Optional[str] = None) -> Tensor:
        """Running-stat normalization as one tape node (both dtypes).

        Eval-mode BN is a fixed per-feature affine map; the composed op
        chain spends ~6 full-width temporaries per call, which used to
        dominate streaming-sampling profiles.  The fused node evaluates
        the same elementwise expressions (constants cast to the input
        dtype exactly as the Tensor wrapper would), so forward values
        stay bit-identical to the composed path.
        """
        dtype = x.data.dtype
        inv = np.asarray(1.0 / np.sqrt(self.running_var + self.eps),
                         dtype=dtype)
        mean = np.asarray(self.running_mean, dtype=dtype)
        normed = (x.data - mean) * inv
        gamma, beta = self.gamma, self.beta
        out, mask = _act_forward(normed * gamma.data + beta.data, activation)

        def backward(grad: np.ndarray):
            grad = _act_backward(grad, activation, out, mask)
            dgamma = (grad * normed).sum(axis=0)
            dbeta = grad.sum(axis=0)
            return (grad * (gamma.data * inv), dgamma, dbeta)

        node = Tensor._make(out, (x, gamma, beta), backward)
        if node._backward is None and mask is not None:
            _donate_mask(mask)  # no-grad path: backward never runs
        return node

    def _forward_fused(self, x: Tensor,
                       activation: Optional[str] = None) -> Tensor:
        """Single-node batch norm (+ optional ReLU) with the analytic
        backward.

        Fast-math only: the closed-form input gradient re-associates the
        batch sums, so it is not bit-identical to the composed op chain
        the parity path records (~12 tape nodes per call).
        """
        xd = x.data
        inv_n = 1.0 / xd.shape[0]
        mean = xd.sum(axis=0) * inv_n
        centered = xd - mean
        var = (centered * centered).sum(axis=0) * inv_n
        self.running_mean = ((1 - self.momentum) * self.running_mean
                             + self.momentum * mean)
        self.running_var = ((1 - self.momentum) * self.running_var
                            + self.momentum * var)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        normed = centered * inv_std
        gamma, beta = self.gamma, self.beta
        out = normed * gamma.data + beta.data
        state = None
        if activation == "relu":
            state = [_take_sign_mask(out)]
            out = out * state[0]

        def backward(grad: np.ndarray):
            if state is not None:
                grad = grad * _mask_for_backward(state, out)
                _donate_mask(state)
            dgamma = (grad * normed).sum(axis=0)
            dbeta = grad.sum(axis=0)
            d_normed = grad * gamma.data
            dx = _bn_input_grad(d_normed, normed, inv_std, inv_n)
            return (dx, dgamma, dbeta)

        node = Tensor._make(out, (x, gamma, beta), backward)
        if node._backward is None and state is not None:
            _donate_mask(state)  # no-grad path: backward never runs
        return node


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.2):
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * mask
