"""Core dense layers: Linear, BatchNorm1d, activations, Dropout.

These are the building blocks of the MLP generator/discriminator of the
paper (Appendix A.1.2): ``h^{l+1} = phi(BN(FC(h^l)))``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import init
from .module import Module, Parameter
from .tensor import Tensor


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None, bias: bool = True):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class BatchNorm1d(Module):
    """Batch normalization over the feature axis of ``(batch, features)``.

    Keeps running statistics for eval-mode normalization, matching the
    standard formulation of Ioffe & Szegedy used by the paper's models.
    """

    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones(num_features))
        self.beta = Parameter(init.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if self.training and x.shape[0] > 1:
            mean = x.mean(axis=0)
            centered = x - mean
            var = (centered * centered).mean(axis=0)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mean.data)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var.data)
            inv_std = (var + self.eps) ** -0.5
            normed = centered * inv_std
        else:
            normed = (x - self.running_mean) * (
                1.0 / np.sqrt(self.running_var + self.eps))
        return normed * self.gamma + self.beta


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.2):
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * mask
