"""Minimal autograd + neural-network substrate (replaces PyTorch offline).

Public surface::

    from repro.nn import Tensor, Linear, BatchNorm1d, LSTMCell, Adam, ...
"""

from .tensor import (
    ArrayPool, Tensor, as_tensor, concat, stack, where,
    default_dtype, fast_math, get_default_dtype, is_grad_enabled, no_grad,
    reset_worker_state, set_default_dtype,
)
from .module import Module, Parameter, Sequential
from .layers import (
    Linear, BatchNorm1d, ReLU, LeakyReLU, Tanh, Sigmoid, Dropout,
    fused_linear,
)
from .conv import (
    BatchNorm2d, Conv2d, ConvTranspose2d, conv2d_bn_act,
    conv_transpose2d_bn_act,
)
from .rnn import LSTMCell, SequenceToOneLSTM, addmm, lstm_gates, lstm_step
from .optim import (
    SGD, Adam, RMSProp, Optimizer, clip_parameters, clip_gradients,
    add_gradient_noise, global_gradient_norm,
)
from .losses import (
    bce_with_logits, binary_cross_entropy, mse, categorical_kl,
    categorical_kl_sum, gaussian_kl,
)

__all__ = [
    "ArrayPool", "Tensor", "as_tensor", "concat", "stack", "where",
    "default_dtype", "fast_math", "get_default_dtype", "is_grad_enabled",
    "no_grad", "reset_worker_state", "set_default_dtype",
    "Module", "Parameter", "Sequential",
    "Linear", "BatchNorm1d", "ReLU", "LeakyReLU", "Tanh", "Sigmoid",
    "Dropout", "fused_linear", "Conv2d", "ConvTranspose2d", "BatchNorm2d",
    "conv2d_bn_act", "conv_transpose2d_bn_act",
    "LSTMCell", "SequenceToOneLSTM", "addmm", "lstm_gates", "lstm_step",
    "SGD", "Adam", "RMSProp", "Optimizer", "clip_parameters",
    "clip_gradients", "add_gradient_noise", "global_gradient_norm",
    "bce_with_logits", "binary_cross_entropy", "mse", "categorical_kl",
    "categorical_kl_sum", "gaussian_kl",
]
