"""Variational autoencoder baseline (paper §6.3)."""

from .model import VAEModel, elbo_loss, reconstruction_loss
from .synthesizer import VAESynthesizer

__all__ = ["VAEModel", "elbo_loss", "reconstruction_loss", "VAESynthesizer"]
