"""VAE-based relational data synthesizer (paper §6.3 baseline)."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..api.base import Synthesizer, prefixed, unprefixed
from ..api.registry import register
from ..api.seeding import substream
from ..datasets.schema import Table
from ..errors import TrainingError
from ..nn import Adam, Tensor, get_default_dtype, no_grad
from ..transform import RecordTransformer
from .model import VAEModel, elbo_loss


@register("vae")
class VAESynthesizer(Synthesizer):
    """Fit a VAE on the transformed table; sample from the prior.

    Uses the same vector-form transformation as the GAN pipeline
    (one-hot + GMM by default), so comparisons isolate the generative
    model rather than the representation.  Implements the unified
    :class:`repro.api.Synthesizer` contract under the name ``"vae"``.

    ``keep_snapshots`` mirrors the GAN family: per-epoch model
    snapshots enable validation-based epoch selection through
    ``repro.synthesize(table, method="vae", valid=...)``; with
    ``keep_snapshots=False`` only the final epoch is deep-copied (the
    others record ``None``), the lazy-snapshot memory win used by
    sweeps without a validation table.
    """

    default_sample_batch = 4096
    #: Streaming via a seeded replay reservoir, like the GAN family.
    supports_partial_fit = True

    def __init__(self, latent_dim: int = 32, hidden_dim: int = 128,
                 epochs: int = 10, iterations_per_epoch: int = 40,
                 batch_size: int = 64, lr: float = 1e-3,
                 kl_weight: float = 0.2,
                 categorical_encoding: str = "onehot",
                 numerical_normalization: str = "gmm",
                 gmm_components: int = 5, keep_snapshots: bool = True,
                 seed: int = 0, reservoir_rows: int = 8192):
        super().__init__(seed=seed)
        self.latent_dim = latent_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.iterations_per_epoch = iterations_per_epoch
        self.batch_size = batch_size
        self.lr = lr
        self.kl_weight = kl_weight
        self.categorical_encoding = categorical_encoding
        self.numerical_normalization = numerical_normalization
        self.gmm_components = gmm_components
        self.keep_snapshots = bool(keep_snapshots)
        self.model: Optional[VAEModel] = None
        self.transformer: Optional[RecordTransformer] = None
        self.losses: List[float] = []
        self._snapshots: List[Optional[Dict[str, np.ndarray]]] = []
        self.reservoir_rows = int(reservoir_rows)
        self._reservoir = None
        self._stream_transformer = None

    def _fit(self, table: Table, callbacks, conditions=None) -> None:
        self.transformer = RecordTransformer(
            categorical_encoding=self.categorical_encoding,
            numerical_normalization=self.numerical_normalization,
            gmm_components=self.gmm_components, rng=self.rng)
        self.transformer.fit(table)
        data = self.transformer.transform(table)
        # Seed the streaming state (dedicated substreams: the training
        # trajectory below stays bit-identical) so a later partial_fit
        # continues from this table instead of forgetting it.
        self._seed_stream_state(table)
        self._train_transformed(data, callbacks)

    def _train_transformed(self, data: np.ndarray, callbacks) -> None:
        """Train the VAE on an already-transformed table."""
        blocks = self.transformer.blocks
        self.model = VAEModel(blocks, latent_dim=self.latent_dim,
                              hidden_dim=self.hidden_dim, rng=self.rng)
        optimizer = Adam(self.model.parameters(), lr=self.lr)
        self.losses = []
        self._snapshots = []
        n = len(data)
        for epoch in range(self.epochs):
            for _ in range(self.iterations_per_epoch):
                idx = self.rng.integers(0, n, size=min(self.batch_size, n))
                batch = data[idx]
                optimizer.zero_grad()
                pred, mu, logvar = self.model(Tensor(batch), self.rng)
                loss = elbo_loss(pred, batch, mu, logvar, blocks,
                                 kl_weight=self.kl_weight)
                loss.backward()
                optimizer.step()
                self.losses.append(float(loss.data))
            # Lazy snapshots, GAN-parity: the final epoch is always
            # kept so the trained model can be restored and persisted.
            take_snapshot = self.keep_snapshots or epoch == self.epochs - 1
            self._snapshots.append(self.model.state_dict()
                                   if take_snapshot else None)
            for callback in callbacks:
                callback({"epoch": epoch, "loss": self.losses[-1]})
        self._active_snapshot = len(self._snapshots) - 1

    # ------------------------------------------------------------------
    # Streaming (seeded replay reservoir + incremental transformer)
    # ------------------------------------------------------------------
    def _reset_fit_state(self) -> None:
        # Clean-refit contract: no transformer, loss history, or stream
        # buffer from a previous fit survives into this one.
        self.transformer = None
        self.model = None
        self.losses = []
        self._snapshots = []
        self._reservoir = None
        self._stream_transformer = None

    def _seed_stream_state(self, table: Table) -> None:
        from ..stream.reservoir import TableReservoir

        if self._reservoir is None:
            self._reservoir = TableReservoir(
                self.reservoir_rows,
                rng=substream(self.seed, "stream", "reservoir"))
            self._stream_transformer = RecordTransformer(
                categorical_encoding=self.categorical_encoding,
                numerical_normalization=self.numerical_normalization,
                gmm_components=self.gmm_components,
                rng=substream(self.seed, "stream", "transform"))
        self._reservoir.add(table)
        self._stream_transformer.partial_fit(table)

    def _partial_fit(self, table: Table) -> None:
        self._seed_stream_state(table)

    def _finalize_partial(self) -> None:
        if self._reservoir is None or len(self._reservoir) == 0:
            raise TrainingError("no stream chunks ingested")
        table = self._reservoir.table()
        self.transformer = self._stream_transformer.finalize()
        data = self.transformer.transform(table)
        self._train_transformed(data, [])

    # ------------------------------------------------------------------
    # Snapshots (validation-based epoch selection, paper §6.2)
    # ------------------------------------------------------------------
    @property
    def supports_snapshots(self) -> bool:
        return bool(self._snapshots)

    @property
    def snapshots(self) -> List[Optional[Dict[str, np.ndarray]]]:
        if not self._snapshots:
            raise TrainingError("synthesizer has no training history")
        return self._snapshots

    def _snapshot_module(self) -> VAEModel:
        return self.model

    # ------------------------------------------------------------------
    # Phase III
    # ------------------------------------------------------------------
    def _sampling_session(self):
        return self._eval_mode_session(self.model)

    def spawn_sampler(self, worker_id: int = 0) -> "VAESynthesizer":
        """Worker prep (see :meth:`repro.api.Synthesizer.spawn_sampler`).

        Additionally drops per-epoch snapshots and the loss history —
        decoding from the prior needs neither, and snapshots are the
        dominant per-worker memory cost after a fork.
        """
        super().spawn_sampler(worker_id)
        self._snapshots = []
        self.losses = []
        return self

    def _sample_chunk(self, m: int, rng: np.random.Generator,
                      conditions=None) -> Table:
        dtype = get_default_dtype()
        if dtype is np.float64:
            z = Tensor(rng.standard_normal((m, self.latent_dim)))
        else:
            z = Tensor(rng.standard_normal((m, self.latent_dim),
                                           dtype=dtype))
        with no_grad():
            decoded = self.model.decode(z).data
        return self.transformer.inverse(decoded)

    def training_curves(self) -> Dict[str, List[float]]:
        if not self.losses:
            return {}
        # One value per epoch: the mean ELBO over that epoch's iterations.
        per_epoch = np.array_split(np.asarray(self.losses), self.epochs)
        return {"loss": [float(np.mean(chunk)) for chunk in per_epoch
                         if len(chunk)]}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _state(self):
        meta = {
            "params": {
                "latent_dim": self.latent_dim,
                "hidden_dim": self.hidden_dim,
                "epochs": self.epochs,
                "iterations_per_epoch": self.iterations_per_epoch,
                "batch_size": self.batch_size,
                "lr": self.lr,
                "kl_weight": self.kl_weight,
                "categorical_encoding": self.categorical_encoding,
                "numerical_normalization": self.numerical_normalization,
                "gmm_components": self.gmm_components,
                "keep_snapshots": self.keep_snapshots,
                "seed": self.seed,
                "reservoir_rows": self.reservoir_rows,
            },
            "transformer": self.transformer.to_state(),
            "active_snapshot": self._active_snapshot,
        }
        # Only the active model is persisted (the winning snapshot is
        # active after selection), matching the GAN family.
        return meta, prefixed("model", self.model.state_dict())

    def _load_state(self, state, arrays) -> None:
        self.transformer = RecordTransformer.from_state(
            state["transformer"], rng=self.rng)
        self.model = VAEModel(self.transformer.blocks,
                              latent_dim=self.latent_dim,
                              hidden_dim=self.hidden_dim, rng=self.rng)
        self.model.load_state_dict(unprefixed("model", arrays))
        self._active_snapshot = state.get("active_snapshot")
