"""VAE-based relational data synthesizer (paper §6.3 baseline)."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..api.base import Synthesizer, prefixed, unprefixed
from ..api.registry import register
from ..datasets.schema import Table
from ..nn import Adam, Tensor, no_grad
from ..transform import RecordTransformer
from .model import VAEModel, elbo_loss


@register("vae")
class VAESynthesizer(Synthesizer):
    """Fit a VAE on the transformed table; sample from the prior.

    Uses the same vector-form transformation as the GAN pipeline
    (one-hot + GMM by default), so comparisons isolate the generative
    model rather than the representation.  Implements the unified
    :class:`repro.api.Synthesizer` contract under the name ``"vae"``.
    """

    default_sample_batch = 512

    def __init__(self, latent_dim: int = 32, hidden_dim: int = 128,
                 epochs: int = 10, iterations_per_epoch: int = 40,
                 batch_size: int = 64, lr: float = 1e-3,
                 kl_weight: float = 0.2,
                 categorical_encoding: str = "onehot",
                 numerical_normalization: str = "gmm",
                 gmm_components: int = 5, seed: int = 0):
        super().__init__(seed=seed)
        self.latent_dim = latent_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.iterations_per_epoch = iterations_per_epoch
        self.batch_size = batch_size
        self.lr = lr
        self.kl_weight = kl_weight
        self.categorical_encoding = categorical_encoding
        self.numerical_normalization = numerical_normalization
        self.gmm_components = gmm_components
        self.model: Optional[VAEModel] = None
        self.transformer: Optional[RecordTransformer] = None
        self.losses: List[float] = []

    def _fit(self, table: Table, callbacks) -> None:
        self.transformer = RecordTransformer(
            categorical_encoding=self.categorical_encoding,
            numerical_normalization=self.numerical_normalization,
            gmm_components=self.gmm_components, rng=self.rng)
        self.transformer.fit(table)
        data = self.transformer.transform(table)
        blocks = self.transformer.blocks
        self.model = VAEModel(blocks, latent_dim=self.latent_dim,
                              hidden_dim=self.hidden_dim, rng=self.rng)
        optimizer = Adam(self.model.parameters(), lr=self.lr)
        self.losses = []
        n = len(data)
        for epoch in range(self.epochs):
            for _ in range(self.iterations_per_epoch):
                idx = self.rng.integers(0, n, size=min(self.batch_size, n))
                batch = data[idx]
                optimizer.zero_grad()
                pred, mu, logvar = self.model(Tensor(batch), self.rng)
                loss = elbo_loss(pred, batch, mu, logvar, blocks,
                                 kl_weight=self.kl_weight)
                loss.backward()
                optimizer.step()
                self.losses.append(float(loss.data))
            for callback in callbacks:
                callback({"epoch": epoch, "loss": self.losses[-1]})

    def _sample_chunk(self, m: int, rng: np.random.Generator) -> Table:
        z = Tensor(rng.standard_normal((m, self.latent_dim)))
        self.model.eval()
        try:
            with no_grad():
                decoded = self.model.decode(z).data
        finally:
            self.model.train()
        return self.transformer.inverse(decoded)

    def training_curves(self) -> Dict[str, List[float]]:
        if not self.losses:
            return {}
        # One value per epoch: the mean ELBO over that epoch's iterations.
        per_epoch = np.array_split(np.asarray(self.losses), self.epochs)
        return {"loss": [float(np.mean(chunk)) for chunk in per_epoch
                         if len(chunk)]}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _state(self):
        meta = {
            "params": {
                "latent_dim": self.latent_dim,
                "hidden_dim": self.hidden_dim,
                "epochs": self.epochs,
                "iterations_per_epoch": self.iterations_per_epoch,
                "batch_size": self.batch_size,
                "lr": self.lr,
                "kl_weight": self.kl_weight,
                "categorical_encoding": self.categorical_encoding,
                "numerical_normalization": self.numerical_normalization,
                "gmm_components": self.gmm_components,
                "seed": self.seed,
            },
            "transformer": self.transformer.to_state(),
        }
        return meta, prefixed("model", self.model.state_dict())

    def _load_state(self, state, arrays) -> None:
        self.transformer = RecordTransformer.from_state(
            state["transformer"], rng=self.rng)
        self.model = VAEModel(self.transformer.blocks,
                              latent_dim=self.latent_dim,
                              hidden_dim=self.hidden_dim, rng=self.rng)
        self.model.load_state_dict(unprefixed("model", arrays))
