"""VAE-based relational data synthesizer (paper §6.3 baseline)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..datasets.schema import Table
from ..errors import TrainingError
from ..nn import Adam, Tensor
from ..transform import RecordTransformer
from .model import VAEModel, elbo_loss


class VAESynthesizer:
    """Fit a VAE on the transformed table; sample from the prior.

    Uses the same vector-form transformation as the GAN pipeline
    (one-hot + GMM by default), so comparisons isolate the generative
    model rather than the representation.
    """

    def __init__(self, latent_dim: int = 32, hidden_dim: int = 128,
                 epochs: int = 10, iterations_per_epoch: int = 40,
                 batch_size: int = 64, lr: float = 1e-3,
                 kl_weight: float = 0.2,
                 categorical_encoding: str = "onehot",
                 numerical_normalization: str = "gmm",
                 gmm_components: int = 5, seed: int = 0):
        self.latent_dim = latent_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.iterations_per_epoch = iterations_per_epoch
        self.batch_size = batch_size
        self.lr = lr
        self.kl_weight = kl_weight
        self.categorical_encoding = categorical_encoding
        self.numerical_normalization = numerical_normalization
        self.gmm_components = gmm_components
        self.rng = np.random.default_rng(seed)
        self.model: Optional[VAEModel] = None
        self.transformer: Optional[RecordTransformer] = None
        self.losses: List[float] = []

    def fit(self, table: Table) -> "VAESynthesizer":
        self.transformer = RecordTransformer(
            categorical_encoding=self.categorical_encoding,
            numerical_normalization=self.numerical_normalization,
            gmm_components=self.gmm_components, rng=self.rng)
        self.transformer.fit(table)
        data = self.transformer.transform(table)
        blocks = self.transformer.blocks
        self.model = VAEModel(blocks, latent_dim=self.latent_dim,
                              hidden_dim=self.hidden_dim, rng=self.rng)
        optimizer = Adam(self.model.parameters(), lr=self.lr)
        self.losses = []
        n = len(data)
        for _ in range(self.epochs):
            for _ in range(self.iterations_per_epoch):
                idx = self.rng.integers(0, n, size=min(self.batch_size, n))
                batch = data[idx]
                optimizer.zero_grad()
                pred, mu, logvar = self.model(Tensor(batch), self.rng)
                loss = elbo_loss(pred, batch, mu, logvar, blocks,
                                 kl_weight=self.kl_weight)
                loss.backward()
                optimizer.step()
                self.losses.append(float(loss.data))
        return self

    def sample(self, n: int, batch: int = 512) -> Table:
        if self.model is None:
            raise TrainingError("synthesizer is not fitted")
        self.model.eval()
        chunks = []
        remaining = n
        while remaining > 0:
            m = min(batch, remaining)
            z = Tensor(self.rng.standard_normal((m, self.latent_dim)))
            chunks.append(self.model.decode(z).data)
            remaining -= m
        self.model.train()
        return self.transformer.inverse(np.concatenate(chunks, axis=0))
