"""Variational autoencoder for relational samples (paper §6.3 baseline).

Encoder and decoder are MLPs; the decoder reuses the GAN's
attribute-aware heads.  The loss follows the paper: reconstruction uses
binary cross entropy on categorical blocks and mean squared error on
numerical blocks, plus the Gaussian KL regularizer, optimized with the
reparameterization trick.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import Linear, Module, Tensor, gaussian_kl
from ..gan.heads import MultiHead
from ..transform.base import (
    BlockSpec, HEAD_SIGMOID, HEAD_SOFTMAX, HEAD_TANH, HEAD_TANH_SOFTMAX,
)


class VAEModel(Module):
    """Encoder (mu, logvar) + decoder with per-attribute heads."""

    def __init__(self, blocks: List[BlockSpec], latent_dim: int = 32,
                 hidden_dim: int = 128,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.blocks = blocks
        self.latent_dim = latent_dim
        input_dim = sum(b.width for b in blocks)
        self.enc1 = Linear(input_dim, hidden_dim, rng=rng)
        self.enc2 = Linear(hidden_dim, hidden_dim, rng=rng)
        self.mu_fc = Linear(hidden_dim, latent_dim, rng=rng)
        self.logvar_fc = Linear(hidden_dim, latent_dim, rng=rng)
        self.dec1 = Linear(latent_dim, hidden_dim, rng=rng)
        self.dec2 = Linear(hidden_dim, hidden_dim, rng=rng)
        self.heads = MultiHead(hidden_dim, blocks, rng=rng)

    def encode(self, x: Tensor):
        h = self.enc1(x, activation="relu")
        h = self.enc2(h, activation="relu")
        return self.mu_fc(h), self.logvar_fc(h)

    def decode(self, z: Tensor) -> Tensor:
        h = self.dec1(z, activation="relu")
        h = self.dec2(h, activation="relu")
        return self.heads(h)

    def reparameterize(self, mu: Tensor, logvar: Tensor,
                       rng: np.random.Generator) -> Tensor:
        eps = Tensor(rng.standard_normal(mu.shape))
        return mu + (logvar * 0.5).exp() * eps

    def forward(self, x: Tensor, rng: np.random.Generator):
        mu, logvar = self.encode(x)
        z = self.reparameterize(mu, logvar, rng)
        return self.decode(z), mu, logvar


def reconstruction_loss(pred: Tensor, target: np.ndarray,
                        blocks: List[BlockSpec], eps: float = 1e-7) -> Tensor:
    """Per-block reconstruction loss (BCE for categorical, MSE numeric)."""
    target = np.asarray(target, dtype=pred.data.dtype)
    n = target.shape[0]
    total = None

    def add(term: Tensor):
        nonlocal total
        total = term if total is None else total + term

    for block in blocks:
        pred_block = pred[:, block.slice]
        tgt_block = target[:, block.slice]
        if block.head == HEAD_SOFTMAX:
            log_p = pred_block.clip(eps, 1.0).log()
            add(-(log_p * tgt_block).sum() * (1.0 / n))
        elif block.head == HEAD_SIGMOID:
            clipped = pred_block.clip(eps, 1.0 - eps)
            bce = (clipped.log() * tgt_block
                   + (1.0 - clipped).log() * (1.0 - tgt_block))
            add(-bce.sum() * (1.0 / n))
        elif block.head == HEAD_TANH:
            diff = pred_block - tgt_block
            add((diff * diff).sum() * (1.0 / n))
        elif block.head == HEAD_TANH_SOFTMAX:
            value_pred = pred[:, block.start:block.start + 1]
            value_tgt = tgt_block[:, :1]
            diff = value_pred - value_tgt
            add((diff * diff).sum() * (1.0 / n))
            mode_pred = pred[:, block.start + 1:block.stop]
            mode_tgt = tgt_block[:, 1:]
            log_p = mode_pred.clip(eps, 1.0).log()
            add(-(log_p * mode_tgt).sum() * (1.0 / n))
    if total is None:
        raise ValueError("no blocks to reconstruct")
    return total


def elbo_loss(pred: Tensor, target: np.ndarray, mu: Tensor, logvar: Tensor,
              blocks: List[BlockSpec], kl_weight: float = 1.0) -> Tensor:
    """Reconstruction + KL (the negative evidence lower bound)."""
    return (reconstruction_loss(pred, target, blocks)
            + gaussian_kl(mu, logvar) * kl_weight)
