"""Aggregate query model for the AQP utility evaluation (paper §2.1).

A :class:`Query` is ``AGG(target) WHERE predicates [GROUP BY column]``
with ``AGG`` in {count, sum, avg}, conjunctive predicates (categorical
equality, numerical range), and an optional categorical group-by —
the query family of Li et al. [36] used by the paper's workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..errors import QueryError

COUNT = "count"
SUM = "sum"
AVG = "avg"
AGGREGATES = (COUNT, SUM, AVG)


@dataclass(frozen=True)
class CategoricalPredicate:
    """``column == code``."""

    column: str
    code: int


@dataclass(frozen=True)
class RangePredicate:
    """``low <= column <= high``."""

    column: str
    low: float
    high: float

    def __post_init__(self):
        if self.low > self.high:
            raise QueryError(
                f"empty range [{self.low}, {self.high}] on {self.column!r}")


Predicate = Union[CategoricalPredicate, RangePredicate]


@dataclass(frozen=True)
class Query:
    """One aggregate query."""

    aggregate: str
    target: Optional[str] = None          # None only for count
    predicates: Tuple[Predicate, ...] = ()
    group_by: Optional[str] = None        # categorical column

    def __post_init__(self):
        if self.aggregate not in AGGREGATES:
            raise QueryError(f"unknown aggregate {self.aggregate!r}")
        if self.aggregate == COUNT and self.target is not None:
            raise QueryError("count queries take no target column")
        if self.aggregate != COUNT and self.target is None:
            raise QueryError(f"{self.aggregate} queries need a target")

    def describe(self) -> str:
        parts = [f"{self.aggregate}({self.target or '*'})"]
        if self.predicates:
            preds = []
            for p in self.predicates:
                if isinstance(p, CategoricalPredicate):
                    preds.append(f"{p.column}={p.code}")
                else:
                    preds.append(f"{p.low:.3g}<={p.column}<={p.high:.3g}")
            parts.append("where " + " and ".join(preds))
        if self.group_by:
            parts.append(f"group by {self.group_by}")
        return " ".join(parts)
