"""Approximate-query-processing substrate: queries, engine, workloads."""

from .query import (
    Query, CategoricalPredicate, RangePredicate, COUNT, SUM, AVG, AGGREGATES,
)
from .engine import execute
from .workload import generate_workload
from .error import diff_aqp, relative_error, workload_errors

__all__ = [
    "Query", "CategoricalPredicate", "RangePredicate",
    "COUNT", "SUM", "AVG", "AGGREGATES",
    "execute", "generate_workload", "diff_aqp", "relative_error",
    "workload_errors",
]
