"""Vectorized execution of aggregate queries over a column-store Table."""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..datasets.schema import Table
from ..errors import QueryError
from .query import (
    AVG, COUNT, SUM, CategoricalPredicate, Query, RangePredicate,
)

QueryResult = Union[float, Dict[int, float]]


def _selection_mask(table: Table, query: Query) -> np.ndarray:
    mask = np.ones(len(table), dtype=bool)
    for pred in query.predicates:
        col = table.column(pred.column)
        if isinstance(pred, CategoricalPredicate):
            mask &= col == pred.code
        elif isinstance(pred, RangePredicate):
            mask &= (col >= pred.low) & (col <= pred.high)
        else:
            raise QueryError(f"unknown predicate type {type(pred).__name__}")
    return mask


def _aggregate(values: Optional[np.ndarray], aggregate: str,
               count: int) -> float:
    if aggregate == COUNT:
        return float(count)
    if count == 0:
        return 0.0
    if aggregate == SUM:
        return float(values.sum())
    if aggregate == AVG:
        return float(values.mean())
    raise QueryError(f"unknown aggregate {aggregate!r}")


def execute(query: Query, table: Table) -> QueryResult:
    """Run ``query`` on ``table``.

    Returns a float, or a ``{group_code: value}`` dict for group-by
    queries (groups with no matching rows are omitted).
    """
    mask = _selection_mask(table, query)
    target = (table.column(query.target)[mask]
              if query.target is not None else None)
    if query.group_by is None:
        return _aggregate(target, query.aggregate, int(mask.sum()))

    groups = table.column(query.group_by)[mask]
    result: Dict[int, float] = {}
    for code in np.unique(groups):
        group_mask = groups == code
        group_target = target[group_mask] if target is not None else None
        result[int(code)] = _aggregate(group_target, query.aggregate,
                                       int(group_mask.sum()))
    return result
