"""Random aggregate-query workload generation (following Li et al. [36]).

The paper's AQP evaluation runs 1,000 generated queries with count / avg
/ sum aggregates, selection conditions, and groupings (§6.2).  This
generator draws: a random aggregate; a random numerical target (for
sum/avg); 1-3 conjunctive predicates (categorical equality with an
observed code, numerical ranges between two random quantiles); and a
categorical group-by with configurable probability.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..datasets.schema import Table
from ..errors import QueryError
from .query import (
    AGGREGATES, AVG, COUNT, SUM, CategoricalPredicate, Query, RangePredicate,
)


def generate_workload(table: Table, n_queries: int = 1000,
                      max_predicates: int = 3, group_by_prob: float = 0.3,
                      rng: Optional[np.random.Generator] = None,
                      seed: int = 0) -> List[Query]:
    """Generate a random workload against ``table``'s schema and data."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    numerical = table.schema.numerical_names()
    categorical = table.schema.categorical_names()
    if not numerical and not categorical:
        raise QueryError("table has no queryable attributes")

    queries: List[Query] = []
    while len(queries) < n_queries:
        if numerical:
            aggregate = AGGREGATES[rng.integers(0, len(AGGREGATES))]
        else:
            aggregate = COUNT
        target = None
        if aggregate != COUNT:
            target = numerical[rng.integers(0, len(numerical))]

        all_columns = numerical + categorical
        n_preds = min(int(rng.integers(1, max_predicates + 1)),
                      len(all_columns))
        # Distinct predicate columns: repeating an equality column would
        # make the conjunction contradictory.
        pred_columns = rng.choice(len(all_columns), size=n_preds,
                                  replace=False)
        predicates = []
        for col_idx in pred_columns:
            column = all_columns[col_idx]
            if column in categorical:
                codes = table.column(column)
                code = int(codes[rng.integers(0, len(codes))])
                predicates.append(CategoricalPredicate(column, code))
            else:
                values = table.column(column)
                q1, q2 = np.sort(rng.uniform(0.0, 1.0, size=2))
                # Widen tiny ranges so queries are rarely empty.
                if q2 - q1 < 0.1:
                    q2 = min(1.0, q1 + 0.1)
                low, high = np.quantile(values, [q1, q2])
                predicates.append(RangePredicate(column, float(low),
                                                 float(high)))

        group_by = None
        if categorical and rng.random() < group_by_prob:
            group_by = categorical[rng.integers(0, len(categorical))]

        queries.append(Query(aggregate=aggregate, target=target,
                             predicates=tuple(predicates),
                             group_by=group_by))
    return queries
