"""Relative-error-difference metric DiffAQP (paper §2.1, §6.2).

For each query ``q``:

* ``e'`` — relative error of the synthetic table's answer against the
  original table's answer;
* ``e``  — relative error of a fixed-size (default 1%) random sample of
  the original table, averaged over several draws;
* ``DiffAQP(q) = |e - e'|``; the workload metric is the mean over queries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..datasets.schema import Table
from .engine import execute
from .query import Query

_EPS = 1e-9


def relative_error(estimate: Union[float, Dict[int, float]],
                   truth: Union[float, Dict[int, float]]) -> float:
    """Relative error, averaged over groups for group-by results.

    A group present in the truth but missing from the estimate counts as
    error 1 (completely missed); truth-empty results give error 0 when
    the estimate is also (near) empty, else 1.
    """
    if isinstance(truth, dict):
        estimate = estimate if isinstance(estimate, dict) else {}
        if not truth:
            return 0.0 if not estimate else 1.0
        errors = []
        for code, true_val in truth.items():
            if code not in estimate:
                errors.append(1.0)
            else:
                errors.append(_scalar_error(estimate[code], true_val))
        return float(np.mean(errors))
    estimate = estimate if not isinstance(estimate, dict) else 0.0
    return _scalar_error(estimate, truth)


def _scalar_error(estimate: float, truth: float) -> float:
    if abs(truth) < _EPS:
        return 0.0 if abs(estimate) < _EPS else 1.0
    return abs(estimate - truth) / abs(truth)


def workload_errors(queries: Sequence[Query], answer_table: Table,
                    truth_table: Table,
                    scale: Optional[float] = None) -> List[float]:
    """Per-query relative errors of ``answer_table`` vs ``truth_table``.

    ``scale`` multiplies count/sum answers (sampling correction: a p%
    sample answers count/sum queries scaled by 1/p).
    """
    errors = []
    for query in queries:
        truth = execute(query, truth_table)
        answer = execute(query, answer_table)
        if scale is not None and query.aggregate in ("count", "sum"):
            if isinstance(answer, dict):
                answer = {k: v * scale for k, v in answer.items()}
            else:
                answer = answer * scale
        errors.append(relative_error(answer, truth))
    return errors


def diff_aqp(queries: Sequence[Query], synthetic: Table, original: Table,
             sample_fraction: float = 0.01, n_sample_draws: int = 10,
             rng: Optional[np.random.Generator] = None,
             seed: int = 0) -> float:
    """The paper's DiffAQP averaged over the workload."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    synth_errors = np.asarray(workload_errors(queries, synthetic, original))

    n_sample = max(1, int(round(len(original) * sample_fraction)))
    scale = len(original) / n_sample
    sample_error_sum = np.zeros(len(queries))
    for _ in range(n_sample_draws):
        sample = original.sample_rows(n_sample, rng)
        sample_error_sum += np.asarray(
            workload_errors(queries, sample, original, scale=scale))
    sample_errors = sample_error_sum / n_sample_draws

    return float(np.mean(np.abs(sample_errors - synth_errors)))
