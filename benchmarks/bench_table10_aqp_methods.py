"""Table 10: synthesis methods -> AQP utility DiffAQP.

Includes the Bing stand-in, the paper's AQP production workload (no
label; unconditional GAN).

Paper shape to verify: GAN < VAE < PB on relative-error difference, with
VAE comparatively strong on Bing.
"""

import pytest

from repro.core.design_space import DesignConfig
from repro.core.evaluation import aqp_utility

from _harness import (
    context, emit, gan_synthetic, pb_synthetic, run_once, vae_synthetic,
)
from repro.report import format_table

EPSILONS = (0.2, 0.4, 0.8, 1.6)
N_QUERIES = 100


def test_table10(benchmark):
    def run():
        headers = (["dataset", "VAE"]
                   + [f"PB-{e}" for e in EPSILONS] + ["GAN"])
        rows = []
        for dataset in ("covtype", "census", "bing"):
            ctx = context(dataset)
            # Bing has no label: the conditional variant falls back to
            # the unconditional GAN.
            gan_config = (DesignConfig(training="ctrain")
                          if ctx.train.schema.label is not None
                          else DesignConfig())
            row = [dataset,
                   aqp_utility(vae_synthetic(dataset), ctx.train,
                               n_queries=N_QUERIES, n_sample_draws=3)]
            for eps in EPSILONS:
                row.append(aqp_utility(pb_synthetic(dataset, eps),
                                       ctx.train, n_queries=N_QUERIES,
                                       n_sample_draws=3))
            row.append(aqp_utility(gan_synthetic(dataset, gan_config),
                                   ctx.train, n_queries=N_QUERIES,
                                   n_sample_draws=3))
            rows.append(row)
        return emit("table10", format_table(
            headers, rows,
            title="Table 10: AQP utility DiffAQP by method "
                  "(lower is better)"))

    run_once(benchmark, run)
