"""Table 8: generator networks -> AQP utility DiffAQP.

Runs the generated aggregate-query workload against real and synthetic
tables on the paper's two large datasets (CovType, Census).

Paper shape to verify: LSTM gn/ht preserves query answers best; CNN
(Census) is far worse.
"""

import pytest

from repro.core.design_space import DesignConfig
from repro.core.evaluation import aqp_utility

from _harness import cnn_config, context, emit, gan_synthetic, run_once
from repro.report import format_table

CONFIGS = (
    ("MLP sn/ht", DesignConfig(generator="mlp",
                               numerical_normalization="simple")),
    ("MLP gn/ht", DesignConfig(generator="mlp",
                               numerical_normalization="gmm")),
    ("LSTM sn/ht", DesignConfig(generator="lstm",
                                numerical_normalization="simple")),
    ("LSTM gn/ht", DesignConfig(generator="lstm",
                                numerical_normalization="gmm")),
)

N_QUERIES = 100


def test_table8(benchmark):
    def run():
        headers = ["dataset", "CNN"] + [label for label, _ in CONFIGS]
        rows = []
        for dataset in ("covtype", "census"):
            ctx = context(dataset)
            row = [dataset]
            if dataset == "census":
                fake = gan_synthetic(dataset, cnn_config())
                row.append(aqp_utility(fake, ctx.train,
                                       n_queries=N_QUERIES,
                                       n_sample_draws=3))
            else:
                row.append("-")
            for _, config in CONFIGS:
                fake = gan_synthetic(dataset, config)
                row.append(aqp_utility(fake, ctx.train, n_queries=N_QUERIES,
                                       n_sample_draws=3))
            rows.append(row)
        return emit("table8", format_table(
            headers, rows,
            title="Table 8: AQP utility DiffAQP by generator network "
                  "(lower is better)"))

    run_once(benchmark, run)
