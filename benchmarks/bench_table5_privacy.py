"""Table 5: GAN vs PrivBayes on privacy (hitting rate, DCR).

Paper shape to verify: GAN's hitting rate is competitive with strongly
private PB on mixed data (Adult); on numeric-heavy CovType PB's
bin-uniform decoding gives it lower hitting rates; DCR is comparable,
with GAN beating PB at its weaker privacy levels.
"""

import pytest

from repro.core.design_space import DesignConfig
from repro.core.evaluation import privacy_report

from _harness import context, emit, gan_synthetic, pb_synthetic, run_once
from repro.report import format_table

EPSILONS = (0.1, 0.2, 0.4, 0.8, 1.6)


def test_table5(benchmark):
    def run():
        headers = ["method", "hit% adult", "hit% covtype", "DCR adult",
                   "DCR covtype"]
        rows = []
        reports = {}
        for dataset in ("adult", "covtype"):
            ctx = context(dataset)
            for eps in EPSILONS:
                fake = pb_synthetic(dataset, eps)
                reports[(f"PB-{eps}", dataset)] = privacy_report(
                    fake, ctx.train, hit_samples=1000, dcr_samples=500)
            fake = gan_synthetic(dataset, DesignConfig())
            reports[("GAN", dataset)] = privacy_report(
                fake, ctx.train, hit_samples=1000, dcr_samples=500)
        for method in [f"PB-{e}" for e in EPSILONS] + ["GAN"]:
            adult = reports[(method, "adult")]
            covtype = reports[(method, "covtype")]
            rows.append([method, 100 * adult.hitting_rate,
                         100 * covtype.hitting_rate, adult.dcr,
                         covtype.dcr])
        return emit("table5", format_table(
            headers, rows,
            title="Table 5: privacy — hitting rate (%) and DCR"))

    run_once(benchmark, run)
