"""Table 3: generator networks x transformation schemes -> F1 difference.

Reproduces Tables 3(a)-(d): for each dataset, every generator family
(CNN where applicable, MLP, LSTM) crossed with the data-transformation
grid (sn/od, sn/ht, gn/od, gn/ht), reporting the per-classifier F1
difference between real-trained and synthetic-trained models.

Paper shape to verify: LSTM with gn/ht attains the smallest diffs on
low-dimensional data; CNN is the clear loser; the LSTM advantage shrinks
on high-dimensional data (Census, SAT).
"""

import pytest

from _harness import (
    cnn_config, context, diff_table, emit, gan_synthetic, is_mixed,
    run_once, transform_configs,
)

CASES = [
    ("table3a", "adult", True),     # low-dimensional, mixed, has CNN column
    ("table3b", "covtype", False),  # low-dimensional, multi-class
    ("table3c", "census", True),    # high-dimensional, mixed
    ("table3d", "sat", False),      # high-dimensional, numerical
]


def _table_for(dataset: str, include_cnn: bool) -> str:
    ctx = context(dataset)
    mixed = is_mixed(dataset)
    rows = []
    if include_cnn:
        fake = gan_synthetic(dataset, cnn_config())
        rows.append(("CNN", ctx.diff_row(fake)))
    for generator in ("mlp", "lstm"):
        for tag, config in transform_configs(generator, mixed):
            fake = gan_synthetic(dataset, config)
            rows.append((f"{generator.upper()} {tag}", ctx.diff_row(fake)))
    return rows


@pytest.mark.parametrize("name,dataset,include_cnn", CASES)
def test_table3(benchmark, name, dataset, include_cnn):
    def run():
        rows = _table_for(dataset, include_cnn)
        return emit(name, diff_table(
            dataset, rows,
            title=f"Table 3 ({name[-1]}): {dataset} — F1 difference "
                  f"(lower is better)"))

    run_once(benchmark, run)
