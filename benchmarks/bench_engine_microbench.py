"""Engine microbenchmark: forward / backward / optimizer-step wall-clock.

Pins a small, deterministic training workload per generator architecture
(MLP, LSTM, CNN) and times the engine's three hot phases plus a full
trainer iteration, in both engine dtypes:

* ``float64`` — the bit-exact parity mode (historical engine behaviour);
* ``float32`` — the fast training mode (enables the fused/batched
  fast-math kernels).

``BENCH_engine_microbench.json`` rows carry per-(arch, dtype) timings in
milliseconds plus the float64/float32 train-step speedup per arch, so
engine regressions show up as a trajectory break across PRs.

Scale knob: ``REPRO_BENCH_MICRO_ITERS`` (timed iterations per phase,
default 30; CI smoke runs use a small value).
"""

import os
import time

import numpy as np
import pytest

from _harness import emit, run_once
from repro.core.design_space import DesignConfig
from repro.datasets.schema import (
    Attribute, CATEGORICAL, NUMERICAL, Schema, Table,
)
from repro.gan.synthesizer import GANSynthesizer
from repro.gan.training import make_trainer
from repro.nn import bce_with_logits, default_dtype
from repro.report import format_table

ITERS = int(os.environ.get("REPRO_BENCH_MICRO_ITERS", "30"))
BATCH = 64

ARCHS = {
    "mlp": dict(generator="mlp"),
    "lstm": dict(generator="lstm"),
    "cnn": dict(generator="cnn", categorical_encoding="ordinal",
                numerical_normalization="simple"),
}


def _bench_table(n: int = 400, seed: int = 3) -> Table:
    """Small deterministic mixed-type table (no dataset dependencies)."""
    rng = np.random.default_rng(seed)
    labels = (rng.random(n) < 0.3).astype(np.int64)
    schema = Schema(
        attributes=(
            Attribute("age", NUMERICAL),
            Attribute("income", NUMERICAL),
            Attribute("job", CATEGORICAL, categories=("a", "b", "c")),
            Attribute("city", CATEGORICAL, categories=("w", "x", "y", "z")),
            Attribute("label", CATEGORICAL, categories=("neg", "pos")),
        ),
        label_name="label",
    )
    return Table(schema, {
        "age": rng.normal(40 + 10 * labels, 8, n),
        "income": rng.normal(30 + 40 * labels, 10, n),
        "job": rng.integers(0, 3, n),
        "city": rng.integers(0, 4, n),
        "label": labels,
    })


def _best_of(fn, iters: int, repeats: int = 3) -> float:
    """Minimum mean wall-clock (ms) of ``fn`` over ``repeats`` runs."""
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - start) / iters)
    return best * 1000.0


def _time_arch(arch: str, dtype: str) -> dict:
    with default_dtype(dtype):
        table = _bench_table()
        config = DesignConfig(batch_size=BATCH, **ARCHS[arch])
        synth = GANSynthesizer(config=config, epochs=1,
                               iterations_per_epoch=2, seed=11)
        synth.fit(table)
        data = synth.transformer.transform(table)
        trainer = make_trainer(config, synth.generator, synth.discriminator,
                               np.random.default_rng(0))
        trainer.prepare(data, table.label_codes, 2)
        trainer.iteration()

        generator = trainer.generator
        discriminator = trainer.discriminator
        z = trainer.sample_noise(BATCH)
        forward_ms = _best_of(lambda: generator(z), ITERS)

        def backward():
            trainer.opt_g.zero_grad()
            trainer.opt_d.zero_grad()
            loss = bce_with_logits(discriminator(generator(z)),
                                   np.ones((BATCH, 1)))
            loss.backward()

        fwd_bwd_ms = _best_of(backward, ITERS)
        opt_ms = _best_of(trainer.opt_g.step, ITERS)
        step_ms = _best_of(trainer.iteration, ITERS)
    return {
        "arch": arch,
        "dtype": dtype,
        "forward_ms": round(forward_ms, 4),
        "backward_ms": round(max(fwd_bwd_ms - forward_ms, 0.0), 4),
        "opt_step_ms": round(opt_ms, 4),
        "train_step_ms": round(step_ms, 4),
    }


def test_engine_microbench(benchmark):
    def run():
        rows = []
        for arch in ARCHS:
            for dtype in ("float64", "float32"):
                rows.append(_time_arch(arch, dtype))
        by_key = {(r["arch"], r["dtype"]): r for r in rows}
        for arch in ARCHS:
            f64 = by_key[(arch, "float64")]["train_step_ms"]
            f32 = by_key[(arch, "float32")]["train_step_ms"]
            by_key[(arch, "float32")]["train_step_speedup_vs_f64"] = round(
                f64 / f32, 3) if f32 > 0 else None
        headers = ["arch", "dtype", "forward", "backward", "opt step",
                   "train step", "speedup"]
        table_rows = [[r["arch"], r["dtype"], r["forward_ms"],
                       r["backward_ms"], r["opt_step_ms"],
                       r["train_step_ms"],
                       r.get("train_step_speedup_vs_f64", "")]
                      for r in rows]
        text = format_table(
            headers, table_rows,
            title="Engine microbenchmark — per-phase wall-clock (ms)")
        return emit("engine_microbench", text, rows=rows)

    run_once(benchmark, run)


if __name__ == "__main__":  # manual runs without pytest-benchmark
    pytest.main([__file__, "-q"])
