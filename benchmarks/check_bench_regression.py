#!/usr/bin/env python
"""CI gate: fail when the CNN train step regresses vs a committed baseline.

Compares two ``BENCH_engine_microbench.json`` files (the committed
baseline and a freshly measured one) on the CNN float32 train-step
time.  Because CI hardware differs from the machine that produced the
committed baseline, the default comparison is **relative**: the CNN
step is normalized by the same run's MLP step, so a uniform machine
slowdown cancels out while a conv-path regression (the thing this PR's
fast path fixed) still trips the gate.  ``--absolute`` compares raw
milliseconds instead, for same-machine trajectories.

Usage::

    python benchmarks/check_bench_regression.py BASELINE.json CURRENT.json \
        [--arch cnn] [--dtype float32] [--relative-to mlp] \
        [--max-regression 0.20] [--absolute]

Exit status 0 when within bounds, 1 on regression (or missing rows).
"""

from __future__ import annotations

import argparse
import json
import sys


def _load_rows(path: str) -> dict:
    with open(path) as handle:
        payload = json.load(handle)
    return {(row["arch"], row["dtype"]): row for row in payload["rows"]}


def _metric(rows: dict, arch: str, dtype: str, relative_to: str | None
            ) -> float:
    key = (arch, dtype)
    if key not in rows:
        raise KeyError(f"no ({arch}, {dtype}) row in benchmark json")
    value = float(rows[key]["train_step_ms"])
    if relative_to:
        ref_key = (relative_to, dtype)
        if ref_key not in rows:
            raise KeyError(f"no ({relative_to}, {dtype}) row for "
                           "normalization")
        value /= float(rows[ref_key]["train_step_ms"])
    return value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("current", help="freshly measured BENCH_*.json")
    parser.add_argument("--arch", default="cnn")
    parser.add_argument("--dtype", default="float32")
    parser.add_argument("--relative-to", default="mlp",
                        help="normalize by this arch's train step "
                             "(machine-speed cancellation)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw milliseconds (same-machine runs)")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="allowed fractional slowdown (default 0.20)")
    args = parser.parse_args(argv)

    relative_to = None if args.absolute else args.relative_to
    try:
        base = _metric(_load_rows(args.baseline), args.arch, args.dtype,
                       relative_to)
        curr = _metric(_load_rows(args.current), args.arch, args.dtype,
                       relative_to)
    except (KeyError, FileNotFoundError, json.JSONDecodeError) as exc:
        print(f"check_bench_regression: cannot compare: {exc}",
              file=sys.stderr)
        return 1

    unit = "ms" if args.absolute else f"x {args.relative_to}"
    change = curr / base - 1.0
    print(f"{args.arch}/{args.dtype} train step: baseline {base:.4g} {unit}"
          f" -> current {curr:.4g} {unit} ({change:+.1%})")
    if curr > base * (1.0 + args.max_regression):
        print(f"FAIL: regression exceeds {args.max_regression:.0%} budget",
              file=sys.stderr)
        return 1
    print(f"OK: within the {args.max_regression:.0%} regression budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
